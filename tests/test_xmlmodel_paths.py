"""Tests for XML paths and answers (repro.xmlmodel.paths)."""

import pytest

from repro.xmlmodel.errors import XMLPathError
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.paths import (
    XMLPath,
    all_tag_paths,
    apply_path,
    collection_complete_paths,
    collection_tag_paths,
    complete_paths,
    depth_of_paths,
    leaf_paths_with_nodes,
    maximal_tag_paths,
    path_answer,
    path_answers_by_path,
)


class TestXMLPathObject:
    def test_parse_and_str_round_trip(self):
        path = XMLPath.parse("dblp.inproceedings.author.S")
        assert str(path) == "dblp.inproceedings.author.S"
        assert path.length == 4

    def test_of_builds_from_steps(self):
        assert XMLPath.of("a", "b").steps == ("a", "b")

    def test_complete_vs_tag_path(self):
        assert XMLPath.parse("dblp.inproceedings.@key").is_complete
        assert XMLPath.parse("dblp.inproceedings.title.S").is_complete
        assert XMLPath.parse("dblp.inproceedings.title").is_tag_path

    def test_tag_path_strips_trailing_leaf_step(self):
        complete = XMLPath.parse("dblp.inproceedings.title.S")
        assert complete.tag_path() == XMLPath.parse("dblp.inproceedings.title")
        tag = XMLPath.parse("dblp.inproceedings")
        assert tag.tag_path() is tag

    def test_tag_path_is_cached(self):
        path = XMLPath.parse("a.b.S")
        assert path.tag_path() is path.tag_path()

    def test_parent_and_child(self):
        path = XMLPath.parse("a.b")
        assert path.parent() == XMLPath.parse("a")
        assert path.child("c") == XMLPath.parse("a.b.c")

    def test_parent_of_root_raises(self):
        with pytest.raises(XMLPathError):
            XMLPath.parse("a").parent()

    def test_startswith(self):
        assert XMLPath.parse("a.b.c").startswith(XMLPath.parse("a.b"))
        assert not XMLPath.parse("a.b").startswith(XMLPath.parse("a.c"))

    def test_empty_path_is_rejected(self):
        with pytest.raises(XMLPathError):
            XMLPath(())
        with pytest.raises(XMLPathError):
            XMLPath.parse("")

    def test_interior_attribute_step_is_rejected(self):
        with pytest.raises(XMLPathError):
            XMLPath.of("a", "@key", "b")

    def test_single_step_complete_path_has_no_tag_prefix(self):
        with pytest.raises(XMLPathError):
            XMLPath.of("@key").tag_path()

    def test_paths_are_hashable_and_ordered(self):
        a = XMLPath.parse("a.b")
        b = XMLPath.parse("a.c")
        assert len({a, XMLPath.parse("a.b"), b}) == 2
        assert a < b

    def test_hash_is_stable_and_equal_for_equal_paths(self):
        assert hash(XMLPath.parse("x.y.S")) == hash(XMLPath.parse("x.y.S"))


class TestPathApplication:
    def test_tag_path_answer_is_node_id_set(self, paper_tree):
        path = XMLPath.parse("dblp.inproceedings.title")
        answer = path_answer(path, paper_tree)
        # the paper reports {n8, n20} for this path
        assert answer == frozenset({8, 20})

    def test_complete_path_answer_is_string_set(self, paper_tree):
        path = XMLPath.parse("dblp.inproceedings.author.S")
        assert path_answer(path, paper_tree) == frozenset({"M.J. Zaki", "C.C. Aggarwal"})

    def test_attribute_path_answer(self, paper_tree):
        path = XMLPath.parse("dblp.inproceedings.@key")
        assert path_answer(path, paper_tree) == frozenset(
            {"conf/kdd/ZakiA03", "conf/kdd/Zaki02"}
        )

    def test_non_matching_path_yields_empty_answer(self, paper_tree):
        assert path_answer(XMLPath.parse("dblp.article.title"), paper_tree) == frozenset()
        assert path_answer(XMLPath.parse("other.inproceedings"), paper_tree) == frozenset()

    def test_apply_path_returns_nodes_in_document_order(self, paper_tree):
        nodes = apply_path(XMLPath.parse("dblp.inproceedings.author"), paper_tree)
        assert [n.node_id for n in nodes] == [4, 6, 18]


class TestPathCollections:
    def test_complete_paths_of_paper_example(self, paper_tree):
        paths = {str(p) for p in complete_paths(paper_tree)}
        assert paths == {
            "dblp.inproceedings.@key",
            "dblp.inproceedings.author.S",
            "dblp.inproceedings.title.S",
            "dblp.inproceedings.year.S",
            "dblp.inproceedings.booktitle.S",
            "dblp.inproceedings.pages.S",
        }

    def test_maximal_tag_paths_drop_leaf_steps(self, paper_tree):
        paths = {str(p) for p in maximal_tag_paths(paper_tree)}
        assert "dblp.inproceedings.author" in paths
        assert "dblp.inproceedings" in paths  # from the @key attribute
        assert all(not p.endswith(".S") and "@" not in p for p in paths)

    def test_all_tag_paths_include_every_element(self, paper_tree):
        paths = {str(p) for p in all_tag_paths(paper_tree)}
        assert "dblp" in paths
        assert "dblp.inproceedings.pages" in paths

    def test_leaf_paths_with_nodes_aligns_with_leaves(self, paper_tree):
        pairs = leaf_paths_with_nodes(paper_tree)
        assert len(pairs) == paper_tree.leaf_count()
        path, node = pairs[0]
        assert str(path) == "dblp.inproceedings.@key"
        assert node.node_id == 3

    def test_path_answers_by_path_covers_all_complete_paths(self, paper_tree):
        answers = path_answers_by_path(paper_tree)
        assert set(answers.keys()) == complete_paths(paper_tree)
        assert answers[XMLPath.parse("dblp.inproceedings.booktitle.S")] == frozenset({"KDD"})

    def test_collection_level_unions(self, paper_tree):
        other = parse_xml("<dblp><article><title>X</title></article></dblp>", doc_id="o")
        union = collection_complete_paths([paper_tree, other])
        assert XMLPath.parse("dblp.article.title.S") in union
        assert XMLPath.parse("dblp.inproceedings.title.S") in union
        tag_union = collection_tag_paths([paper_tree, other])
        assert XMLPath.parse("dblp.article.title") in tag_union

    def test_depth_of_paths(self, paper_tree):
        assert depth_of_paths(list(complete_paths(paper_tree))) == 4
        assert depth_of_paths([]) == 0


class TestPathPickling:
    """The cached hash must never survive pickling (PYTHONHASHSEED salt).

    Python string hashing is salted per process: a pickled path restored
    with its sender's cached ``_hash`` would hash differently from an equal
    path constructed locally, silently breaking dict and set lookups that
    mix the two (exactly what a real-transport worker does when it probes
    its unpickled partition with representatives decoded from the wire).
    """

    def test_unpickled_path_rehashes_locally(self):
        import pickle

        path = XMLPath.parse("dblp.inproceedings.title.S")
        clone = pickle.loads(pickle.dumps(path))
        assert clone == path
        assert hash(clone) == hash(path)
        assert clone in {path}
        assert {path: 1}[clone] == 1

    def test_reduce_rebuilds_through_the_constructor(self):
        path = XMLPath.parse("dblp.inproceedings.@key")
        factory, args = path.__reduce__()
        assert factory is XMLPath
        rebuilt = factory(*args)
        # a rebuilt path re-runs __post_init__, re-deriving the cached hash
        # from the current process's string-hash salt
        assert rebuilt == path
        assert hash(rebuilt) == hash(path.steps)

    def test_cross_salt_simulation(self):
        # simulate a foreign process's salt by corrupting the cached hash
        # the way the old default pickling would have restored it
        path = XMLPath.parse("dblp.article.title")
        foreign = XMLPath(path.steps)
        object.__setattr__(foreign, "_hash", hash(path.steps) + 1)
        assert foreign == path  # equality ignores the cache...
        assert hash(foreign) != hash(path)  # ...but lookups would miss
        # __reduce__ heals the corruption across a pickle round trip
        import pickle

        healed = pickle.loads(pickle.dumps(foreign))
        assert hash(healed) == hash(path)
