"""Property-based tests (hypothesis) on the core data structures and invariants.

The properties cover the layers whose correctness everything else rests on:
the XML parser / serializer round-trip, the tree tuple decomposition
invariants, sparse-vector algebra, the similarity measures' metric-like
properties, the F-measure bounds, and the partitioning invariants.
"""

from __future__ import annotations

import math
import string

from hypothesis import assume, given, settings, strategies as st

from repro.core.partition import partition_equally, partition_unequally
from repro.evaluation.fmeasure import overall_f_measure
from repro.similarity.item import SimilarityConfig, item_similarity
from repro.similarity.structural import tag_path_similarity
from repro.similarity.transaction import SimilarityEngine
from repro.text.stemmer import stem
from repro.text.tokenize import tokenize
from repro.text.vector import SparseVector, merge_vectors
from repro.transactions.items import make_synthetic_item
from repro.transactions.transaction import make_transaction, union_size
from repro.treetuples.decompose import count_tree_tuples, extract_tree_tuples
from repro.treetuples.tupleobj import is_tree_tuple
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.paths import XMLPath, complete_paths, path_answer
from repro.xmlmodel.serializer import serialize, to_compact_string
from repro.xmlmodel.tree import XMLTreeBuilder

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
TAG_NAMES = st.sampled_from(
    ["a", "b", "c", "item", "title", "author", "sec", "entry", "node"]
)
TEXT_VALUES = st.text(
    alphabet=string.ascii_letters + string.digits + " .,;-",
    min_size=0,
    max_size=24,
)
#: Leaf text for round-trippable trees.  The default parser deliberately
#: drops whitespace-only text nodes (data-oriented XML,
#: ``XMLParser(keep_whitespace_text=False)``), so a strategy feeding the
#: serialize/parse round-trip properties must only generate leaf text that
#: survives parsing -- generating ``"   "`` made the round trip flake (the
#: PR 2 finding pinned by ``TestWhitespaceLeafRegression``).
LEAF_TEXT_VALUES = st.text(
    alphabet=string.ascii_letters + string.digits + " .,;-",
    min_size=1,
    max_size=24,
).filter(lambda text: bool(text.strip()))


@st.composite
def xml_trees(draw, max_depth: int = 3, max_children: int = 3):
    """Generate random small XML trees through the builder API.

    Every leaf carries parser-representable (non-whitespace-only) text,
    so the generated trees round-trip through serialize/parse exactly.
    """
    builder = XMLTreeBuilder(doc_id="random")
    counter = [0]

    def build(depth: int) -> None:
        builder.start(draw(TAG_NAMES))
        if draw(st.booleans()):
            builder.attribute("id", str(counter[0]))
            counter[0] += 1
        children = draw(st.integers(min_value=0, max_value=max_children))
        if depth >= max_depth or children == 0:
            builder.text(draw(LEAF_TEXT_VALUES))
        else:
            for _ in range(children):
                build(depth + 1)
        builder.end()

    build(0)
    return builder.finish()


@st.composite
def sparse_vectors(draw, max_terms: int = 6):
    terms = draw(
        st.dictionaries(
            st.integers(min_value=0, max_value=30),
            # weights stay clear of the subnormal range so norms cannot
            # underflow to zero (real ttf.itf weights are O(1))
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            max_size=max_terms,
        )
    )
    return SparseVector(terms)


@st.composite
def tree_tuple_items(draw):
    depth = draw(st.integers(min_value=1, max_value=3))
    steps = [draw(TAG_NAMES) for _ in range(depth)] + ["S"]
    answer = draw(TEXT_VALUES) or "v"
    return make_synthetic_item(XMLPath(tuple(steps)), answer, vector=draw(sparse_vectors()))


@st.composite
def transactions(draw, max_items: int = 5):
    count = draw(st.integers(min_value=1, max_value=max_items))
    items = [draw(tree_tuple_items()) for _ in range(count)]
    return make_transaction(f"tr{draw(st.integers(0, 10_000))}", items)


# --------------------------------------------------------------------------- #
# XML model properties
# --------------------------------------------------------------------------- #
class TestXMLProperties:
    @given(xml_trees())
    @settings(max_examples=40, deadline=None)
    def test_serialize_parse_round_trip(self, tree):
        assert parse_xml(serialize(tree)) == tree
        assert parse_xml(to_compact_string(tree)) == tree

    @given(xml_trees())
    @settings(max_examples=40, deadline=None)
    def test_node_ids_are_unique_and_preordered(self, tree):
        ids = [node.node_id for node in tree.iter_nodes()]
        assert len(ids) == len(set(ids))
        assert ids == sorted(ids)

    @given(xml_trees())
    @settings(max_examples=40, deadline=None)
    def test_leaves_carry_values_and_elements_do_not(self, tree):
        for node in tree.iter_nodes():
            if node.is_element:
                assert node.value is None
            else:
                assert node.value is not None


# --------------------------------------------------------------------------- #
# Whitespace-only leaf text (the PR 2 round-trip flake, pinned)
# --------------------------------------------------------------------------- #
class TestWhitespaceLeafRegression:
    """The ``xml_trees`` strategy used to emit whitespace-only leaf text,
    which the default parser deliberately drops -- so the serialize/parse
    round-trip property failed on rare examples.  The strategy is now
    constrained to parser-representable text; these tests pin both the
    parser behaviour that motivated the constraint and the constraint
    itself."""

    def whitespace_leaf_tree(self):
        builder = XMLTreeBuilder(doc_id="ws")
        builder.start("a")
        builder.text("   ")
        builder.end()
        return builder.finish()

    def test_default_parser_drops_whitespace_only_leaves(self):
        """The behaviour that made the old strategy flake: a whitespace-only
        leaf does not survive the default (data-oriented) parse."""
        tree = self.whitespace_leaf_tree()
        parsed = parse_xml(serialize(tree))
        assert parsed != tree
        assert [n.value for n in parsed.iter_nodes() if not n.is_element] == []

    def test_keep_whitespace_text_round_trips(self):
        """The opt-in parser mode preserves the leaf, so the drop really is
        the default mode's deliberate choice rather than data loss."""
        from repro.xmlmodel.parser import XMLParser

        tree = self.whitespace_leaf_tree()
        parsed = XMLParser(keep_whitespace_text=True).parse(serialize(tree))
        assert parsed == tree

    @given(xml_trees())
    @settings(max_examples=40, deadline=None)
    def test_strategy_only_generates_parser_representable_leaves(self, tree):
        """The constraint: every generated leaf survives a default parse."""
        for node in tree.iter_nodes():
            if not node.is_element:
                assert node.value.strip()


# --------------------------------------------------------------------------- #
# Tree tuple properties
# --------------------------------------------------------------------------- #
class TestTreeTupleProperties:
    @given(xml_trees())
    @settings(max_examples=25, deadline=None)
    def test_extraction_matches_count_and_functionality(self, tree):
        assume(count_tree_tuples(tree) <= 40)
        tuples = extract_tree_tuples(tree)
        assert len(tuples) == count_tree_tuples(tree)
        for tree_tuple in tuples:
            assert is_tree_tuple(tree_tuple.tree, tree)
            # functional answers: every complete path of the tuple has at
            # most one value
            for path in complete_paths(tree_tuple.tree):
                assert len(path_answer(path, tree_tuple.tree)) == 1

    @given(xml_trees())
    @settings(max_examples=25, deadline=None)
    def test_every_leaf_appears_in_at_least_one_tuple(self, tree):
        assume(count_tree_tuples(tree) <= 40)
        tuples = extract_tree_tuples(tree)
        covered = set()
        for tree_tuple in tuples:
            covered |= {n.node_id for n in tree_tuple.tree.iter_leaves()}
        assert covered == {n.node_id for n in tree.iter_leaves()}


# --------------------------------------------------------------------------- #
# Text / vector properties
# --------------------------------------------------------------------------- #
class TestVectorProperties:
    @given(sparse_vectors(), sparse_vectors())
    @settings(max_examples=60, deadline=None)
    def test_cosine_is_symmetric_and_bounded(self, u, v):
        assert 0.0 <= u.cosine(v) <= 1.0
        assert math.isclose(u.cosine(v), v.cosine(u), abs_tol=1e-12)

    @given(sparse_vectors())
    @settings(max_examples=60, deadline=None)
    def test_cosine_with_self_is_one_or_zero(self, u):
        expected = 1.0 if u else 0.0
        assert math.isclose(u.cosine(u), expected, abs_tol=1e-9)

    @given(sparse_vectors(), sparse_vectors())
    @settings(max_examples=60, deadline=None)
    def test_merge_is_commutative(self, u, v):
        assert merge_vectors([u, v]) == merge_vectors([v, u])

    @given(sparse_vectors(), st.floats(min_value=0.1, max_value=5.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_scaling_scales_the_norm(self, u, factor):
        assert math.isclose(u.scaled(factor).norm(), u.norm() * factor, rel_tol=1e-9)

    @given(st.text(max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_tokenize_output_is_lowercase(self, text):
        for token in tokenize(text):
            assert token == token.lower()

    @given(st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=15))
    @settings(max_examples=80, deadline=None)
    def test_stemming_never_grows_a_word(self, word):
        assert len(stem(word)) <= len(word)


# --------------------------------------------------------------------------- #
# Similarity properties
# --------------------------------------------------------------------------- #
class TestSimilarityProperties:
    @given(
        st.lists(TAG_NAMES, min_size=1, max_size=4),
        st.lists(TAG_NAMES, min_size=1, max_size=4),
    )
    @settings(max_examples=80, deadline=None)
    def test_tag_path_similarity_bounds_and_symmetry(self, p, q):
        value = tag_path_similarity(p, q)
        assert 0.0 <= value <= 1.0
        assert math.isclose(value, tag_path_similarity(q, p), abs_tol=1e-12)
        assert math.isclose(tag_path_similarity(p, p), 1.0)

    @given(tree_tuple_items(), tree_tuple_items(), st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_item_similarity_bounds_and_symmetry(self, a, b, f):
        config = SimilarityConfig(f=f, gamma=0.5)
        value = item_similarity(a, b, config)
        assert 0.0 <= value <= 1.0
        assert math.isclose(value, item_similarity(b, a, config), abs_tol=1e-12)

    @given(transactions(), transactions())
    @settings(max_examples=30, deadline=None)
    def test_transaction_similarity_bounds_and_symmetry(self, tr1, tr2):
        engine = SimilarityEngine(SimilarityConfig(f=0.5, gamma=0.7))
        value = engine.transaction_similarity(tr1, tr2)
        assert 0.0 <= value <= 1.0
        assert math.isclose(
            value, engine.transaction_similarity(tr2, tr1), abs_tol=1e-12
        )

    @given(transactions())
    @settings(max_examples=30, deadline=None)
    def test_transaction_self_similarity_is_one(self, tr):
        engine = SimilarityEngine(SimilarityConfig(f=0.5, gamma=0.9))
        assert math.isclose(engine.transaction_similarity(tr, tr), 1.0)

    @given(transactions(), transactions())
    @settings(max_examples=30, deadline=None)
    def test_shared_items_never_exceed_union(self, tr1, tr2):
        engine = SimilarityEngine(SimilarityConfig(f=0.5, gamma=0.6))
        shared = engine.gamma_shared_items(tr1, tr2)
        assert len(shared) <= union_size(tr1, tr2)
        assert shared <= (tr1.item_set() | tr2.item_set())


# --------------------------------------------------------------------------- #
# Evaluation and partitioning properties
# --------------------------------------------------------------------------- #
class TestEvaluationProperties:
    @given(
        st.lists(st.sampled_from(["A", "B", "C"]), min_size=2, max_size=30),
        st.integers(min_value=1, max_value=4),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_f_measure_is_bounded_and_perfect_for_identity(self, labels, k, rng):
        reference = {f"t{i}": label for i, label in enumerate(labels)}
        ids = list(reference)
        rng.shuffle(ids)
        clusters = [ids[i::k] for i in range(k)]
        value = overall_f_measure(clusters, reference)
        assert 0.0 <= value <= 1.0
        by_class = {}
        for transaction_id, label in reference.items():
            by_class.setdefault(label, []).append(transaction_id)
        assert math.isclose(overall_f_measure(list(by_class.values()), reference), 1.0)

    @given(
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_partitioning_is_a_partition(self, count, nodes, seed):
        items = [
            make_transaction(
                f"tr{i}", [make_synthetic_item(XMLPath.parse("r.a.S"), str(i))]
            )
            for i in range(count)
        ]
        for chunks in (
            partition_equally(items, nodes, seed=seed),
            partition_unequally(items, nodes, seed=seed),
        ):
            assert len(chunks) == nodes
            flat = [t.transaction_id for chunk in chunks for t in chunk]
            assert sorted(flat) == sorted(t.transaction_id for t in items)

    @given(st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_equal_partition_sizes_differ_by_at_most_one(self, count, nodes):
        items = [
            make_transaction(
                f"tr{i}", [make_synthetic_item(XMLPath.parse("r.a.S"), str(i))]
            )
            for i in range(count)
        ]
        sizes = [len(chunk) for chunk in partition_equally(items, nodes)]
        assert max(sizes) - min(sizes) <= 1
