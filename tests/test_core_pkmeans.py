"""Tests for the PK-means baseline and its comparison with CXK-means."""

import pytest

from repro.core.config import ClusteringConfig
from repro.core.cxkmeans import CXKMeans
from repro.core.partition import partition_equally
from repro.core.pkmeans import PKMeans
from repro.evaluation.fmeasure import overall_f_measure
from repro.similarity.item import SimilarityConfig


@pytest.fixture()
def config():
    return ClusteringConfig(
        k=2,
        similarity=SimilarityConfig(f=0.3, gamma=0.4),
        seed=1,
        max_iterations=6,
    )


class TestPKMeans:
    def test_all_transactions_are_assigned(self, mini_dataset, config):
        parts = partition_equally(mini_dataset.transactions, 3, seed=1)
        result = PKMeans(config).fit(parts)
        assert result.total_clustered() + result.trash_size() == len(mini_dataset)

    def test_accuracy_is_reasonable(self, mini_dataset, config):
        parts = partition_equally(mini_dataset.transactions, 3, seed=1)
        result = PKMeans(config).fit(parts)
        reference = mini_dataset.labels_for("content")
        assert overall_f_measure(result.partition(), reference) >= 0.55

    def test_metadata_and_network(self, mini_dataset, config):
        parts = partition_equally(mini_dataset.transactions, 3, seed=1)
        result = PKMeans(config).fit(parts)
        assert result.metadata["algorithm"] == "PK-means"
        assert result.network["messages"] > 0
        assert result.simulated_seconds is not None

    def test_empty_partition_list_raises(self, config):
        with pytest.raises(ValueError):
            PKMeans(config).fit([])

    def test_too_few_transactions_raises(self, mini_dataset, config):
        with pytest.raises(ValueError):
            PKMeans(config.with_k(500)).fit([mini_dataset.transactions[:4]])

    def test_deterministic_given_seed(self, mini_dataset, config):
        parts = partition_equally(mini_dataset.transactions, 2, seed=5)
        first = PKMeans(config).fit(parts)
        second = PKMeans(config).fit(parts)
        assert first.assignments(include_trash=True) == second.assignments(include_trash=True)

    def test_objective_convergence_terminates_early(self, mini_dataset):
        config = ClusteringConfig(
            k=2, similarity=SimilarityConfig(f=0.3, gamma=0.4), seed=1, max_iterations=20
        )
        parts = partition_equally(mini_dataset.transactions, 2, seed=1)
        result = PKMeans(config).fit(parts)
        assert result.iterations < 20
        assert result.converged


class TestCollaborativeVsNonCollaborative:
    def test_pk_means_transfers_more_representatives_than_cxk(self, mini_dataset, config):
        """The core claim behind Fig. 8: the all-to-all exchange of PK-means
        moves more data than CXK-means' responsibility-based exchange."""
        parts = partition_equally(mini_dataset.transactions, 4, seed=1)
        cxk = CXKMeans(config).fit(parts)
        pk = PKMeans(config).fit(parts)
        cxk_per_round = cxk.network["transferred_transactions"] / cxk.network["rounds"]
        pk_per_round = pk.network["transferred_transactions"] / pk.network["rounds"]
        assert pk_per_round > cxk_per_round

    def test_accuracies_are_comparable(self, mini_dataset, config):
        parts = partition_equally(mini_dataset.transactions, 3, seed=1)
        reference = mini_dataset.labels_for("content")
        cxk_f = overall_f_measure(CXKMeans(config).fit(parts).partition(), reference)
        pk_f = overall_f_measure(PKMeans(config).fit(parts).partition(), reference)
        assert abs(cxk_f - pk_f) <= 0.3
