"""Tests for tokenization, stopwords and the Porter stemmer (repro.text)."""

import pytest

from repro.text.preprocess import PreprocessingConfig, TextPreprocessor
from repro.text.stemmer import PorterStemmer, stem, stem_tokens
from repro.text.stopwords import ENGLISH_STOPWORDS, default_stopwords, remove_stopwords
from repro.text.tokenize import character_ngrams, tokenize


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello World") == ["hello", "world"]

    def test_punctuation_is_dropped(self):
        assert tokenize("XRules: an effective, structural classifier!") == [
            "xrules", "an", "effective", "structural", "classifier",
        ]

    def test_numbers_are_dropped_by_default(self):
        assert tokenize("pages 316-325 in 2003") == ["pages", "in"]

    def test_numbers_can_be_kept(self):
        assert tokenize("year 2003", keep_numbers=True) == ["year", "2003"]

    def test_short_tokens_are_dropped(self):
        assert tokenize("a b cd", min_length=2) == ["cd"]

    def test_min_length_is_configurable(self):
        assert tokenize("a b cd", min_length=1) == ["a", "b", "cd"]

    def test_apostrophes_are_trimmed(self):
        assert tokenize("king's 'quoted'") == ["king's", "quoted"]

    def test_empty_text(self):
        assert tokenize("") == []
        assert tokenize("   \n\t ") == []

    def test_duplicates_are_preserved_in_order(self):
        assert tokenize("data data mining data") == ["data", "data", "mining", "data"]

    def test_character_ngrams(self):
        assert character_ngrams("abcd", n=3) == ["abc", "bcd"]
        assert character_ngrams("ab", n=3) == ["ab"]
        assert character_ngrams("", n=3) == []


class TestStopwords:
    def test_common_function_words_are_stopwords(self):
        for word in ("the", "and", "of", "with", "is"):
            assert word in ENGLISH_STOPWORDS

    def test_domain_noise_is_included_in_default_set(self):
        assert "proc" in default_stopwords()
        assert "vol" in default_stopwords()

    def test_remove_stopwords_filters(self):
        assert remove_stopwords(["the", "tree", "of", "life"]) == ["tree", "life"]

    def test_remove_stopwords_with_custom_set(self):
        assert remove_stopwords(["x", "y"], stopwords=frozenset({"x"})) == ["y"]

    def test_content_words_are_not_stopwords(self):
        for word in ("clustering", "xml", "transaction"):
            assert word not in default_stopwords()


class TestPorterStemmer:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("happy", "happi"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("feudalism", "feudal"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formality", "formal"),
            ("sensitivity", "sensit"),
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("adoption", "adopt"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("effective", "effect"),
            ("probate", "probat"),
            ("rate", "rate"),
            ("controlling", "control"),
            ("rolling", "roll"),
        ],
    )
    def test_reference_vocabulary(self, word, expected):
        assert stem(word) == expected

    def test_short_words_are_unchanged(self):
        assert stem("is") == "is"
        assert stem("xy") == "xy"

    def test_stemmer_is_idempotent_on_common_words(self):
        for word in ("clustering", "documents", "similarity", "transaction"):
            once = stem(word)
            assert stem(once) == once

    def test_stem_tokens_preserves_order(self):
        assert stem_tokens(["mining", "trees"]) == ["mine", "tree"]

    def test_stemmer_instance_matches_module_function(self):
        stemmer = PorterStemmer()
        assert stemmer.stem("clustering") == stem("clustering")


class TestPreprocessor:
    def test_full_pipeline(self):
        processor = TextPreprocessor()
        terms = processor.process("The Clustering of XML Documents in 2003!")
        assert terms == ["cluster", "xml", "document"]

    def test_stopword_removal_can_be_disabled(self):
        processor = TextPreprocessor(PreprocessingConfig(remove_stopwords=False, stem=False))
        assert "the" in processor.process("the tree")

    def test_stemming_can_be_disabled(self):
        processor = TextPreprocessor(PreprocessingConfig(stem=False))
        assert processor.process("clustering documents") == ["clustering", "documents"]

    def test_custom_stopwords(self):
        processor = TextPreprocessor(
            PreprocessingConfig(stopwords=frozenset({"xml"}), stem=False)
        )
        assert processor.process("xml clustering") == ["clustering"]

    def test_process_many(self):
        processor = TextPreprocessor()
        results = processor.process_many(["data mining", "query optimization"])
        assert len(results) == 2
        assert results[0] == ["data", "mine"]

    def test_numbers_kept_when_configured(self):
        processor = TextPreprocessor(PreprocessingConfig(keep_numbers=True, stem=False))
        assert "2003" in processor.process("year 2003")
