"""Tests for the ``cxk`` command line interface."""

import os

import pytest

from repro.cli import build_parser, main
from repro.datasets.dblp import generate_dblp
from repro.xmlmodel.serializer import serialize


class TestParser:
    def test_all_subcommands_are_registered(self):
        parser = build_parser()
        subparsers = [
            action for action in parser._actions if action.dest == "command"
        ][0]
        assert set(subparsers.choices) == {
            "datasets",
            "cluster",
            "classify",
            "serve",
            "stream",
            "models",
            "figure7",
            "figure8",
            "table1",
            "table2",
        }

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestDatasetsCommand:
    def test_prints_the_four_corpora(self, capsys):
        assert main(["datasets", "--scale", "0.15"]) == 0
        output = capsys.readouterr().out
        for name in ("DBLP", "IEEE", "Shakespeare", "Wikipedia"):
            assert name in output


class TestClusterCommand:
    def test_cluster_synthetic_corpus(self, capsys):
        code = main(
            [
                "cluster",
                "--corpus", "DBLP",
                "--goal", "content",
                "--peers", "2",
                "--scale", "0.15",
                "--gamma", "0.7",
                "--max-iterations", "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "CXK-means" in output
        assert "F-measure" in output

    def test_cluster_centralized_algorithm(self, capsys):
        code = main(
            [
                "cluster",
                "--corpus", "DBLP",
                "--algorithm", "xk",
                "--goal", "content",
                "--scale", "0.15",
                "--gamma", "0.7",
                "--max-iterations", "3",
            ]
        )
        assert code == 0
        assert "XK-means" in capsys.readouterr().out

    def test_cluster_xml_directory(self, tmp_path, capsys):
        corpus = generate_dblp(num_documents=10, seed=0)
        for tree in corpus.trees:
            (tmp_path / f"{tree.doc_id}.xml").write_text(serialize(tree))
        code = main(
            [
                "cluster",
                "--xml-dir", str(tmp_path),
                "--k", "3",
                "--peers", "2",
                "--gamma", "0.7",
                "--max-iterations", "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "clusters" in output

    def test_missing_xml_directory_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cluster", "--xml-dir", str(tmp_path / "empty")])


class TestRefineWorkersFlag:
    def test_cluster_with_refine_workers(self, capsys):
        """--refine-workers runs the cluster-sharded refinement path and
        produces the same report as the serial run (bit-exact parity)."""
        arguments = [
            "cluster",
            "--corpus", "DBLP",
            "--goal", "content",
            "--peers", "2",
            "--scale", "0.15",
            "--gamma", "0.7",
            "--max-iterations", "3",
        ]
        assert main(arguments) == 0
        serial = capsys.readouterr().out
        assert main(arguments + ["--refine-workers", "2"]) == 0
        sharded = capsys.readouterr().out
        # identical clusters and F-measure; timing and cache-statistics
        # lines may differ (refinement similarity work runs on the worker
        # engines' caches instead of the parent's)
        strip = lambda text: [
            line
            for line in text.splitlines()
            if not line.startswith(("elapsed", "simulated", "cache"))
        ]
        assert strip(sharded) == strip(serial)

    def test_refine_workers_must_be_positive(self):
        with pytest.raises(SystemExit, match="refine-workers"):
            main(
                [
                    "cluster",
                    "--corpus", "DBLP",
                    "--scale", "0.15",
                    "--refine-workers", "0",
                ]
            )


class TestBackendSpecErrors:
    """CLI and ClusteringConfig share one source of backend diagnostics."""

    def test_unknown_backend_lists_the_same_alternatives_as_the_config(self):
        """Regression (PR 5): with ``choices=`` gone from ``--backend``,
        the CLI's unknown-spec error must carry exactly the registered
        alternatives the ClusteringConfig path raises -- one message,
        produced by ``validate_backend_spec``, surfaced by both."""
        from repro.core.config import ClusteringConfig
        from repro.similarity.backend import registered_backends

        with pytest.raises(ValueError) as config_error:
            ClusteringConfig(k=2, backend="bogus")
        with pytest.raises(SystemExit) as cli_error:
            main(["cluster", "--corpus", "DBLP", "--backend", "bogus"])
        assert str(cli_error.value) == f"error: {config_error.value}"
        for name in registered_backends():
            assert name in str(cli_error.value)

    def test_malformed_block_option_exits_cleanly(self):
        with pytest.raises(SystemExit, match="block"):
            main(
                [
                    "cluster",
                    "--corpus", "DBLP",
                    "--backend", "numpy:block=nope",
                ]
            )

    def test_batch_block_items_must_be_non_negative(self):
        with pytest.raises(SystemExit, match="batch-block-items"):
            main(
                [
                    "cluster",
                    "--corpus", "DBLP",
                    "--scale", "0.15",
                    "--batch-block-items", "-1",
                ]
            )


class TestBatchBlockItemsFlag:
    def _cluster_output(self, capsys, extra):
        arguments = [
            "cluster",
            "--corpus", "DBLP",
            "--goal", "content",
            "--algorithm", "xk",
            "--scale", "0.15",
            "--gamma", "0.7",
            "--max-iterations", "3",
            "--backend", "numpy",
        ]
        assert main(arguments + extra) == 0
        output = capsys.readouterr().out
        # timing lines vary run to run; everything else must be identical
        return [
            line
            for line in output.splitlines()
            if not line.startswith(("elapsed", "simulated"))
        ]

    def test_tiled_runs_are_bit_exact_with_untiled(self, capsys):
        untiled = self._cluster_output(capsys, ["--batch-block-items", "0"])
        tiled_flag = self._cluster_output(capsys, ["--batch-block-items", "7"])
        tiled_spec = self._cluster_output(capsys, [])
        assert tiled_flag == untiled
        assert tiled_spec == untiled

    def test_backend_spec_block_option_accepted(self, capsys):
        arguments = [
            "cluster",
            "--corpus", "DBLP",
            "--goal", "content",
            "--algorithm", "xk",
            "--scale", "0.15",
            "--gamma", "0.7",
            "--max-iterations", "3",
            "--backend", "numpy:block=16",
        ]
        assert main(arguments) == 0
        assert "numpy:block=16" in capsys.readouterr().out


class TestExperimentCommands:
    def test_table1_structure_only(self, capsys):
        code = main(
            [
                "table1",
                "--scale", "0.15",
                "--nodes", "1", "2",
                "--goals", "structure",
                "--max-iterations", "2",
            ]
        )
        assert code == 0
        assert "Table 1" in capsys.readouterr().out
