"""Tests for the shared benchmark JSON schema writer (``benchmarks/benchjson.py``).

The writer is not part of the installed package (it lives beside the
standalone bench scripts), so it is loaded straight from its file path;
these tests pin the schema the CI ``optional-backends`` job and the
``BENCH_*.json`` trajectory consume: the six core record fields, the
validation rules, and the validator CLI's exit codes.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_BENCHJSON_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "benchjson.py"


def _load_benchjson():
    spec = importlib.util.spec_from_file_location("benchjson", _BENCHJSON_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


benchjson = _load_benchjson()


@pytest.fixture
def report():
    report = benchjson.BenchReport(
        "bench_backend", corpus="DBLP", scale=0.35, quick=True
    )
    report.record(
        backend="python", op="assign_all", size=75, seconds=0.05
    )
    report.record(
        backend="numpy",
        op="assign_all",
        size=75,
        seconds=0.005,
        speedup=10.0,
        parity=True,
    )
    return report


class TestBenchReport:
    def test_records_carry_the_six_core_fields(self, report):
        for row in report.records:
            assert set(benchjson.RECORD_FIELDS) <= set(row)

    def test_reference_rows_default_to_null_speedup_and_parity(self, report):
        assert report.records[0]["speedup"] is None
        assert report.records[0]["parity"] is None

    def test_extra_fields_ride_along(self):
        report = benchjson.BenchReport("bench_representatives")
        row = report.record(
            backend="python",
            op="refinement_sharded",
            size=8,
            seconds=0.1,
            speedup=2.0,
            parity=True,
            workers=4,
        )
        assert row["workers"] == 4
        assert not benchjson.validate_report(report.as_dict())

    def test_write_and_validate_round_trip(self, report, tmp_path):
        path = tmp_path / "bench.json"
        report.write(str(path))
        data = json.loads(path.read_text())
        assert data["schema"] == benchjson.SCHEMA
        assert data["script"] == "bench_backend"
        assert data["metadata"]["corpus"] == "DBLP"
        assert len(data["records"]) == 2
        assert not benchjson.validate_file(str(path))


class TestReferenceSpeedup:
    """The shared speedup-baseline policy of the bench scripts' records.

    Regression (PR 5): with the python reference excluded via
    ``--backends``, records used to carry a ratio against whatever backend
    happened to run first -- presented in the stable schema slot that is
    documented as "over the python reference".  The policy helper returns
    an explicit ``None`` (null in the artifact) whenever no real baseline
    was measured.
    """

    def test_speedup_over_the_measured_python_reference(self):
        times = {"python": 1.0, "numpy": 0.1}
        assert benchjson.reference_speedup(times, "numpy") == 10.0

    def test_reference_row_itself_is_null(self):
        times = {"python": 1.0, "numpy": 0.1}
        assert benchjson.reference_speedup(times, "python") is None

    def test_excluded_reference_yields_null_not_a_misleading_ratio(self):
        # e.g. --backends numpy torch: no python baseline was measured
        times = {"numpy": 0.1, "torch": 0.05}
        assert benchjson.reference_speedup(times, "numpy") is None
        assert benchjson.reference_speedup(times, "torch") is None

    def test_unmeasured_backend_and_zero_timings_are_null(self):
        assert benchjson.reference_speedup({"python": 1.0}, "numpy") is None
        assert (
            benchjson.reference_speedup({"python": 1.0, "numpy": 0.0}, "numpy")
            is None
        )

    def test_custom_reference_name(self):
        times = {"serial": 2.0, "sharded": 0.5}
        assert (
            benchjson.reference_speedup(times, "sharded", reference="serial")
            == 4.0
        )

    def test_null_speedup_records_pass_validation(self):
        """The validator accepts explicit-null speedups on non-reference
        rows (what the scripts emit when python was excluded)."""
        report = benchjson.BenchReport("bench_backend", reference="numpy")
        report.record(
            backend="numpy", op="assign_all", size=10, seconds=0.1
        )
        report.record(
            backend="torch",
            op="assign_all",
            size=10,
            seconds=0.05,
            speedup=None,
            parity=True,
        )
        assert benchjson.validate_report(report.as_dict()) == []


class TestTrajectoryValidation:
    """The committed ``BENCH_*.json`` trajectory format: an array of reports."""

    def test_empty_trajectory_is_valid(self):
        assert benchjson.validate_trajectory([]) == []

    def test_array_of_valid_reports_is_valid(self, report):
        assert benchjson.validate_trajectory([report.as_dict()] * 2) == []

    def test_broken_entries_are_reported_with_their_index(self, report):
        broken = report.as_dict()
        broken["schema"] = "nope"
        errors = benchjson.validate_trajectory([report.as_dict(), broken])
        assert errors and all(error.startswith("entry[1]") for error in errors)

    def test_non_array_trajectory_is_rejected(self):
        assert benchjson.validate_trajectory({"schema": "x"})

    def test_validate_file_detects_the_trajectory_shape(self, report, tmp_path):
        trajectory = tmp_path / "BENCH_backend.json"
        trajectory.write_text(json.dumps([report.as_dict()]))
        assert benchjson.validate_file(str(trajectory)) == []
        assert benchjson.main([str(trajectory)]) == 0
        trajectory.write_text("[]")
        assert benchjson.validate_file(str(trajectory)) == []


class TestAppend:
    """The ``append`` subcommand growing a ``BENCH_*.json`` trajectory."""

    def test_append_creates_a_missing_trajectory(self, report, tmp_path):
        good = tmp_path / "report.json"
        report.write(str(good))
        trajectory = tmp_path / "BENCH_backend.json"
        assert benchjson.append_report(str(good), str(trajectory)) == []
        data = json.loads(trajectory.read_text())
        assert isinstance(data, list) and len(data) == 1
        assert data[0]["script"] == "bench_backend"
        assert benchjson.validate_file(str(trajectory)) == []

    def test_append_grows_an_existing_trajectory(self, report, tmp_path):
        good = tmp_path / "report.json"
        report.write(str(good))
        trajectory = tmp_path / "BENCH_backend.json"
        trajectory.write_text(json.dumps([report.as_dict()]))
        assert benchjson.append_report(str(good), str(trajectory)) == []
        assert len(json.loads(trajectory.read_text())) == 2

    def test_invalid_report_is_rejected_without_writing(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        trajectory = tmp_path / "BENCH_backend.json"
        errors = benchjson.append_report(str(bad), str(trajectory))
        assert errors
        assert not trajectory.exists()

    def test_corrupt_trajectory_is_rejected_without_writing(
        self, report, tmp_path
    ):
        good = tmp_path / "report.json"
        report.write(str(good))
        trajectory = tmp_path / "BENCH_backend.json"
        trajectory.write_text('{"not": "an array"}')
        errors = benchjson.append_report(str(good), str(trajectory))
        assert errors
        assert json.loads(trajectory.read_text()) == {"not": "an array"}

    def test_append_cli_exit_codes(self, report, tmp_path, capsys):
        good = tmp_path / "report.json"
        report.write(str(good))
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        trajectory = tmp_path / "BENCH_backend.json"
        assert benchjson.main(["append", str(good), str(trajectory)]) == 0
        assert benchjson.main(["append", str(bad), str(trajectory)]) == 1
        assert benchjson.main(["append", str(good)]) == 2
        out = capsys.readouterr().out
        assert "appended" in out and "INVALID" in out and "usage" in out
        # the failed appends left the trajectory with exactly one entry
        assert len(json.loads(trajectory.read_text())) == 1

    def test_appended_trajectory_still_validates(self, report, tmp_path):
        good = tmp_path / "report.json"
        report.write(str(good))
        trajectory = tmp_path / "BENCH_backend.json"
        for _ in range(3):
            assert benchjson.main(["append", str(good), str(trajectory)]) == 0
        assert benchjson.main([str(trajectory)]) == 0


class TestValidation:
    def test_valid_report_has_no_errors(self, report):
        assert benchjson.validate_report(report.as_dict()) == []

    def test_wrong_schema_is_rejected(self, report):
        data = report.as_dict()
        data["schema"] = "something-else/9"
        assert any("schema" in error for error in benchjson.validate_report(data))

    def test_missing_core_fields_are_rejected(self, report):
        data = report.as_dict()
        del data["records"][0]["seconds"]
        errors = benchjson.validate_report(data)
        assert any("'seconds'" in error for error in errors)

    def test_empty_records_are_rejected(self):
        data = benchjson.BenchReport("bench_backend").as_dict()
        assert any("records" in error for error in benchjson.validate_report(data))

    @pytest.mark.parametrize(
        "field, value",
        [
            ("size", -1),
            ("size", 1.5),
            ("seconds", -0.1),
            ("speedup", 0.0),
            ("parity", "yes"),
            ("backend", ""),
            ("op", 3),
        ],
    )
    def test_bad_field_values_are_rejected(self, report, field, value):
        data = report.as_dict()
        data["records"][1][field] = value
        assert benchjson.validate_report(data)

    def test_non_object_report_is_rejected(self):
        assert benchjson.validate_report([1, 2, 3])

    def test_validator_cli_exit_codes(self, report, tmp_path, capsys):
        good = tmp_path / "good.json"
        report.write(str(good))
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        missing = tmp_path / "missing.json"
        assert benchjson.main([str(good)]) == 0
        assert benchjson.main([str(good), str(bad)]) == 1
        assert benchjson.main([str(missing)]) == 1
        assert benchjson.main([]) == 2
        out = capsys.readouterr().out
        assert "ok" in out and "INVALID" in out
