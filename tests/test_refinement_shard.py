"""Parity, fallback and lifecycle tests for cluster-sharded refinement.

Cluster-sharded representative refinement
(``repro/network/mpengine.py``: ``RefinementShard`` / ``refine_shard`` /
``refine_clusters``) dispatches one cluster's
``compute_{local,global}_representative`` per worker process and merges the
results in cluster-index order.  Because every shard runs the same
refinement code on a bit-exact backend, the sharded refinement -- and any
clustering run on top of it -- must be *identical* to the serial path for
every worker count; these tests assert exactly that (including a
hypothesis property suite across 1/2/4 workers), plus the ``workers=1``
short-circuit, the serial fallback on executor failure, the budget split
of the two-level peers x clusters parallelism, and the isolation of the
per-process engine cache across shard types.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ClusteringConfig
from repro.core.cxkmeans import CXKMeans, LocalPhaseInput, run_local_phase
from repro.core.pkmeans import PKMeans
from repro.core.representatives import (
    compute_global_representative,
    compute_local_representative,
)
from repro.core.seeding import select_seed_transactions
from repro.core.xkmeans import XKMeans
from repro.datasets.registry import get_dataset
from repro.network import mpengine
from repro.network.mpengine import (
    _PROCESS_ENGINES,
    _SHARD_EXECUTORS,
    AssignmentShard,
    RefinementShard,
    assign_shard,
    clear_process_engines,
    clear_shard_executors,
    inprocess_backend_name,
    refine_clusters,
    refine_shard,
    shard_executor,
    split_refinement_budget,
)
from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.item import SimilarityConfig
from repro.similarity.transaction import SimilarityEngine
from repro.text.vector import SparseVector
from repro.transactions.items import make_synthetic_item
from repro.transactions.transaction import make_transaction
from repro.xmlmodel.paths import XMLPath


@pytest.fixture(autouse=True)
def isolated_shard_state():
    """Each test starts and ends with empty per-process engine and
    refinement-executor caches, so pools and compiled corpora never leak
    between tests."""
    clear_process_engines()
    clear_shard_executors()
    yield
    clear_process_engines()
    clear_shard_executors()


@pytest.fixture(scope="module")
def dblp_small():
    return get_dataset("DBLP", scale=0.2, seed=0)


SIMILARITY = SimilarityConfig(f=0.5, gamma=0.8)


def make_engine(backend: str = "python") -> SimilarityEngine:
    return SimilarityEngine(
        SIMILARITY, cache=TagPathSimilarityCache(), backend=backend
    )


def make_clusters(dataset, k: int, seed: int = 0):
    """Real clusters: assign the corpus to ``k`` seed representatives."""
    engine = make_engine()
    transactions = dataset.transactions
    representatives = select_seed_transactions(transactions, k, random.Random(seed))
    clusters = [[] for _ in range(k)]
    for transaction, (index, similarity) in zip(
        transactions, engine.assign_all(transactions, representatives)
    ):
        if similarity > 0.0:
            clusters[index].append(transaction)
    return clusters


def local_shards(clusters, backend: str = "python"):
    return [
        RefinementShard(
            cluster_index=index,
            members=list(members),
            similarity=SIMILARITY,
            backend=backend,
            representative_id=f"rep:{index}",
        )
        for index, members in enumerate(clusters)
    ]


def rep_key(transaction):
    return sorted((str(item.path), item.answer) for item in transaction.items)


# --------------------------------------------------------------------------- #
# Hypothesis strategies (small alphabet so random items overlap)
# --------------------------------------------------------------------------- #
_TAGS = ["a", "b", "c"]
_TERMS = [1, 2, 3, 4]


@st.composite
def items_strategy(draw):
    depth = draw(st.integers(min_value=1, max_value=3))
    steps = [draw(st.sampled_from(_TAGS)) for _ in range(depth)] + ["S"]
    if draw(st.booleans()):
        weights = {
            term: draw(st.floats(min_value=0.25, max_value=2.0))
            for term in draw(st.sets(st.sampled_from(_TERMS), min_size=1, max_size=3))
        }
        vector = SparseVector(weights)
    else:
        vector = None
    answer = draw(st.sampled_from(["alpha", "beta", "gamma delta", "42"]))
    return make_synthetic_item(XMLPath(tuple(steps)), answer, vector=vector)


@st.composite
def transactions_strategy(draw, min_items: int = 1, max_items: int = 4):
    count = draw(st.integers(min_value=min_items, max_value=max_items))
    items = [draw(items_strategy()) for _ in range(count)]
    return make_transaction(f"tr{draw(st.integers(0, 10_000))}", items)


@st.composite
def clusters_strategy(draw, min_clusters: int = 2, max_clusters: int = 4):
    count = draw(st.integers(min_value=min_clusters, max_value=max_clusters))
    return [
        draw(
            st.lists(transactions_strategy(), min_size=1, max_size=3)
        )
        for _ in range(count)
    ]


# --------------------------------------------------------------------------- #
# Shard model basics
# --------------------------------------------------------------------------- #
class TestShardModel:
    def test_kind_is_derived_from_weights(self):
        local = RefinementShard(
            cluster_index=0, members=[], similarity=SIMILARITY,
            backend="python", representative_id="rep",
        )
        assert local.kind == "local"
        global_shard = RefinementShard(
            cluster_index=0, members=[], similarity=SIMILARITY,
            backend="python", representative_id="rep", weights=[3],
        )
        assert global_shard.kind == "global"

    def test_refine_shard_matches_direct_computation(self, dblp_small):
        clusters = make_clusters(dblp_small, 3)
        engine = make_engine()
        for shard in local_shards(clusters):
            index, representative = refine_shard(shard)
            assert index == shard.cluster_index
            expected = compute_local_representative(
                shard.members, engine, representative_id=shard.representative_id
            )
            assert rep_key(representative) == rep_key(expected)

    def test_inprocess_backend_name_unwraps_sharded_inner(self):
        assert inprocess_backend_name(make_engine("python")) == "python"
        engine = make_engine("sharded:2:python")
        assert inprocess_backend_name(engine) == "python"

    def test_config_validates_refine_workers(self):
        with pytest.raises(ValueError, match="refine_workers"):
            ClusteringConfig(k=2, refine_workers=0)
        config = ClusteringConfig(k=2)
        assert config.effective_refine_workers == 1
        assert config.with_refine_workers(4).effective_refine_workers == 4
        assert config.with_refine_workers(None).refine_workers is None

    @pytest.mark.parametrize(
        "budget,phases,expected",
        [(8, 1, 8), (8, 2, 4), (8, 3, 2), (4, 8, 1), (1, 4, 1), (5, 0, 5)],
    )
    def test_split_refinement_budget(self, budget, phases, expected):
        assert split_refinement_budget(budget, phases) == expected

    def test_phase_refinement_config_resolves_per_executor(self):
        """The shared budget policy: serial phase execution keeps the full
        budget; phases that will really run in daemonic pool workers (which
        cannot nest pools) get a budget of 1; unknown executor types split
        the budget equally across concurrent phases."""
        from repro.network.mpengine import (
            MultiprocessingExecutor,
            SerialExecutor,
            phase_refinement_config,
        )

        config = ClusteringConfig(k=2, refine_workers=8)
        serial = phase_refinement_config(config, SerialExecutor(), 4)
        assert serial.effective_refine_workers == 8
        # a one-process executor cannot dispatch -> phases run serially in
        # this process and keep the full budget
        degraded = phase_refinement_config(
            config, MultiprocessingExecutor(processes=1), 4
        )
        assert degraded.effective_refine_workers == 8
        # a dispatching executor runs phases in daemonic workers -> clamp
        dispatching = MultiprocessingExecutor(processes=4)
        if dispatching.can_dispatch():  # true under pytest (file __main__)
            clamped = phase_refinement_config(config, dispatching, 4)
            assert clamped.effective_refine_workers == 1

        class ThreadishExecutor:  # no can_dispatch: unknown type
            workers = 4

        shared = phase_refinement_config(config, ThreadishExecutor(), 4)
        assert shared.effective_refine_workers == 2
        shared_few = phase_refinement_config(config, ThreadishExecutor(), 2)
        assert shared_few.effective_refine_workers == 4


# --------------------------------------------------------------------------- #
# Parity: serial vs. sharded, every worker count
# --------------------------------------------------------------------------- #
class TestRefinementParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_local_refinement_matches_serial(self, dblp_small, workers):
        clusters = make_clusters(dblp_small, 4)
        engine = make_engine()
        expected = {
            index: compute_local_representative(
                members, engine, representative_id=f"rep:{index}"
            )
            for index, members in enumerate(clusters)
        }
        refined = refine_clusters(local_shards(clusters), engine, workers=workers)
        assert set(refined) == set(expected)
        for index in expected:
            assert rep_key(refined[index]) == rep_key(expected[index])

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_global_refinement_matches_serial(self, dblp_small, workers):
        clusters = [cluster for cluster in make_clusters(dblp_small, 4) if cluster]
        engine = make_engine()
        locals_per_cluster = [
            (
                compute_local_representative(members, engine, representative_id=f"l:{i}"),
                len(members),
            )
            for i, members in enumerate(clusters)
        ]
        # every "peer" contributes the same weighted local representatives
        shards = [
            RefinementShard(
                cluster_index=index,
                members=[representative],
                weights=[weight],
                similarity=SIMILARITY,
                backend="python",
                representative_id=f"rep:global:{index}",
            )
            for index, (representative, weight) in enumerate(locals_per_cluster)
        ]
        expected = {
            index: compute_global_representative(
                [(representative, weight)],
                engine,
                representative_id=f"rep:global:{index}",
            )
            for index, (representative, weight) in enumerate(locals_per_cluster)
        }
        refined = refine_clusters(shards, engine, workers=workers)
        for index in expected:
            assert rep_key(refined[index]) == rep_key(expected[index])

    def test_repeat_runs_are_deterministic(self, dblp_small):
        clusters = make_clusters(dblp_small, 4)
        engine = make_engine()
        first = refine_clusters(local_shards(clusters), engine, workers=2)
        second = refine_clusters(local_shards(clusters), engine, workers=2)
        assert {i: rep_key(r) for i, r in first.items()} == {
            i: rep_key(r) for i, r in second.items()
        }

    @settings(max_examples=10, deadline=None)
    @given(clusters=clusters_strategy())
    def test_property_parity_across_worker_counts(self, clusters):
        """Hypothesis parity: random clusters refine bit-exactly under
        1, 2 and 4 workers (the acceptance bar of the sharded refinement)."""
        engine = make_engine()
        expected = {
            index: rep_key(
                compute_local_representative(
                    members, engine, representative_id=f"rep:{index}"
                )
            )
            for index, members in enumerate(clusters)
        }
        for workers in (1, 2, 4):
            refined = refine_clusters(
                local_shards(clusters), engine, workers=workers
            )
            assert {i: rep_key(r) for i, r in refined.items()} == expected


# --------------------------------------------------------------------------- #
# Short-circuits and fallbacks
# --------------------------------------------------------------------------- #
class TestFallbacks:
    def test_workers_one_never_creates_an_executor(self, dblp_small):
        clusters = make_clusters(dblp_small, 3)
        refine_clusters(local_shards(clusters), make_engine(), workers=1)
        assert not _SHARD_EXECUTORS

    def test_single_populated_shard_stays_in_process(self, dblp_small):
        clusters = [dblp_small.transactions[:6], []]
        refined = refine_clusters(local_shards(clusters), make_engine(), workers=4)
        assert not _SHARD_EXECUTORS
        assert set(refined) == {0, 1}
        assert refined[1].is_empty()

    def test_empty_clusters_yield_empty_representatives(self):
        refined = refine_clusters(local_shards([[], []]), make_engine(), workers=4)
        assert refined[0].is_empty() and refined[1].is_empty()
        assert not _SHARD_EXECUTORS

    def test_executor_failure_falls_back_to_serial(self, dblp_small, monkeypatch):
        """A crashing dispatch degrades to in-process refinement with the
        exact serial results."""
        clusters = make_clusters(dblp_small, 3)
        engine = make_engine()
        expected = refine_clusters(local_shards(clusters), engine, workers=1)

        class ExplodingExecutor:
            def can_dispatch(self):
                return True

            def dispatch(self, function, arguments):
                raise RuntimeError("worker crashed")

        monkeypatch.setattr(
            mpengine, "shard_executor", lambda workers: ExplodingExecutor()
        )
        refined = refine_clusters(local_shards(clusters), engine, workers=4)
        assert {i: rep_key(r) for i, r in refined.items()} == {
            i: rep_key(r) for i, r in expected.items()
        }

    def test_run_local_phase_parity_with_refinement_workers(self, dblp_small):
        """The full local phase (assignment + sharded refinement) is
        bit-exact with the serial phase."""
        transactions = dblp_small.transactions
        representatives = select_seed_transactions(transactions, 3, random.Random(1))
        outputs = {}
        for refine_workers in (None, 2):
            clear_process_engines()
            config = ClusteringConfig(
                k=3,
                similarity=SIMILARITY,
                backend="python",
                refine_workers=refine_workers,
            )
            outputs[refine_workers] = run_local_phase(
                LocalPhaseInput(
                    peer_id=0,
                    transactions=list(transactions),
                    global_representatives=list(representatives),
                    config=config,
                )
            )
        serial, sharded = outputs[None], outputs[2]
        assert sharded.assignment == serial.assignment
        assert sharded.cluster_sizes == serial.cluster_sizes
        assert [rep_key(r) for r in sharded.local_representatives] == [
            rep_key(r) for r in serial.local_representatives
        ]


# --------------------------------------------------------------------------- #
# Full-fit parity per seed
# --------------------------------------------------------------------------- #
class TestFitParity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_cxkmeans_fit_matches_serial_per_seed(self, dblp_small, workers):
        partitions = [dblp_small.transactions[0::2], dblp_small.transactions[1::2]]
        results = {}
        for refine_workers in (None, workers):
            config = ClusteringConfig(
                k=3,
                similarity=SIMILARITY,
                seed=3,
                max_iterations=4,
                refine_workers=refine_workers,
            )
            result = CXKMeans(config).fit(partitions)
            results[refine_workers] = (
                result.partition(),
                [rep_key(rep) for rep in result.representatives()],
                result.iterations,
            )
        assert results[workers] == results[None]

    def test_pkmeans_fit_matches_serial(self, dblp_small):
        partitions = [dblp_small.transactions[0::2], dblp_small.transactions[1::2]]
        results = {}
        for refine_workers in (None, 2):
            config = ClusteringConfig(
                k=3,
                similarity=SIMILARITY,
                seed=5,
                max_iterations=3,
                refine_workers=refine_workers,
            )
            result = PKMeans(config).fit(partitions)
            results[refine_workers] = (
                result.partition(),
                [rep_key(rep) for rep in result.representatives()],
            )
        assert results[2] == results[None]

    def test_xkmeans_fit_matches_serial(self, dblp_small):
        results = {}
        for refine_workers in (None, 2):
            config = ClusteringConfig(
                k=4,
                similarity=SIMILARITY,
                seed=7,
                max_iterations=4,
                refine_workers=refine_workers,
            )
            result = XKMeans(config).fit(dblp_small.transactions)
            results[refine_workers] = (
                result.partition(),
                [rep_key(rep) for rep in result.representatives()],
                result.iterations,
            )
        assert results[2] == results[None]

    def test_numpy_inner_backend_parity(self, dblp_small):
        pytest.importorskip("numpy")
        partitions = [dblp_small.transactions[0::2], dblp_small.transactions[1::2]]
        results = {}
        for backend, refine_workers in (("python", None), ("numpy", 2)):
            config = ClusteringConfig(
                k=3,
                similarity=SIMILARITY,
                seed=0,
                max_iterations=3,
                backend=backend,
                refine_workers=refine_workers,
            )
            result = CXKMeans(config).fit(partitions)
            results[backend] = (
                result.partition(),
                [rep_key(rep) for rep in result.representatives()],
            )
        assert results["numpy"] == results["python"]


# --------------------------------------------------------------------------- #
# Executor lifecycle and engine-cache isolation
# --------------------------------------------------------------------------- #
class TestLifecycleAndIsolation:
    def test_dispatch_failure_closes_the_broken_pool(self):
        """A pool whose map failed is closed before the error propagates,
        so the cached executor respawns a fresh pool on the next dispatch
        instead of reusing the broken one for the rest of the process."""
        from repro.network.mpengine import MultiprocessingExecutor

        executor = MultiprocessingExecutor(processes=2)
        if not executor.can_dispatch():  # pragma: no cover - env dependent
            pytest.skip("environment cannot dispatch to worker processes")

        class BrokenPool:
            def map(self, *args, **kwargs):
                raise RuntimeError("lost worker")

            def close(self):
                pass

            def join(self):
                pass

        executor._pool = BrokenPool()
        with pytest.raises(RuntimeError, match="lost worker"):
            executor.dispatch(str, [1, 2])
        assert executor._pool is None

    def test_shard_executor_is_cached_per_worker_count(self):
        first = shard_executor(2)
        assert shard_executor(2) is first
        assert shard_executor(3) is not first
        assert set(_SHARD_EXECUTORS) == {2, 3}

    def test_clear_shard_executors_closes_and_empties(self):
        executor = shard_executor(2)
        clear_shard_executors()
        assert not _SHARD_EXECUTORS
        assert executor._pool is None  # closed, not just dropped

    def test_shard_types_share_the_process_engine_cache(self, dblp_small):
        """Assignment and refinement shards with the same (similarity,
        backend) key reuse one cached engine -- and different backends get
        isolated engines."""
        transactions = dblp_small.transactions[:10]
        representatives = transactions[:2]
        assign_shard(
            AssignmentShard(
                transactions=list(transactions),
                representatives=list(representatives),
                similarity=SIMILARITY,
                backend="python",
            )
        )
        assert len(_PROCESS_ENGINES) == 1
        refine_shard(
            RefinementShard(
                cluster_index=0,
                members=list(transactions),
                similarity=SIMILARITY,
                backend="python",
                representative_id="rep",
            )
        )
        # same key -> same engine, no second entry
        assert len(_PROCESS_ENGINES) == 1
        refine_shard(
            RefinementShard(
                cluster_index=0,
                members=list(transactions),
                similarity=SIMILARITY,
                backend="numpy",
                representative_id="rep",
            )
        )
        assert len(_PROCESS_ENGINES) == 2
        assert (SIMILARITY, "python") in _PROCESS_ENGINES
        assert (SIMILARITY, "numpy") in _PROCESS_ENGINES

    def test_autouse_isolation_left_no_state_behind(self):
        assert not _PROCESS_ENGINES
        assert not _SHARD_EXECUTORS
