"""Tests for clustering result objects (repro.core.results)."""

from repro.core.results import ClusterInfo, ClusteringResult, build_result
from repro.transactions.items import make_synthetic_item
from repro.transactions.transaction import make_transaction
from repro.xmlmodel.paths import XMLPath


def transaction(tid: str):
    return make_transaction(tid, [make_synthetic_item(XMLPath.parse("r.a.S"), tid)])


def sample_result():
    rep0 = transaction("rep0")
    rep1 = transaction("rep1")
    members = [[transaction("a"), transaction("b")], [transaction("c")]]
    trash = [transaction("t")]
    return build_result(
        representatives=[rep0, rep1],
        members=members,
        trash_members=trash,
        iterations=4,
        converged=True,
        elapsed_seconds=1.5,
        simulated_seconds=0.7,
        network={"messages": 10.0},
        metadata={"algorithm": "CXK-means", "peers": 3},
    )


class TestClusterInfo:
    def test_size_and_member_ids(self):
        info = ClusterInfo(0, transaction("rep"), [transaction("a"), transaction("b")])
        assert info.size() == 2
        assert info.member_ids() == ["a", "b"]


class TestClusteringResult:
    def test_counts(self):
        result = sample_result()
        assert result.k == 2
        assert result.cluster_sizes() == [2, 1]
        assert result.total_clustered() == 3
        assert result.trash_size() == 1

    def test_assignments_with_and_without_trash(self):
        result = sample_result()
        assignments = result.assignments()
        assert assignments == {"a": 0, "b": 0, "c": 1}
        with_trash = result.assignments(include_trash=True)
        assert with_trash["t"] == -1

    def test_partition_layout(self):
        result = sample_result()
        assert result.partition() == [["a", "b"], ["c"]]
        assert result.partition(include_trash=True)[-1] == ["t"]

    def test_representatives_are_exposed(self):
        result = sample_result()
        reps = result.representatives()
        assert [r.transaction_id for r in reps] == ["rep0", "rep1"]

    def test_summary_contains_network_and_timing(self):
        summary = sample_result().summary()
        assert summary["k"] == 2
        assert summary["iterations"] == 4
        assert summary["converged"] is True
        assert summary["network_messages"] == 10.0
        assert summary["simulated_seconds"] == 0.7

    def test_metadata_is_preserved(self):
        result = sample_result()
        assert result.metadata["algorithm"] == "CXK-means"
        assert result.metadata["peers"] == 3
