"""Tests for structural similarity (Eq. 3) and the tag-path cache."""

import pytest

from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.structural import (
    dirichlet,
    path_similarity,
    positional_tag_score,
    structural_similarity,
    tag_path_similarity,
)
from repro.transactions.items import make_synthetic_item
from repro.xmlmodel.paths import XMLPath


class TestDirichlet:
    def test_exact_match(self):
        assert dirichlet("author", "author") == 1.0

    def test_mismatch(self):
        assert dirichlet("author", "writer") == 0.0
        assert dirichlet("Author", "author") == 0.0  # purely syntactic


class TestPositionalTagScore:
    def test_same_position_scores_one(self):
        assert positional_tag_score("b", ["a", "b", "c"], 2) == 1.0

    def test_score_decays_with_distance(self):
        # tag at position 1 matching position 3 of the other path: 1/(1+2)
        assert positional_tag_score("c", ["a", "b", "c"], 1) == pytest.approx(1 / 3)

    def test_no_match_scores_zero(self):
        assert positional_tag_score("zz", ["a", "b"], 1) == 0.0

    def test_best_position_is_chosen(self):
        # 'a' occurs at positions 1 and 3; from position 2 the best is 1/(1+1)
        assert positional_tag_score("a", ["a", "b", "a"], 2) == pytest.approx(0.5)


class TestTagPathSimilarity:
    def test_identical_paths_score_one(self):
        path = ("dblp", "inproceedings", "author")
        assert tag_path_similarity(path, path) == pytest.approx(1.0)

    def test_disjoint_paths_score_zero(self):
        assert tag_path_similarity(("a", "b"), ("x", "y")) == 0.0

    def test_empty_path_scores_zero(self):
        assert tag_path_similarity((), ("a",)) == 0.0

    def test_symmetry(self):
        p = ("dblp", "article", "title")
        q = ("dblp", "inproceedings", "title")
        assert tag_path_similarity(p, q) == pytest.approx(tag_path_similarity(q, p))

    def test_value_is_within_unit_interval(self):
        p = ("a", "b", "c", "d")
        q = ("a", "c")
        assert 0.0 <= tag_path_similarity(p, q) <= 1.0

    def test_partial_overlap_value(self):
        # p = a.b ; q = a.c -> only 'a' matches, at the same position, both
        # directions: (1 + 1) / (2 + 2) = 0.5
        assert tag_path_similarity(("a", "b"), ("a", "c")) == pytest.approx(0.5)

    def test_positional_penalty(self):
        # same tags shifted by one level score less than perfectly aligned
        aligned = tag_path_similarity(("a", "b", "c"), ("a", "b", "c"))
        shifted = tag_path_similarity(("a", "b", "c"), ("x", "a", "b"))
        assert shifted < aligned
        assert shifted > 0.0

    def test_longer_common_prefix_scores_higher(self):
        base = ("dblp", "inproceedings", "author")
        close = ("dblp", "inproceedings", "title")
        far = ("dblp", "article", "title")
        assert tag_path_similarity(base, close) > tag_path_similarity(base, far)


class TestItemStructuralSimilarity:
    def test_items_with_same_tag_path_score_one(self):
        a = make_synthetic_item(XMLPath.parse("dblp.inproceedings.author.S"), "Zaki")
        b = make_synthetic_item(XMLPath.parse("dblp.inproceedings.author.S"), "Aggarwal")
        assert structural_similarity(a, b) == pytest.approx(1.0)

    def test_attribute_and_text_items_compare_by_tag_path(self):
        # @key's tag path is dblp.inproceedings: partial overlap with the
        # author tag path
        key = make_synthetic_item(XMLPath.parse("dblp.inproceedings.@key"), "k")
        author = make_synthetic_item(XMLPath.parse("dblp.inproceedings.author.S"), "Zaki")
        value = structural_similarity(key, author)
        assert 0.0 < value < 1.0

    def test_path_similarity_wrapper(self):
        assert path_similarity(
            XMLPath.parse("dblp.inproceedings.author.S"),
            XMLPath.parse("dblp.inproceedings.author.S"),
        ) == pytest.approx(1.0)


class TestTagPathCache:
    def test_cache_returns_same_values_as_direct_computation(self):
        cache = TagPathSimilarityCache()
        p = XMLPath.parse("dblp.inproceedings.author")
        q = XMLPath.parse("dblp.article.author")
        assert cache.similarity(p, q) == pytest.approx(
            tag_path_similarity(p.steps, q.steps)
        )

    def test_cache_is_symmetric_and_counts_hits(self):
        cache = TagPathSimilarityCache()
        p = XMLPath.parse("a.b")
        q = XMLPath.parse("a.c")
        cache.similarity(p, q)
        cache.similarity(q, p)
        assert cache.hits == 1 and cache.misses == 1
        assert len(cache) == 1

    def test_precompute_fills_all_pairs(self):
        cache = TagPathSimilarityCache()
        paths = [XMLPath.parse(p) for p in ("a.b", "a.c", "d.e")]
        entries = cache.precompute(paths)
        assert entries == 6  # 3 pairs + 3 self-pairs
        cache.similarity(paths[0], paths[1])
        assert cache.misses == 0

    def test_precompute_counts_precomputed_entries_not_misses(self):
        """Regression: precompute must be visible in the statistics.

        Entries inserted by precompute used to leave every counter at
        zero, so run records with precompute on reported ``misses=0`` and
        a meaningless 100% hit rate with no trace of the eager work; the
        dedicated ``precomputed`` counter pins the real accounting.
        """
        cache = TagPathSimilarityCache()
        paths = [XMLPath.parse(p) for p in ("a.b", "a.c", "d.e")]
        cache.precompute(paths)
        assert cache.stats() == {
            "entries": 6,
            "hits": 0,
            "misses": 0,
            "precomputed": 6,
        }
        # re-precomputing the same paths adds (and counts) nothing
        cache.precompute(paths)
        assert cache.stats()["precomputed"] == 6
        # a lookup landing on a precomputed entry is a hit, not a miss
        cache.similarity(paths[0], paths[1])
        assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 0
        # a genuinely new pair still counts as a miss
        cache.similarity(paths[0], XMLPath.parse("z.z"))
        assert cache.stats()["misses"] == 1
        assert cache.stats()["precomputed"] == 6

    def test_precompute_extends_the_counter_for_new_paths_only(self):
        cache = TagPathSimilarityCache()
        cache.precompute([XMLPath.parse("a.b"), XMLPath.parse("a.c")])
        assert cache.stats()["precomputed"] == 3
        # a second precompute over a superset counts only the new pairs
        cache.precompute(
            [XMLPath.parse("a.b"), XMLPath.parse("a.c"), XMLPath.parse("d.e")]
        )
        assert cache.stats()["precomputed"] == 6

    def test_item_similarity_uses_tag_paths(self):
        cache = TagPathSimilarityCache()
        a = make_synthetic_item(XMLPath.parse("x.y.S"), "1")
        b = make_synthetic_item(XMLPath.parse("x.y.@id"), "2")
        assert cache.item_similarity(a, b) == pytest.approx(
            tag_path_similarity(("x", "y"), ("x", "y"))
        )

    def test_clear_resets_statistics(self):
        cache = TagPathSimilarityCache()
        cache.similarity(XMLPath.parse("a.b"), XMLPath.parse("a.b"))
        cache.precompute([XMLPath.parse("a.b"), XMLPath.parse("a.c")])
        cache.clear()
        assert cache.stats() == {
            "entries": 0,
            "hits": 0,
            "misses": 0,
            "precomputed": 0,
        }


class TestCacheOrderIndependence:
    """Regression tests: cached similarities are pure functions of the pair.

    ``tag_path_similarity`` sums its two directed passes in argument order,
    so swapping operands can change the float by one ULP; the cache must
    therefore evaluate in canonical key order, or the value returned for a
    pair would depend on which direction -- and which query history --
    filled it first.  Found by the representative-backend parity harness.
    """

    def test_similarity_is_independent_of_query_order(self):
        short = XMLPath.parse("c")
        long_a = XMLPath.parse("c.a.c")
        long_b = XMLPath.parse("c.b.c")
        # history 1: short path queried first
        first = TagPathSimilarityCache()
        value_fwd = first.similarity(short, long_a)
        # history 2: long path queried first
        second = TagPathSimilarityCache()
        value_rev = second.similarity(long_a, short)
        assert value_fwd == value_rev  # exact, not approximate
        # mathematically identical pairs stay exactly equal regardless of
        # the direction each one was first computed in
        mixed = TagPathSimilarityCache()
        assert mixed.similarity(short, long_a) == mixed.similarity(long_b, short)

    def test_precompute_matches_lazy_fill_exactly(self):
        paths = [XMLPath.parse(p) for p in ("c", "c.a.c", "c.b.c", "d")]
        eager = TagPathSimilarityCache()
        eager.precompute(paths)
        lazy = TagPathSimilarityCache()
        for path_b in reversed(paths):
            for path_a in paths:
                assert lazy.similarity(path_b, path_a) == eager.similarity(
                    path_a, path_b
                )
