"""Tests for the pure-Python XML parser (repro.xmlmodel.parser)."""

import pytest

from repro.xmlmodel.errors import XMLSyntaxError
from repro.xmlmodel.parser import XMLParser, decode_entities, parse_xml
from repro.xmlmodel.serializer import serialize, to_compact_string


class TestBasicParsing:
    def test_single_element_with_text(self):
        tree = parse_xml("<title>Hello</title>")
        assert tree.root.label == "title"
        assert tree.root.children[0].value == "Hello"

    def test_attributes_become_leaves(self):
        tree = parse_xml('<paper key="k1" year="2003"/>')
        labels = {(c.label, c.value) for c in tree.root.children}
        assert labels == {("@key", "k1"), ("@year", "2003")}

    def test_single_quoted_attributes(self):
        tree = parse_xml("<a x='1'/>")
        assert tree.root.children[0].value == "1"

    def test_self_closing_element(self):
        tree = parse_xml("<root><empty/></root>")
        assert tree.root.children[0].label == "empty"
        assert tree.root.children[0].children == []

    def test_nested_elements(self):
        tree = parse_xml("<a><b><c>deep</c></b></a>")
        assert tree.depth() == 4

    def test_whitespace_between_elements_is_dropped(self):
        tree = parse_xml("<a>\n  <b>x</b>\n  <c>y</c>\n</a>")
        assert [c.label for c in tree.root.children] == ["b", "c"]

    def test_whitespace_kept_when_requested(self):
        tree = XMLParser(keep_whitespace_text=True).parse("<a> <b>x</b></a>")
        assert tree.root.children[0].label == "S"

    def test_mixed_content_is_preserved(self):
        tree = parse_xml("<p>before <b>bold</b> after</p>")
        labels = [c.label for c in tree.root.children]
        assert labels == ["S", "b", "S"]

    def test_doc_id_is_attached(self):
        tree = parse_xml("<a/>", doc_id="mydoc")
        assert tree.doc_id == "mydoc"

    def test_paper_example_counts(self, paper_tree):
        assert paper_tree.node_count() == 27
        assert paper_tree.leaf_count() == 13


class TestProlog:
    def test_xml_declaration_is_skipped(self):
        tree = parse_xml('<?xml version="1.0" encoding="UTF-8"?><a>x</a>')
        assert tree.root.label == "a"

    def test_doctype_is_skipped(self):
        tree = parse_xml('<!DOCTYPE dblp SYSTEM "dblp.dtd"><dblp><x>1</x></dblp>')
        assert tree.root.label == "dblp"

    def test_doctype_with_internal_subset(self):
        text = "<!DOCTYPE r [ <!ELEMENT r (#PCDATA)> ]><r>ok</r>"
        tree = parse_xml(text)
        assert tree.root.children[0].value == "ok"

    def test_leading_comment_is_skipped(self):
        tree = parse_xml("<!-- header --><a>x</a>")
        assert tree.root.label == "a"

    def test_trailing_comment_and_pi_are_allowed(self):
        tree = parse_xml("<a>x</a><!-- done --><?pi data?>")
        assert tree.root.label == "a"


class TestEntitiesAndCData:
    def test_predefined_entities_in_text(self):
        tree = parse_xml("<a>x &lt; y &amp; z</a>")
        assert tree.root.children[0].value == "x < y & z"

    def test_entities_in_attributes(self):
        tree = parse_xml('<a title="Tom &amp; Jerry"/>')
        assert tree.root.children[0].value == "Tom & Jerry"

    def test_numeric_character_references(self):
        assert decode_entities("&#65;&#x42;") == "AB"

    def test_unknown_entity_raises(self):
        with pytest.raises(XMLSyntaxError):
            parse_xml("<a>&unknown;</a>")

    def test_cdata_section_is_literal(self):
        tree = parse_xml("<a><![CDATA[1 < 2 & 3 > 2]]></a>")
        assert tree.root.children[0].value == "1 < 2 & 3 > 2"

    def test_comment_inside_element_is_skipped(self):
        tree = parse_xml("<a><!-- note --><b>x</b></a>")
        assert [c.label for c in tree.root.children] == ["b"]


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "<a><b></a>",
            "<a>",
            "<a></b>",
            "<a x=1/>",
            "<a><b>text</a>",
            "<a/><b/>",
            "text only",
        ],
    )
    def test_malformed_documents_raise(self, text):
        with pytest.raises(XMLSyntaxError):
            parse_xml(text)

    def test_error_carries_position(self):
        with pytest.raises(XMLSyntaxError) as info:
            parse_xml("<a>\n<b></c>\n</a>")
        assert info.value.line == 2

    def test_unterminated_comment(self):
        with pytest.raises(XMLSyntaxError):
            parse_xml("<a><!-- no end</a>")

    def test_unterminated_cdata(self):
        with pytest.raises(XMLSyntaxError):
            parse_xml("<a><![CDATA[ no end</a>")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "<a><b>x</b><b>y</b></a>",
            '<paper key="k1"><author>Zaki</author><title>XRules</title></paper>',
            "<r><s t='1'><u>deep &amp; nested</u></s></r>",
        ],
    )
    def test_parse_serialize_parse_is_stable(self, text):
        first = parse_xml(text)
        second = parse_xml(serialize(first))
        assert first == second

    def test_compact_round_trip_of_paper_example(self, paper_tree):
        assert parse_xml(to_compact_string(paper_tree)) == paper_tree
