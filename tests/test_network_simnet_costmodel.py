"""Tests for the simulated network, the cost model and the executors."""

import time

import pytest

from repro.network.costmodel import CostModel, saturation_point, speedup_curve
from repro.network.message import Message, MessageKind, representative_payload
from repro.network.mpengine import MultiprocessingExecutor, SerialExecutor, make_executor
from repro.network.peer import make_peers
from repro.network.simnet import SimulatedNetwork
from repro.transactions.items import make_synthetic_item
from repro.transactions.transaction import make_transaction
from repro.xmlmodel.paths import XMLPath


def rep_transaction(tid="rep"):
    return make_transaction(
        tid, [make_synthetic_item(XMLPath.parse("r.a.S"), "value")]
    )


def two_peer_network(cost_model=None):
    peers = make_peers([[rep_transaction("a")], [rep_transaction("b")]], [[0], [1]])
    return SimulatedNetwork(peers, cost_model=cost_model)


class TestSimulatedNetwork:
    def test_send_delivers_and_records(self):
        network = two_peer_network()
        with network.round():
            network.send(Message(0, 1, MessageKind.FLAG, {"state": "done"}))
        assert len(network.peer(1).inbox) == 1
        assert network.stats.total_messages() == 1

    def test_self_messages_are_not_counted(self):
        network = two_peer_network()
        with network.round():
            network.send(Message(0, 0, MessageKind.FLAG))
        assert network.stats.total_messages() == 0
        assert network.peer(0).inbox == []

    def test_broadcast_reaches_everyone_but_the_sender(self):
        network = two_peer_network()
        with network.round():
            count = network.broadcast(0, MessageKind.FLAG, {"state": "continue"})
        assert count == 1
        assert len(network.peer(1).inbox) == 1

    def test_round_time_is_max_compute_plus_communication(self):
        cost_model = CostModel(t_comm=1.0, unit_comm=0.0)
        network = two_peer_network(cost_model)
        network.begin_round()
        network.stats.record_compute(0, 2.0)
        network.stats.record_compute(1, 5.0)
        payload = representative_payload([(0, rep_transaction(), 1)])
        network.send(Message(0, 1, MessageKind.LOCAL_REPRESENTATIVES, payload))
        duration = network.end_round()
        # max compute (5.0) + 1 transferred transaction * t_comm (1.0)
        assert duration == pytest.approx(6.0)
        assert network.simulated_seconds == pytest.approx(6.0)

    def test_measure_compute_records_elapsed_time(self):
        network = two_peer_network()
        network.begin_round()
        with network.measure_compute(0):
            time.sleep(0.01)
        network.end_round()
        assert network.stats.rounds[0].compute_seconds[0] >= 0.01

    def test_end_round_without_begin_raises(self):
        network = two_peer_network()
        with pytest.raises(RuntimeError):
            network.end_round()

    def test_summary_contains_headline_metrics(self):
        network = two_peer_network()
        with network.round():
            network.broadcast(0, MessageKind.FLAG, None)
        summary = network.summary()
        assert summary["peers"] == 2.0
        assert summary["messages"] == 1.0
        assert "simulated_seconds" in summary and "communication_seconds" in summary


class TestCostModel:
    def test_predicted_time_decreases_then_increases(self):
        model = CostModel(t_mem=1e-6, t_comm=1e-2)
        curve = model.predicted_curve(
            range(1, 30), dataset_size=500, k=10, max_transaction_length=8, max_tcu_size=20
        )
        minimum_m = min(curve, key=curve.get)
        assert 1 < minimum_m < 29
        assert curve[1] > curve[minimum_m]
        assert curve[29] > curve[minimum_m]

    def test_optimal_nodes_matches_curve_minimum(self):
        model = CostModel(t_mem=1e-6, t_comm=1e-2)
        analytic = model.optimal_nodes(dataset_size=500, k=10, max_transaction_length=8)
        curve = model.predicted_curve(
            range(1, 60), dataset_size=500, k=10, max_transaction_length=8, max_tcu_size=20
        )
        empirical = min(curve, key=curve.get)
        assert abs(analytic - empirical) <= 2.0

    def test_larger_dataset_moves_optimum_right(self):
        model = CostModel()
        small = model.optimal_nodes(dataset_size=100, k=10, max_transaction_length=8)
        large = model.optimal_nodes(dataset_size=400, k=10, max_transaction_length=8)
        assert large > small

    def test_balanced_clusters_move_optimum_left(self):
        model = CostModel()
        balanced = model.optimal_nodes(dataset_size=200, k=10, max_transaction_length=8, h=10)
        skewed = model.optimal_nodes(dataset_size=200, k=10, max_transaction_length=8, h=1)
        assert skewed > balanced

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            CostModel().predicted_time(0, 10, 2, 5, 5)

    def test_communication_seconds(self):
        model = CostModel(t_comm=2.0, unit_comm=0.5)
        assert model.communication_seconds(3, 4.0) == pytest.approx(3 * 2.0 + 4.0 * 0.5)

    def test_saturation_point_of_flat_then_rising_curve(self):
        curve = {1: 10.0, 3: 4.0, 5: 2.0, 7: 1.95, 9: 2.4}
        assert saturation_point(curve) == 5

    def test_saturation_point_requires_data(self):
        with pytest.raises(ValueError):
            saturation_point({})

    def test_speedup_curve(self):
        curve = {1: 10.0, 2: 5.0, 4: 2.5}
        speedups = speedup_curve(curve)
        assert speedups[1] == 1.0
        assert speedups[4] == pytest.approx(4.0)

    def test_speedup_requires_centralized_baseline(self):
        with pytest.raises(ValueError):
            speedup_curve({2: 5.0})


def _square(x):
    return x * x


class TestExecutors:
    def test_serial_executor(self):
        executor = SerialExecutor()
        assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert executor.workers == 1
        executor.close()

    def test_make_executor_factory(self):
        assert isinstance(make_executor(False), SerialExecutor)
        assert isinstance(make_executor(True, processes=2), MultiprocessingExecutor)

    def test_multiprocessing_executor_preserves_order(self):
        with MultiprocessingExecutor(processes=2) as executor:
            assert executor.map(_square, list(range(8))) == [x * x for x in range(8)]

    def test_multiprocessing_executor_falls_back_on_unpicklable_work(self):
        executor = MultiprocessingExecutor(processes=2)
        unpicklable = lambda x: x + 1  # noqa: E731 - deliberately a lambda
        assert executor.map(unpicklable, [1, 2]) == [2, 3]
        executor.close()

    def test_single_worker_runs_serially(self):
        executor = MultiprocessingExecutor(processes=1)
        assert executor.map(_square, [3]) == [9]
        executor.close()


class RecordingCostModel(CostModel):
    """Cost model that records every ``communication_seconds`` input.

    Lets the round-accounting tests assert that the traffic recorded into
    the per-round statistics is exactly what the cost model is asked to
    price -- a phantom round or a message accounted outside its round would
    break the correspondence.
    """

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.calls = []

    def communication_seconds(self, transferred_transactions, transferred_units):
        self.calls.append((transferred_transactions, transferred_units))
        return super().communication_seconds(
            transferred_transactions, transferred_units
        )


class TestRoundAccounting:
    """Per-round message accounting must match the cost-model inputs."""

    def test_send_outside_round_raises(self):
        network = two_peer_network()
        with pytest.raises(RuntimeError, match="no open round"):
            network.send(Message(0, 1, MessageKind.FLAG, {"state": "done"}))

    def test_broadcast_outside_round_raises(self):
        network = two_peer_network()
        with pytest.raises(RuntimeError, match="no open round"):
            network.broadcast(0, MessageKind.FLAG, {"state": "continue"})

    def test_round_stats_match_what_the_cost_model_prices(self):
        cost_model = RecordingCostModel()
        network = two_peer_network(cost_model)
        payload = representative_payload([(0, rep_transaction(), 1)])
        with network.round():
            network.send(Message(0, 1, MessageKind.LOCAL_REPRESENTATIVES, payload))
        with network.round():
            network.broadcast(0, MessageKind.FLAG, {"state": "continue"})
        expected = [
            (stats.transferred_transactions, stats.transferred_units)
            for stats in network.stats.rounds
        ]
        assert cost_model.calls == expected
        assert len(network.stats.rounds) == 2  # no phantom rounds

    def test_cxk_fit_prices_exactly_its_recorded_rounds(self, mini_dataset):
        from repro.core.config import ClusteringConfig
        from repro.core.cxkmeans import CXKMeans
        from repro.core.partition import partition_equally
        from repro.similarity.item import SimilarityConfig

        cost_model = RecordingCostModel()
        config = ClusteringConfig(
            k=3,
            similarity=SimilarityConfig(f=0.5, gamma=0.4),
            seed=0,
            max_iterations=4,
        )
        parts = partition_equally(mini_dataset.transactions, 3, seed=0)
        result = CXKMeans(config, cost_model=cost_model).fit(parts)

        rounds = int(result.network["rounds"])
        # the SETUP exchange is its own round, then one round per iteration
        assert rounds == result.iterations + 1
        # one pricing call per closed round plus the final summary total
        per_round, total = cost_model.calls[:-1], cost_model.calls[-1]
        assert len(per_round) == rounds
        assert total[0] == sum(t for t, _ in per_round)
        assert total[1] == pytest.approx(sum(u for _, u in per_round))
        assert total[0] == result.network["transferred_transactions"]
        assert total[1] == pytest.approx(result.network["transferred_units"])
