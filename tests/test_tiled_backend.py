"""Parity and behaviour tests for the tiled batch kernels.

The numpy (and, by inheritance, torch) batch engine evaluates its
similarity blocks in ``(row_tile x column_tile)`` tiles bounded by a
configurable item budget (``block=N`` in the backend option grammar,
``ClusteringConfig.batch_block_items`` at the config level).  Tiling is a
pure memory/throughput knob: every budget must produce **bit-identical**
results -- the fused segment-wise reductions consume the same gathered
floats as the untiled pass -- so this suite asserts exact ``==`` equality
against the untiled path (``block=0``) and the python reference across

* hypothesis-random transactions (including empty rows and columns),
* the synthetic generator corpus,
* full XK-means / CXK-means fits,
* the sharded backend with a tiled inner spec (workers inherit the tile
  configuration through the shard payload's backend string),

for tile sizes ``{1, 2, 7, >= corpus}``, plus the option grammar, the
``ClusteringConfig`` threading and the peak-scratch memory bound itself.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ClusteringConfig
from repro.core.cxkmeans import CXKMeans
from repro.core.seeding import select_seed_transactions
from repro.core.xkmeans import XKMeans
from repro.datasets.registry import get_dataset
from repro.network.mpengine import clear_process_engines, clear_shard_executors
from repro.similarity.backend import (
    DEFAULT_BLOCK_ITEMS,
    NumpyBackend,
    create_backend,
    merge_block_option,
    split_block_option,
    validate_backend_spec,
)
from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.item import SimilarityConfig
from repro.similarity.transaction import SimilarityEngine
from repro.text.vector import SparseVector
from repro.transactions.items import make_synthetic_item
from repro.transactions.transaction import make_transaction
from repro.xmlmodel.paths import XMLPath

numpy = pytest.importorskip("numpy")

#: The tile budgets every parity test sweeps: pathological single-item
#: tiles, tiny tiles, a prime that misaligns with transaction sizes, and a
#: budget far above any test corpus (>= corpus == single tile).
TILE_SIZES = (1, 2, 7, 10_000)


# --------------------------------------------------------------------------- #
# Helpers and strategies (mirroring test_similarity_backend.py)
# --------------------------------------------------------------------------- #
def item(path: str, answer: str, vector=None):
    return make_synthetic_item(XMLPath.parse(path), answer, vector=vector)


def engine(spec: str, f: float = 0.5, gamma: float = 0.8) -> SimilarityEngine:
    return SimilarityEngine(
        SimilarityConfig(f=f, gamma=gamma),
        cache=TagPathSimilarityCache(),
        backend=spec,
    )


_TAGS = ["a", "b", "c"]
_TERMS = [1, 2, 3, 4]


@st.composite
def transactions_strategy(draw, max_items: int = 5):
    """Random transaction: random paths, vectors and occasional empty TCUs."""
    count = draw(st.integers(min_value=0, max_value=max_items))
    items = []
    for _ in range(count):
        depth = draw(st.integers(min_value=1, max_value=3))
        steps = [draw(st.sampled_from(_TAGS)) for _ in range(depth)] + ["S"]
        if draw(st.booleans()):
            weights = {
                term: draw(st.floats(min_value=0.25, max_value=2.0))
                for term in draw(
                    st.sets(st.sampled_from(_TERMS), min_size=1, max_size=3)
                )
            }
            vector = SparseVector(weights)
        else:
            vector = None  # empty TCU: content falls back to answer equality
        answer = draw(st.sampled_from(["alpha", "beta", "gamma delta", "42"]))
        items.append(
            make_synthetic_item(XMLPath(tuple(steps)), answer, vector=vector)
        )
    return make_transaction(f"tr{draw(st.integers(0, 10_000))}", items)


_CONFIGS = st.tuples(
    st.sampled_from([0.0, 0.2, 0.5, 1.0]),
    st.sampled_from([0.0, 0.5, 0.8, 1.0]),
)


@pytest.fixture(scope="module")
def dblp_small():
    return get_dataset("DBLP", scale=0.2, seed=0)


# --------------------------------------------------------------------------- #
# Tile-span partitioning
# --------------------------------------------------------------------------- #
class TestTileSpans:
    def test_unbounded_budget_is_a_single_span(self):
        assert NumpyBackend._tile_spans([3, 1, 4], None) == [(0, 3)]

    def test_empty_input_has_no_spans(self):
        assert NumpyBackend._tile_spans([], None) == []
        assert NumpyBackend._tile_spans([], 4) == []

    def test_spans_respect_the_budget(self):
        spans = NumpyBackend._tile_spans([2, 2, 2, 2], 4)
        assert spans == [(0, 2), (2, 4)]

    def test_oversized_transactions_are_atomic(self):
        """A transaction larger than the budget forms its own span."""
        spans = NumpyBackend._tile_spans([10, 1, 10], 4)
        assert spans == [(0, 1), (1, 2), (2, 3)]

    @given(
        lengths=st.lists(st.integers(min_value=0, max_value=9), max_size=20),
        budget=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_spans_are_a_contiguous_partition(self, lengths, budget):
        spans = NumpyBackend._tile_spans(lengths, budget)
        # contiguous, ordered cover of [0, len)
        flattened = [i for start, stop in spans for i in range(start, stop)]
        assert flattened == list(range(len(lengths)))
        for start, stop in spans:
            total = sum(lengths[start:stop])
            # within budget unless the span is a single oversized transaction
            assert total <= budget or stop - start == 1

    def test_effective_block_items_resolution(self):
        shared = SimilarityEngine(SimilarityConfig())
        default = NumpyBackend(shared)
        assert default.block_items is None
        assert default.effective_block_items == DEFAULT_BLOCK_ITEMS
        untiled = NumpyBackend(shared, "block=0")
        assert untiled.block_items == 0
        assert untiled.effective_block_items is None
        tiled = NumpyBackend(shared, "block=5")
        assert tiled.effective_block_items == 5


# --------------------------------------------------------------------------- #
# Option grammar and spec validation
# --------------------------------------------------------------------------- #
class TestOptionGrammar:
    def test_split_block_option(self):
        assert split_block_option(None, "numpy") == ([], None)
        assert split_block_option("block=8", "numpy:block=8") == ([], 8)
        assert split_block_option("cuda:block=8", "torch:cuda:block=8") == (
            ["cuda"],
            8,
        )
        assert split_block_option("block=8:cuda", "torch:block=8:cuda") == (
            ["cuda"],
            8,
        )

    @pytest.mark.parametrize(
        "options", ["block=", "block=abc", "block=-1", "block=1:block=2"]
    )
    def test_split_block_option_rejects_malformed_budgets(self, options):
        with pytest.raises(ValueError, match="block"):
            split_block_option(options, f"numpy:{options}")

    def test_create_backend_parses_the_block_option(self):
        shared = SimilarityEngine(SimilarityConfig())
        backend = create_backend("numpy:block=16", shared)
        assert isinstance(backend, NumpyBackend)
        assert backend.block_items == 16

    @pytest.mark.parametrize(
        "spec",
        ["numpy:block=abc", "numpy:block=-3", "numpy:bogus", "numpy:block=1:block=2"],
    )
    def test_bad_numpy_specs_fail_at_validation_and_creation(self, spec):
        shared = SimilarityEngine(SimilarityConfig())
        with pytest.raises(ValueError):
            validate_backend_spec(spec)
        with pytest.raises(ValueError):
            create_backend(spec, shared)

    def test_sharded_inner_spec_may_carry_options(self):
        assert (
            validate_backend_spec("sharded:2:numpy:block=16")
            == "sharded:2:numpy:block=16"
        )

    def test_sharded_unknown_inner_fails_like_a_direct_selection(self):
        """Single source of truth: the inner spec raises the same
        registered-alternatives error as a directly selected backend."""
        with pytest.raises(ValueError, match="unknown similarity backend"):
            validate_backend_spec("sharded:2:bogus")
        direct = cli_config = None
        try:
            validate_backend_spec("bogus")
        except ValueError as error:
            direct = str(error)
        try:
            validate_backend_spec("sharded:2:bogus")
        except ValueError as error:
            cli_config = str(error)
        assert direct.replace("'bogus'", "X") == cli_config.replace(
            "'bogus'", "X"
        )

    def test_sharded_malformed_inner_block_fails_eagerly(self):
        with pytest.raises(ValueError, match="block"):
            validate_backend_spec("sharded:2:numpy:block=zz")

    def test_merge_block_option(self):
        assert merge_block_option("numpy", 64) == "numpy:block=64"
        assert merge_block_option("numpy", None) == "numpy"
        assert merge_block_option("python", 64) == "python"
        assert merge_block_option(None, 64) == "python"
        assert merge_block_option("torch:cuda", 64) == "torch:cuda:block=64"
        # an explicit spec-level block option wins over the config knob
        assert merge_block_option("numpy:block=8", 64) == "numpy:block=8"
        # sharded specs thread the budget into their inner spec
        assert (
            merge_block_option("sharded:4:numpy", 64)
            == "sharded:4:numpy:block=64"
        )
        assert merge_block_option("sharded:4", 64).startswith("sharded:4:")
        assert merge_block_option("sharded:4", 64).endswith(":block=64")
        assert (
            merge_block_option("sharded:2:python", 64) == "sharded:2:python"
        )


# --------------------------------------------------------------------------- #
# ClusteringConfig threading
# --------------------------------------------------------------------------- #
class TestConfigThreading:
    def test_negative_budget_is_rejected(self):
        with pytest.raises(ValueError, match="batch_block_items"):
            ClusteringConfig(k=2, batch_block_items=-1)

    def test_effective_batch_block_items_resolution(self):
        assert (
            ClusteringConfig(k=2).effective_batch_block_items
            == DEFAULT_BLOCK_ITEMS
        )
        assert (
            ClusteringConfig(k=2, batch_block_items=0).effective_batch_block_items
            == 0
        )
        assert (
            ClusteringConfig(k=2, batch_block_items=7).effective_batch_block_items
            == 7
        )

    def test_effective_batch_block_items_reports_the_running_budget(self):
        """The reported budget always matches what the kernels run with,
        including when a spec-level ``block=`` option wins."""
        assert (
            ClusteringConfig(
                k=2, backend="numpy:block=8"
            ).effective_batch_block_items
            == 8
        )
        # spec option wins over the config knob -- for the report too
        assert (
            ClusteringConfig(
                k=2, backend="numpy:block=8", batch_block_items=32
            ).effective_batch_block_items
            == 8
        )
        assert (
            ClusteringConfig(
                k=2, backend="sharded:2:numpy:block=5"
            ).effective_batch_block_items
            == 5
        )

    def test_effective_backend_merges_the_budget(self):
        config = ClusteringConfig(k=2, backend="numpy", batch_block_items=32)
        assert config.effective_backend == "numpy:block=32"
        assert ClusteringConfig(k=2, backend="numpy").effective_backend == "numpy"
        # explicit spec option wins
        config = ClusteringConfig(
            k=2, backend="numpy:block=8", batch_block_items=32
        )
        assert config.effective_backend == "numpy:block=8"
        # the python reference has no batch kernels to tile
        config = ClusteringConfig(k=2, backend="python", batch_block_items=32)
        assert config.effective_backend == "python"

    def test_effective_backend_threads_sharded_inner_specs(self):
        config = ClusteringConfig(
            k=2, backend="sharded:2:numpy", batch_block_items=16
        )
        assert config.effective_backend == "sharded:2:numpy:block=16"

    def test_with_batch_block_items_returns_an_updated_copy(self):
        config = ClusteringConfig(k=2, backend="numpy")
        updated = config.with_batch_block_items(9)
        assert updated.batch_block_items == 9
        assert config.batch_block_items is None
        assert updated.effective_backend == "numpy:block=9"

    def test_algorithm_engines_run_the_merged_spec(self):
        config = ClusteringConfig(k=2, backend="numpy", batch_block_items=11)
        algorithm = XKMeans(config)
        assert algorithm.engine.backend_name == "numpy:block=11"
        assert algorithm.engine.backend.block_items == 11


# --------------------------------------------------------------------------- #
# Hypothesis parity: tiled vs. untiled vs. python reference
# --------------------------------------------------------------------------- #
class TestPropertyParity:
    @given(
        rows=st.lists(transactions_strategy(), max_size=6),
        columns=st.lists(transactions_strategy(), max_size=4),
        config=_CONFIGS,
    )
    @settings(max_examples=25, deadline=None)
    def test_pairwise_and_assign_parity_across_tile_sizes(
        self, rows, columns, config
    ):
        f, gamma = config
        untiled = engine("numpy:block=0", f=f, gamma=gamma)
        reference = engine("python", f=f, gamma=gamma)
        expected = untiled.pairwise_transaction_similarity(rows, columns)
        assert expected == reference.pairwise_transaction_similarity(
            rows, columns
        )
        expected_assign = untiled.assign_all(rows, columns)
        for block in TILE_SIZES:
            tiled = engine(f"numpy:block={block}", f=f, gamma=gamma)
            assert (
                tiled.pairwise_transaction_similarity(rows, columns) == expected
            )
            assert tiled.assign_all(rows, columns) == expected_assign

    @given(
        cluster=st.lists(transactions_strategy(), max_size=6),
        candidates=st.lists(transactions_strategy(), max_size=4),
        config=_CONFIGS,
    )
    @settings(max_examples=25, deadline=None)
    def test_score_candidates_parity_across_tile_sizes(
        self, cluster, candidates, config
    ):
        f, gamma = config
        untiled = engine("numpy:block=0", f=f, gamma=gamma)
        reference = engine("python", f=f, gamma=gamma)
        expected = untiled.score_candidates(cluster, candidates)
        assert expected == reference.score_candidates(cluster, candidates)
        for block in TILE_SIZES:
            tiled = engine(f"numpy:block={block}", f=f, gamma=gamma)
            assert tiled.score_candidates(cluster, candidates) == expected

    @given(
        transactions=st.lists(transactions_strategy(), max_size=5),
        config=_CONFIGS,
    )
    @settings(max_examples=25, deadline=None)
    def test_rank_items_parity_across_tile_sizes(self, transactions, config):
        f, gamma = config
        pool = [entry for tr in transactions for entry in tr.items]
        untiled = engine("numpy:block=0", f=f, gamma=gamma)
        reference = engine("python", f=f, gamma=gamma)
        expected = untiled.rank_items_batch(pool)
        assert expected == reference.rank_items_batch(pool)
        for block in TILE_SIZES:
            tiled = engine(f"numpy:block={block}", f=f, gamma=gamma)
            assert tiled.rank_items_batch(pool) == expected


# --------------------------------------------------------------------------- #
# Edge cases: empty rows / columns
# --------------------------------------------------------------------------- #
class TestEmptyEdges:
    def mixed_transactions(self):
        return [
            make_transaction("e1", []),
            make_transaction(
                "t1", [item("r.a.S", "x", SparseVector({1: 1.0}))]
            ),
            make_transaction("e2", []),
            make_transaction(
                "t2",
                [
                    item("r.a.S", "x", SparseVector({1: 1.0})),
                    item("r.b.S", "y"),
                ],
            ),
        ]

    @pytest.mark.parametrize("block", TILE_SIZES)
    def test_empty_rows_and_columns_survive_tiling(self, block):
        transactions = self.mixed_transactions()
        untiled = engine("numpy:block=0")
        tiled = engine(f"numpy:block={block}")
        expected = untiled.pairwise_transaction_similarity(
            transactions, transactions
        )
        assert (
            tiled.pairwise_transaction_similarity(transactions, transactions)
            == expected
        )

    @pytest.mark.parametrize("block", TILE_SIZES)
    def test_all_empty_inputs(self, block):
        tiled = engine(f"numpy:block={block}")
        empties = [make_transaction("e", []), make_transaction("f", [])]
        assert tiled.pairwise_transaction_similarity(empties, empties) == [
            [0.0, 0.0],
            [0.0, 0.0],
        ]
        assert tiled.score_candidates([], empties) == [0.0, 0.0]
        assert tiled.rank_items_batch([]) == []


# --------------------------------------------------------------------------- #
# Corpus parity and full-fit parity
# --------------------------------------------------------------------------- #
class TestCorpusParity:
    @pytest.mark.parametrize("block", TILE_SIZES)
    def test_assign_all_parity_on_generator_corpus(self, dblp_small, block):
        transactions = dblp_small.transactions
        representatives = select_seed_transactions(
            transactions, 5, random.Random(0)
        )
        untiled = engine("numpy:block=0")
        tiled = engine(f"numpy:block={block}")
        tiled.backend.compile_corpus(transactions)
        assert tiled.assign_all(
            transactions, representatives
        ) == untiled.assign_all(transactions, representatives)

    def test_xkmeans_fit_parity_across_tile_sizes(self, dblp_small):
        """Same seed -> identical clustering for every tile budget."""
        results = {}
        for spec in ("python", "numpy:block=0", "numpy:block=7"):
            config = ClusteringConfig(
                k=4,
                similarity=SimilarityConfig(f=0.5, gamma=0.8),
                seed=7,
                max_iterations=5,
                backend=spec,
            )
            results[spec] = XKMeans(config).fit(dblp_small.transactions)
        reference = results["python"]
        for spec, result in results.items():
            assert result.partition() == reference.partition(), spec
            assert result.iterations == reference.iterations, spec
            for rep_reference, rep_result in zip(
                reference.representatives(), result.representatives()
            ):
                assert sorted(
                    (str(entry.path), entry.answer)
                    for entry in rep_reference.items
                ) == sorted(
                    (str(entry.path), entry.answer)
                    for entry in rep_result.items
                )

    def test_cxkmeans_fit_parity_via_batch_block_items(self, dblp_small):
        """The config-level knob produces the same clustering as untiled."""
        partitions = [
            dblp_small.transactions[0::2],
            dblp_small.transactions[1::2],
        ]
        results = {}
        for batch_block_items in (0, 7, None):
            config = ClusteringConfig(
                k=3,
                similarity=SimilarityConfig(f=0.5, gamma=0.8),
                seed=3,
                max_iterations=4,
                backend="numpy",
                batch_block_items=batch_block_items,
            )
            results[batch_block_items] = CXKMeans(config).fit(partitions)
        assert (
            results[7].partition()
            == results[0].partition()
            == results[None].partition()
        )


# --------------------------------------------------------------------------- #
# Sharded + tiled composition
# --------------------------------------------------------------------------- #
class TestShardedTiledComposition:
    @pytest.fixture(autouse=True)
    def _isolate(self):
        clear_process_engines()
        yield
        clear_shard_executors()
        clear_process_engines()

    def test_shards_inherit_the_tile_configuration(self):
        shared = SimilarityEngine(SimilarityConfig())
        backend = create_backend("sharded:2:numpy:block=9", shared)
        try:
            assert backend.inner_name == "numpy:block=9"
            # the in-process inner backend runs the tiled kernel too
            assert backend._inner.block_items == 9
        finally:
            backend.close()

    def test_sharded_tiled_assignment_matches_untiled(self, dblp_small):
        transactions = dblp_small.transactions
        representatives = select_seed_transactions(
            transactions, 4, random.Random(1)
        )
        untiled = engine("numpy:block=0")
        expected = untiled.assign_all(transactions, representatives)
        sharded = engine("sharded:2:numpy:block=7")
        try:
            assert (
                sharded.assign_all(transactions, representatives) == expected
            )
        finally:
            sharded.backend.close()


# --------------------------------------------------------------------------- #
# The memory bound itself
# --------------------------------------------------------------------------- #
class TestScratchBound:
    def corpus(self, transaction_count: int):
        """Uniform 3-item transactions (every tile stays within budget)."""
        return [
            make_transaction(
                f"t{index}",
                [
                    item(f"r.a{index % 5}.S", "x", SparseVector({1: 1.0})),
                    item(f"r.b{index % 3}.S", "y", SparseVector({2: 1.0})),
                    item("r.c.S", f"answer {index % 4}"),
                ],
            )
            for index in range(transaction_count)
        ]

    def test_peak_scratch_is_bounded_by_the_tile_budget(self):
        budget = 6
        for count in (10, 40):
            tiled = engine(f"numpy:block={budget}")
            transactions = self.corpus(count)
            tiled.pairwise_transaction_similarity(transactions, transactions)
            # corpus-size independent: every scratch block stays within
            # budget x budget items no matter how many transactions
            assert tiled.backend.peak_scratch_entries <= budget * budget

    def test_untiled_scratch_grows_with_the_corpus(self):
        peaks = {}
        for count in (10, 40):
            untiled = engine("numpy:block=0")
            transactions = self.corpus(count)
            untiled.pairwise_transaction_similarity(transactions, transactions)
            peaks[count] = untiled.backend.peak_scratch_entries
        assert peaks[40] > peaks[10]
        assert peaks[40] == (40 * 3) ** 2

    def test_score_candidates_scratch_is_bounded(self):
        budget = 6
        transactions = self.corpus(30)
        tiled = engine(f"numpy:block={budget}")
        tiled.score_candidates(transactions, transactions[:3])
        # row tiles bounded by the budget, column side by the candidates
        assert (
            tiled.backend.peak_scratch_entries
            <= budget * sum(len(t.items) for t in transactions[:3])
        )
