"""Tests for the collaborative distributed CXK-means algorithm."""

import pytest

from repro.core.config import ClusteringConfig
from repro.core.cxkmeans import CXKMeans, LocalPhaseInput, run_local_phase
from repro.core.partition import partition_equally, partition_unequally
from repro.core.xkmeans import XKMeans
from repro.evaluation.fmeasure import overall_f_measure
from repro.network.costmodel import CostModel
from repro.similarity.item import SimilarityConfig
from repro.similarity.transaction import SimilarityEngine


@pytest.fixture()
def config():
    return ClusteringConfig(
        k=2,
        similarity=SimilarityConfig(f=0.3, gamma=0.4),
        seed=1,
        max_iterations=8,
    )


class TestLocalPhase:
    def test_assignment_covers_all_local_transactions(self, mini_dataset, config):
        engine = SimilarityEngine(config.similarity)
        transactions = mini_dataset.transactions[:6]
        representatives = [transactions[0], transactions[1]]
        output = run_local_phase(
            LocalPhaseInput(0, transactions, representatives, config), engine=engine
        )
        assert set(output.assignment) == {t.transaction_id for t in transactions}
        assert len(output.local_representatives) == 2
        assert len(output.cluster_sizes) == 2
        assert sum(output.cluster_sizes) + list(output.assignment.values()).count(-1) == len(
            transactions
        )
        assert output.compute_seconds >= 0.0

    def test_empty_cluster_gets_empty_representative(self, mini_dataset, config):
        engine = SimilarityEngine(config.similarity)
        transactions = mini_dataset.transactions[:4]
        # two identical representatives: the second cluster will stay empty
        representatives = [transactions[0], transactions[0]]
        output = run_local_phase(
            LocalPhaseInput(0, transactions, representatives, config), engine=engine
        )
        assert output.cluster_sizes[1] == 0
        assert output.local_representatives[1].is_empty()


class TestCXKMeans:
    def test_all_transactions_are_clustered_or_trashed(self, mini_dataset, config):
        parts = partition_equally(mini_dataset.transactions, 3, seed=1)
        result = CXKMeans(config).fit(parts)
        assert result.total_clustered() + result.trash_size() == len(mini_dataset)
        assigned = result.assignments(include_trash=True)
        assert set(assigned) == {t.transaction_id for t in mini_dataset}

    def test_single_partition_behaves_like_centralized(self, mini_dataset, config):
        result = CXKMeans(config).fit([mini_dataset.transactions])
        reference = mini_dataset.labels_for("content")
        distributed_f = overall_f_measure(result.partition(), reference)
        centralized_f = overall_f_measure(
            XKMeans(config).fit(mini_dataset.transactions).partition(), reference
        )
        # both runs solve the same problem; allow a small tolerance because
        # seeding differs slightly between the two code paths
        assert abs(distributed_f - centralized_f) <= 0.25

    def test_accuracy_remains_reasonable_with_three_peers(self, mini_dataset, config):
        parts = partition_equally(mini_dataset.transactions, 3, seed=1)
        result = CXKMeans(config).fit(parts)
        reference = mini_dataset.labels_for("content")
        assert overall_f_measure(result.partition(), reference) >= 0.6

    def test_network_statistics_are_recorded(self, mini_dataset, config):
        parts = partition_equally(mini_dataset.transactions, 3, seed=1)
        result = CXKMeans(config).fit(parts)
        assert result.network["messages"] > 0
        assert result.network["transferred_transactions"] > 0
        assert result.network["peers"] == 3.0
        assert result.simulated_seconds is not None and result.simulated_seconds > 0

    def test_centralized_run_has_no_representative_traffic(self, mini_dataset, config):
        result = CXKMeans(config).fit([mini_dataset.transactions])
        # a single peer never sends representatives over the network
        assert result.network["transferred_transactions"] == 0.0

    def test_metadata_records_partition_sizes(self, mini_dataset, config):
        parts = partition_unequally(mini_dataset.transactions, 2, seed=1)
        result = CXKMeans(config).fit(parts)
        assert result.metadata["algorithm"] == "CXK-means"
        assert result.metadata["peers"] == 2
        assert result.metadata["partition_sizes"] == [len(parts[0]), len(parts[1])]

    def test_deterministic_given_seed(self, mini_dataset, config):
        parts = partition_equally(mini_dataset.transactions, 2, seed=4)
        first = CXKMeans(config).fit(parts)
        second = CXKMeans(config).fit(parts)
        assert first.assignments(include_trash=True) == second.assignments(include_trash=True)
        assert first.network["messages"] == second.network["messages"]

    def test_more_peers_increase_traffic(self, mini_dataset, config):
        small = CXKMeans(config).fit(partition_equally(mini_dataset.transactions, 2, seed=1))
        large = CXKMeans(config).fit(partition_equally(mini_dataset.transactions, 4, seed=1))
        assert (
            large.network["transferred_transactions"]
            >= small.network["transferred_transactions"]
        )

    def test_empty_partition_list_raises(self, config):
        with pytest.raises(ValueError):
            CXKMeans(config).fit([])

    def test_too_few_transactions_raises(self, mini_dataset, config):
        with pytest.raises(ValueError):
            CXKMeans(config.with_k(100)).fit([mini_dataset.transactions[:5]])

    def test_peer_with_empty_share_is_tolerated(self, mini_dataset, config):
        parts = [mini_dataset.transactions[:10], []]
        result = CXKMeans(config).fit(parts)
        assert result.total_clustered() + result.trash_size() == 10

    def test_cost_model_influences_simulated_time(self, mini_dataset, config):
        parts = partition_equally(mini_dataset.transactions, 3, seed=1)
        cheap = CXKMeans(config, cost_model=CostModel(t_comm=0.0, unit_comm=0.0)).fit(parts)
        expensive = CXKMeans(config, cost_model=CostModel(t_comm=0.5, unit_comm=0.0)).fit(parts)
        assert expensive.simulated_seconds > cheap.simulated_seconds

    def test_max_iterations_bound_is_respected(self, mini_dataset):
        config = ClusteringConfig(
            k=2, similarity=SimilarityConfig(f=0.3, gamma=0.4), seed=1, max_iterations=1
        )
        parts = partition_equally(mini_dataset.transactions, 2, seed=1)
        result = CXKMeans(config).fit(parts)
        assert result.iterations == 1
