"""Tests for the centralized XK-means algorithm."""

import pytest

from repro.core.config import ClusteringConfig
from repro.core.xkmeans import XKMeans
from repro.evaluation.fmeasure import overall_f_measure
from repro.similarity.item import SimilarityConfig


@pytest.fixture()
def config():
    return ClusteringConfig(
        k=2,
        similarity=SimilarityConfig(f=0.3, gamma=0.4),
        seed=1,
        max_iterations=10,
    )


class TestXKMeans:
    def test_produces_k_clusters_plus_trash(self, mini_dataset, config):
        result = XKMeans(config).fit(mini_dataset.transactions)
        assert result.k == 2
        assert result.total_clustered() + result.trash_size() == len(mini_dataset)

    def test_every_transaction_is_assigned_exactly_once(self, mini_dataset, config):
        result = XKMeans(config).fit(mini_dataset.transactions)
        assigned = result.assignments(include_trash=True)
        assert set(assigned) == {t.transaction_id for t in mini_dataset}

    def test_convergence_flag_and_iterations(self, mini_dataset, config):
        result = XKMeans(config).fit(mini_dataset.transactions)
        assert result.iterations <= config.max_iterations
        assert result.converged

    def test_separates_the_two_topics_reasonably(self, mini_dataset, config):
        # Like any K-means-style method the outcome is seed sensitive (the
        # paper averages over 10 runs); with a good initialisation the two
        # topics must be recovered well.
        reference = mini_dataset.labels_for("content")
        best = max(
            overall_f_measure(
                XKMeans(config.with_seed(seed)).fit(mini_dataset.transactions).partition(),
                reference,
            )
            for seed in (0, 1, 5)
        )
        assert best >= 0.75

    def test_structure_driven_separates_the_two_schemas(self, mini_dataset):
        # With seeds drawn from both schemas, structure-driven clustering must
        # recover the article/paper split perfectly (their tag sets are
        # disjoint); seeds from a single schema send the other schema to the
        # trash cluster instead, so the best seed is evaluated.
        reference = mini_dataset.labels_for("structure")
        scores = []
        for seed in (0, 2):
            config = ClusteringConfig(
                k=2,
                similarity=SimilarityConfig(f=1.0, gamma=0.9),
                seed=seed,
                max_iterations=10,
            )
            result = XKMeans(config).fit(mini_dataset.transactions)
            scores.append(overall_f_measure(result.partition(), reference))
        assert max(scores) >= 0.95

    def test_deterministic_given_seed(self, mini_dataset, config):
        first = XKMeans(config).fit(mini_dataset.transactions)
        second = XKMeans(config).fit(mini_dataset.transactions)
        assert first.assignments(include_trash=True) == second.assignments(include_trash=True)

    def test_different_seeds_may_change_initialisation(self, mini_dataset, config):
        first = XKMeans(config).fit(mini_dataset.transactions)
        second = XKMeans(config.with_seed(99)).fit(mini_dataset.transactions)
        # both are valid clusterings over the same transactions
        assert first.total_clustered() + first.trash_size() == second.total_clustered() + second.trash_size()

    def test_too_few_transactions_raises(self, mini_dataset, config):
        with pytest.raises(ValueError):
            XKMeans(config.with_k(1000)).fit(mini_dataset.transactions[:3])

    def test_representatives_are_nonempty_for_nonempty_clusters(self, mini_dataset, config):
        result = XKMeans(config).fit(mini_dataset.transactions)
        for cluster in result.clusters:
            if cluster.size() > 0:
                assert cluster.representative is not None
                assert len(cluster.representative) > 0

    def test_metadata_describes_the_run(self, mini_dataset, config):
        result = XKMeans(config).fit(mini_dataset.transactions)
        assert result.metadata["algorithm"] == "XK-means"
        assert result.metadata["k"] == 2
        assert result.metadata["transactions"] == len(mini_dataset)

    def test_assign_marks_zero_similarity_as_trash(self, mini_dataset, config):
        algorithm = XKMeans(config)
        transactions = mini_dataset.transactions
        # use a representative that matches nothing
        from repro.transactions.items import make_synthetic_item
        from repro.transactions.transaction import make_transaction
        from repro.xmlmodel.paths import XMLPath

        alien = make_transaction(
            "alien", [make_synthetic_item(XMLPath.parse("zzz.qqq.S"), "nothing shared")]
        )
        assignment = algorithm.assign(transactions[:4], [alien])
        assert set(assignment.values()) == {-1}
