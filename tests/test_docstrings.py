"""Docstring-style gate for the documented public API modules.

``docs/ARCHITECTURE.md`` documents the backend architecture; this test
keeps the in-code documentation from regressing by enforcing that every
public module / class / function / method of the four public API modules
carries a docstring (the pydocstyle ``D100``-``D103`` family, mirrored by
the ruff ``D`` job in CI -- this in-suite copy makes the gate enforceable
without installing a linter).

Covered modules (the ISSUE's documented public API):

* ``repro.similarity.backend`` -- the backend protocol and registry
* ``repro.similarity.torch_backend`` -- the optional torch tensor backend
  (imports without torch installed; only instantiation needs it)
* ``repro.core.representatives`` -- the summarisation machinery
* ``repro.network.mpengine`` -- executors, shards, per-process engines
* ``repro.core.config`` -- :class:`~repro.core.config.ClusteringConfig`
* ``repro.core.streaming`` -- streaming / out-of-core incremental fitting
* ``repro.similarity.corpus_store`` -- the persistent compiled-corpus store
* ``repro.core.model_store`` -- fitted-model persistence + warm queries
* ``repro.serving`` -- the stdin / WSGI / async multi-model serving layer
* ``repro.store`` / ``repro.store.registry`` -- the durable model registry
"""

from __future__ import annotations

import ast
import inspect
from typing import Iterator, List, Tuple

import pytest

import repro.core.config
import repro.core.model_store
import repro.core.representatives
import repro.core.streaming
import repro.network.codec
import repro.network.mpengine
import repro.network.realnet
import repro.serving
import repro.similarity.backend
import repro.similarity.corpus_store
import repro.similarity.torch_backend
import repro.store
import repro.store.registry

DOCUMENTED_MODULES = [
    repro.similarity.backend,
    repro.similarity.torch_backend,
    repro.core.representatives,
    repro.network.mpengine,
    repro.network.codec,
    repro.network.realnet,
    repro.core.config,
    repro.core.streaming,
    repro.similarity.corpus_store,
    repro.core.model_store,
    repro.serving,
    repro.store,
    repro.store.registry,
]


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _function_nodes(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.AST]]:
    """Yield (qualified name, node) for every public def/class to check.

    Mirrors pydocstyle's D101 (public class), D102 (public method) and
    D103 (public function): module-level public definitions plus the
    public, non-dunder methods of public classes.  Module-level
    ``try``/``if`` blocks are descended into (e.g. import-fallback shims),
    matching ruff's view that such defs are still public module members.
    """
    body: List[ast.AST] = list(tree.body)
    while body:
        node = body.pop(0)
        if isinstance(node, (ast.Try, ast.If, ast.ExceptHandler)):
            body.extend(ast.iter_child_nodes(node))
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _is_public(node.name):
                yield node.name, node
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            yield node.name, node
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if _is_public(child.name):
                        yield f"{node.name}.{child.name}", child


def _missing_docstrings(module) -> List[str]:
    source = inspect.getsource(module)
    tree = ast.parse(source)
    missing: List[str] = []
    if not ast.get_docstring(tree):
        missing.append("<module docstring> (D100)")
    for qualified_name, node in _function_nodes(tree):
        if not ast.get_docstring(node):
            code = "D101" if isinstance(node, ast.ClassDef) else (
                "D102" if "." in qualified_name else "D103"
            )
            missing.append(f"{qualified_name} (line {node.lineno}, {code})")
    return missing


@pytest.mark.parametrize(
    "module", DOCUMENTED_MODULES, ids=lambda module: module.__name__
)
def test_public_api_is_fully_documented(module):
    missing = _missing_docstrings(module)
    assert not missing, (
        f"{module.__name__}: public names missing docstrings "
        f"(see docs/ARCHITECTURE.md and the CI ruff D job): {missing}"
    )
