"""Tests for tree tuple items and the item domain (repro.transactions.items)."""

import pytest

from repro.text.vector import SparseVector
from repro.transactions.items import ItemDomain, TreeTupleItem, make_synthetic_item
from repro.xmlmodel.paths import XMLPath


class TestTreeTupleItem:
    def test_tag_path_strips_leaf_step(self):
        item = make_synthetic_item(XMLPath.parse("dblp.inproceedings.title.S"), "XRules")
        assert item.tag_path == XMLPath.parse("dblp.inproceedings.title")

    def test_tag_path_of_attribute_item(self):
        item = make_synthetic_item(XMLPath.parse("dblp.inproceedings.@key"), "k1")
        assert item.tag_path == XMLPath.parse("dblp.inproceedings")

    def test_synthetic_items_are_marked(self):
        item = make_synthetic_item(XMLPath.parse("a.S"), "x")
        assert item.is_synthetic
        assert item.item_id == -1

    def test_key_is_path_answer_pair(self):
        item = make_synthetic_item(XMLPath.parse("a.b.S"), "value")
        assert item.key() == (XMLPath.parse("a.b.S"), "value")

    def test_with_vector_returns_copy(self):
        item = make_synthetic_item(XMLPath.parse("a.S"), "x")
        updated = item.with_vector(SparseVector({1: 1.0}))
        assert updated.vector.get(1) == 1.0
        assert not item.vector
        assert updated.path == item.path

    def test_equality_ignores_vector_but_not_content(self):
        a = make_synthetic_item(XMLPath.parse("a.S"), "x", vector=SparseVector({1: 1.0}))
        b = make_synthetic_item(XMLPath.parse("a.S"), "x", vector=SparseVector({2: 9.0}))
        c = make_synthetic_item(XMLPath.parse("a.S"), "y")
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not an item"


class TestItemDomain:
    def test_intern_deduplicates_by_path_and_answer(self):
        domain = ItemDomain()
        first = domain.intern(XMLPath.parse("a.b.S"), "KDD")
        second = domain.intern(XMLPath.parse("a.b.S"), "KDD")
        assert first is second
        assert len(domain) == 1

    def test_distinct_answers_get_distinct_items(self):
        domain = ItemDomain()
        domain.intern(XMLPath.parse("a.b.S"), "KDD")
        domain.intern(XMLPath.parse("a.b.S"), "VLDB")
        assert len(domain) == 2

    def test_ids_are_dense(self):
        domain = ItemDomain()
        items = [domain.intern(XMLPath.parse("a.b.S"), str(i)) for i in range(5)]
        assert [item.item_id for item in items] == [0, 1, 2, 3, 4]

    def test_get_and_find(self):
        domain = ItemDomain()
        item = domain.intern(XMLPath.parse("a.b.S"), "x")
        assert domain.get(item.item_id) is item
        assert domain.find(XMLPath.parse("a.b.S"), "x") is item
        assert domain.find(XMLPath.parse("a.b.S"), "missing") is None

    def test_replace_attaches_new_vector(self):
        domain = ItemDomain()
        item = domain.intern(XMLPath.parse("a.b.S"), "x")
        domain.replace(item.with_vector(SparseVector({3: 2.0})))
        assert domain.get(item.item_id).vector.get(3) == 2.0
        # the de-duplication key still resolves to the same id
        assert domain.find(XMLPath.parse("a.b.S"), "x").item_id == item.item_id

    def test_replace_of_unknown_id_fails(self):
        domain = ItemDomain()
        rogue = make_synthetic_item(XMLPath.parse("a.S"), "x")
        with pytest.raises(KeyError):
            domain.replace(rogue)

    def test_iteration_and_items(self):
        domain = ItemDomain()
        domain.intern(XMLPath.parse("a.b.S"), "1")
        domain.intern(XMLPath.parse("a.c.S"), "2")
        assert len(list(domain)) == 2
        assert [item.item_id for item in domain.items()] == [0, 1]

    def test_distinct_paths_preserve_first_seen_order(self):
        domain = ItemDomain()
        domain.intern(XMLPath.parse("a.b.S"), "1")
        domain.intern(XMLPath.parse("a.c.S"), "2")
        domain.intern(XMLPath.parse("a.b.S"), "3")
        assert domain.distinct_paths() == [
            XMLPath.parse("a.b.S"),
            XMLPath.parse("a.c.S"),
        ]
