"""Tests for cluster validity measures, timing helpers and reporting."""

import time

import pytest

from repro.evaluation.fmeasure import (
    f_measure_breakdown,
    overall_f_measure,
    pairwise_f,
    precision_recall_matrix,
)
from repro.evaluation.metrics import (
    adjusted_rand_index,
    clustering_report,
    normalized_mutual_information,
    purity,
)
from repro.evaluation.reporting import (
    comparison_table,
    format_accuracy_table,
    format_series,
    format_table,
)
from repro.evaluation.timing import Stopwatch, time_function

REFERENCE = {
    "a1": "A", "a2": "A", "a3": "A",
    "b1": "B", "b2": "B",
    "c1": "C",
}

PERFECT = [["a1", "a2", "a3"], ["b1", "b2"], ["c1"]]
MERGED = [["a1", "a2", "a3", "b1", "b2", "c1"]]
HALF = [["a1", "a2", "b1"], ["a3", "b2", "c1"]]


class TestPairwiseF:
    def test_harmonic_mean(self):
        assert pairwise_f(0.5, 1.0) == pytest.approx(2 / 3)

    def test_zero_when_both_zero(self):
        assert pairwise_f(0.0, 0.0) == 0.0


class TestOverallFMeasure:
    def test_perfect_clustering_scores_one(self):
        assert overall_f_measure(PERFECT, REFERENCE) == pytest.approx(1.0)

    def test_single_merged_cluster_scores_less(self):
        value = overall_f_measure(MERGED, REFERENCE)
        assert 0.0 < value < 1.0

    def test_mixed_clustering_between_the_two(self):
        merged = overall_f_measure(MERGED, REFERENCE)
        half = overall_f_measure(HALF, REFERENCE)
        assert half < 1.0
        assert merged < 1.0

    def test_empty_reference(self):
        assert overall_f_measure(PERFECT, {}) == 0.0

    def test_empty_clustering(self):
        assert overall_f_measure([], REFERENCE) == 0.0

    def test_unclustered_objects_reduce_recall(self):
        missing = [["a1", "a2"], ["b1", "b2"], ["c1"]]  # a3 unclustered
        assert overall_f_measure(missing, REFERENCE) < 1.0

    def test_extra_unlabelled_ids_do_not_crash(self):
        clusters = [["a1", "a2", "a3", "zzz"], ["b1", "b2"], ["c1"]]
        value = overall_f_measure(clusters, REFERENCE)
        assert 0.0 < value <= 1.0

    def test_breakdown_identifies_best_cluster_per_class(self):
        breakdown = f_measure_breakdown(PERFECT, REFERENCE)
        by_class = {entry.class_label: entry for entry in breakdown}
        assert by_class["A"].best_cluster == 0
        assert by_class["B"].best_cluster == 1
        assert by_class["A"].precision == 1.0 and by_class["A"].recall == 1.0

    def test_precision_recall_matrix_shape(self):
        matrix = precision_recall_matrix(HALF, REFERENCE)
        assert set(matrix) == {"A", "B", "C"}
        assert len(matrix["A"]) == 2
        assert all(0.0 <= cell["f"] <= 1.0 for row in matrix.values() for cell in row)


class TestOtherIndices:
    def test_perfect_clustering_maximises_all_indices(self):
        assert purity(PERFECT, REFERENCE) == pytest.approx(1.0)
        assert normalized_mutual_information(PERFECT, REFERENCE) == pytest.approx(1.0)
        assert adjusted_rand_index(PERFECT, REFERENCE) == pytest.approx(1.0)

    def test_merged_clustering_scores_lower(self):
        assert purity(MERGED, REFERENCE) == pytest.approx(3 / 6)
        assert normalized_mutual_information(MERGED, REFERENCE) == 0.0
        assert adjusted_rand_index(MERGED, REFERENCE) == pytest.approx(0.0, abs=1e-9)

    def test_empty_inputs(self):
        assert purity([], REFERENCE) == 0.0
        assert normalized_mutual_information([], {}) == 0.0
        assert adjusted_rand_index([], REFERENCE) == 0.0

    def test_report_bundles_all_metrics(self):
        report = clustering_report(PERFECT, REFERENCE)
        assert set(report) == {"f_measure", "purity", "nmi", "ari"}
        assert all(value == pytest.approx(1.0) for value in report.values())


class TestTiming:
    def test_stopwatch_measures_and_aggregates(self):
        stopwatch = Stopwatch()
        with stopwatch.measure("sleep"):
            time.sleep(0.01)
        stopwatch.record("sleep", 0.05)
        summary = stopwatch.summary()["sleep"]
        assert summary["count"] == 2.0
        assert summary["max"] >= 0.05
        assert summary["total"] >= 0.06

    def test_time_callable_returns_result(self):
        stopwatch = Stopwatch()
        assert stopwatch.time_callable("op", lambda: 42) == 42
        assert "op" in stopwatch.records

    def test_time_function(self):
        result = time_function(lambda x: x * 2, 21, repeat=3)
        assert result["last_result"] == 42
        assert result["repeat"] == 3.0
        assert result["min"] <= result["mean"] <= result["max"]

    def test_time_function_requires_positive_repeat(self):
        with pytest.raises(ValueError):
            time_function(lambda: None, repeat=0)


class TestReporting:
    def test_format_table_aligns_columns(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bbbb", 2]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in text
        assert len(lines) == 4

    def test_format_table_pads_missing_cells(self):
        text = format_table(["a", "b", "c"], [["only"]])
        assert "only" in text

    def test_format_series_renders_bars(self):
        text = format_series({1: 10.0, 3: 5.0, 5: 2.5}, title="runtime")
        assert text.splitlines()[0] == "runtime"
        assert "#" in text
        assert "10.0000" in text

    def test_format_series_empty(self):
        assert format_series({}, title="empty") == "empty"

    def test_format_accuracy_table_layout(self):
        results = {"DBLP": {1: 0.8, 3: 0.7}, "IEEE": {1: 0.6, 3: 0.5}}
        text = format_accuracy_table(results, cluster_counts={"DBLP": 6, "IEEE": 8})
        assert "DBLP" in text and "IEEE" in text
        assert "0.800" in text and "0.500" in text

    def test_comparison_table_computes_delta(self):
        text = comparison_table({"x": 1.0}, {"x": 0.8})
        assert "-0.200" in text
