"""Tests for vocabulary and ttf.itf weighting (repro.text)."""

import math

import pytest

from repro.text.vocabulary import FrozenVocabulary, Vocabulary
from repro.text.weighting import CorpusTermStatistics, TfIdfWeighter, TtfItfWeighter


class TestVocabulary:
    def test_ids_are_dense_and_stable(self):
        vocabulary = Vocabulary()
        assert vocabulary.add("alpha") == 0
        assert vocabulary.add("beta") == 1
        assert vocabulary.add("alpha") == 0
        assert len(vocabulary) == 2

    def test_lookup_round_trip(self):
        vocabulary = Vocabulary(["x", "y"])
        assert vocabulary.id_of("y") == 1
        assert vocabulary.term_of(1) == "y"
        assert vocabulary.id_of("missing") is None
        assert "x" in vocabulary

    def test_add_all_and_terms_order(self):
        vocabulary = Vocabulary()
        vocabulary.add_all(["c", "a", "b", "a"])
        assert vocabulary.terms() == ["c", "a", "b"]
        assert list(vocabulary) == ["c", "a", "b"]

    def test_freeze_snapshot_is_immutable_view(self):
        vocabulary = Vocabulary(["x"])
        frozen = vocabulary.freeze()
        vocabulary.add("y")
        assert isinstance(frozen, FrozenVocabulary)
        assert len(frozen) == 1
        assert frozen.id_of("x") == 0
        assert frozen.id_of("y") is None
        assert frozen.term_of(0) == "x"
        assert "x" in frozen and list(frozen) == ["x"]


def build_statistics():
    """Two documents, three tuples, five TCUs in total."""
    statistics = CorpusTermStatistics()
    # document d1, tuple t1: two TCUs
    statistics.add_tcu("t1", "d1", ["xml", "cluster", "xml"])
    statistics.add_tcu("t1", "d1", ["cluster", "peer"])
    # document d1, tuple t2: one TCU
    statistics.add_tcu("t2", "d1", ["xml", "tree"])
    # document d2, tuple t3: two TCUs
    statistics.add_tcu("t3", "d2", ["database", "query"])
    statistics.add_tcu("t3", "d2", ["query", "index"])
    return statistics


class TestCorpusTermStatistics:
    def test_scope_counters(self):
        stats = build_statistics()
        assert stats.tcus_in_collection() == 5
        assert stats.tcus_in_tuple("t1") == 2
        assert stats.tcus_in_tuple("t3") == 2
        assert stats.tcus_in_doc("d1") == 3
        assert stats.tcus_in_doc("d2") == 2

    def test_term_containment_counters(self):
        stats = build_statistics()
        assert stats.term_tcus_in_tuple("xml", "t1") == 1
        assert stats.term_tcus_in_tuple("cluster", "t1") == 2
        assert stats.term_tcus_in_doc("xml", "d1") == 2
        assert stats.term_tcus_in_collection("xml") == 2
        assert stats.term_tcus_in_collection("query") == 2
        assert stats.term_tcus_in_collection("missing") == 0

    def test_vocabulary_grows_with_unique_terms(self):
        stats = build_statistics()
        assert stats.vocabulary_size() == 7

    def test_unknown_scopes_return_zero(self):
        stats = build_statistics()
        assert stats.tcus_in_tuple("nope") == 0
        assert stats.tcus_in_doc("nope") == 0


class TestTtfItfWeighter:
    def test_weight_formula(self):
        stats = build_statistics()
        weighter = TtfItfWeighter(stats)
        # term 'xml' in the first TCU of tuple t1 (document d1), tf = 2
        expected = (
            2
            * math.exp(1 / 2)      # n_{j,tau} / N_tau = 1/2
            * (2 / 3)              # n_{j,XT} / N_XT = 2/3
            * math.log(5 / 2)      # ln(N_T / n_{j,T}) = ln(5/2)
        )
        assert weighter.weight("xml", 2, "t1", "d1") == pytest.approx(expected)

    def test_weight_is_zero_for_unknown_term(self):
        stats = build_statistics()
        assert TtfItfWeighter(stats).weight("missing", 1, "t1", "d1") == 0.0

    def test_weight_is_zero_for_zero_tf(self):
        stats = build_statistics()
        assert TtfItfWeighter(stats).weight("xml", 0, "t1", "d1") == 0.0

    def test_ubiquitous_term_gets_zero_rarity(self):
        stats = CorpusTermStatistics()
        stats.add_tcu("t1", "d1", ["common"])
        stats.add_tcu("t2", "d2", ["common"])
        assert TtfItfWeighter(stats).weight("common", 1, "t1", "d1") == 0.0

    def test_vector_uses_vocabulary_ids(self):
        stats = build_statistics()
        weighter = TtfItfWeighter(stats)
        vector = weighter.vector(["xml", "cluster", "xml"], "t1", "d1")
        xml_id = stats.vocabulary.id_of("xml")
        cluster_id = stats.vocabulary.id_of("cluster")
        assert xml_id in vector and cluster_id in vector
        assert vector.get(xml_id) > vector.get(cluster_id) > 0.0

    def test_vector_of_unknown_terms_is_empty(self):
        stats = build_statistics()
        assert not TtfItfWeighter(stats).vector(["nope"], "t1", "d1")

    def test_rarer_terms_weigh_more_all_else_equal(self):
        stats = CorpusTermStatistics()
        stats.add_tcu("t1", "d1", ["rare", "frequent"])
        stats.add_tcu("t2", "d2", ["frequent"])
        stats.add_tcu("t3", "d3", ["frequent", "other"])
        weighter = TtfItfWeighter(stats)
        assert weighter.weight("rare", 1, "t1", "d1") > weighter.weight(
            "frequent", 1, "t1", "d1"
        )


class TestTfIdfWeighter:
    def test_idf_discounts_common_terms(self):
        stats = build_statistics()
        weighter = TfIdfWeighter(stats)
        vector = weighter.vector(["xml", "peer"])
        xml_id = stats.vocabulary.id_of("xml")
        peer_id = stats.vocabulary.id_of("peer")
        # 'peer' occurs in one TCU out of five, 'xml' in two
        assert vector.get(peer_id) > vector.get(xml_id) > 0.0

    def test_term_in_every_tcu_gets_zero(self):
        stats = CorpusTermStatistics()
        stats.add_tcu("t1", "d1", ["common"])
        stats.add_tcu("t2", "d1", ["common"])
        assert not TfIdfWeighter(stats).vector(["common"])
