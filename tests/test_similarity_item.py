"""Tests for combined item similarity (Eq. 1-2) and content similarity."""

import pytest

from repro.similarity.content import content_similarity, cosine_similarity
from repro.similarity.item import SimilarityConfig, gamma_matched, item_similarity
from repro.text.vector import SparseVector
from repro.transactions.items import make_synthetic_item
from repro.xmlmodel.paths import XMLPath


def item(path: str, answer: str, vector=None):
    return make_synthetic_item(XMLPath.parse(path), answer, vector=vector)


class TestSimilarityConfig:
    def test_bounds_are_validated(self):
        with pytest.raises(ValueError):
            SimilarityConfig(f=1.5)
        with pytest.raises(ValueError):
            SimilarityConfig(gamma=-0.1)

    def test_clustering_goal_names(self):
        assert SimilarityConfig(f=0.2).clustering_goal == "content-driven"
        assert SimilarityConfig(f=0.5).clustering_goal == "structure/content-driven"
        assert SimilarityConfig(f=0.9).clustering_goal == "structure-driven"

    def test_presets_enforce_their_ranges(self):
        assert SimilarityConfig.content_driven().f <= 0.3
        assert 0.4 <= SimilarityConfig.hybrid().f <= 0.6
        assert SimilarityConfig.structure_driven().f >= 0.7
        with pytest.raises(ValueError):
            SimilarityConfig.content_driven(f=0.5)
        with pytest.raises(ValueError):
            SimilarityConfig.hybrid(f=0.9)
        with pytest.raises(ValueError):
            SimilarityConfig.structure_driven(f=0.2)


class TestContentSimilarity:
    def test_cosine_of_item_vectors(self):
        a = item("x.S", "a", SparseVector({1: 1.0, 2: 1.0}))
        b = item("y.S", "b", SparseVector({1: 1.0}))
        assert content_similarity(a, b) == pytest.approx(
            cosine_similarity(a.vector, b.vector)
        )

    def test_empty_vectors_fall_back_to_exact_answer_match(self):
        # numeric-only answers produce empty TCU vectors; identical answers
        # still count as matching content, different ones do not
        a = item("x.S", "2003")
        b = item("x.S", "2003")
        c = item("x.S", "2002")
        assert content_similarity(a, b) == 1.0
        assert content_similarity(a, c) == 0.0

    def test_mixed_empty_and_nonempty_vectors_score_zero(self):
        empty = item("x.S", "2003")
        full = item("x.S", "2003", SparseVector({1: 1.0}))
        assert content_similarity(empty, full) == 0.0


class TestCombinedSimilarity:
    def test_blend_weights_structure_and_content(self):
        # same tag path (structural similarity 1), orthogonal vectors
        a = item("r.t.S", "a", SparseVector({1: 1.0}))
        b = item("r.t.S", "b", SparseVector({2: 1.0}))
        config = SimilarityConfig(f=0.3, gamma=0.5)
        assert item_similarity(a, b, config) == pytest.approx(0.3)

    def test_pure_structure_ignores_content(self):
        a = item("r.t.S", "a", SparseVector({1: 1.0}))
        b = item("r.t.S", "b", SparseVector({1: 1.0}))
        assert item_similarity(a, b, SimilarityConfig(f=1.0)) == pytest.approx(1.0)

    def test_pure_content_ignores_structure(self):
        a = item("r.t.S", "hello", SparseVector({1: 1.0}))
        b = item("q.z.S", "hello", SparseVector({1: 2.0}))
        assert item_similarity(a, b, SimilarityConfig(f=0.0)) == pytest.approx(1.0)

    def test_identical_items_score_one_for_any_f(self):
        a = item("r.t.S", "same text", SparseVector({1: 1.0, 2: 0.5}))
        for f in (0.0, 0.3, 0.5, 0.8, 1.0):
            assert item_similarity(a, a, SimilarityConfig(f=f)) == pytest.approx(1.0)

    def test_precomputed_structural_shortcut(self):
        a = item("r.t.S", "a", SparseVector({1: 1.0}))
        b = item("r.t.S", "b", SparseVector({1: 1.0}))
        config = SimilarityConfig(f=0.5)
        assert item_similarity(a, b, config, structural=0.0) == pytest.approx(0.5)

    def test_value_stays_in_unit_interval(self):
        a = item("r.t.S", "a", SparseVector({1: 3.0}))
        b = item("r.u.S", "b", SparseVector({1: 1.0, 5: 2.0}))
        for f in (0.0, 0.25, 0.5, 0.75, 1.0):
            value = item_similarity(a, b, SimilarityConfig(f=f))
            assert 0.0 <= value <= 1.0


class TestGammaMatching:
    def test_matching_respects_threshold(self):
        a = item("r.t.S", "a", SparseVector({1: 1.0}))
        b = item("r.t.S", "b", SparseVector({1: 1.0}))
        assert gamma_matched(a, b, SimilarityConfig(f=0.5, gamma=0.9))
        c = item("r.t.S", "c", SparseVector({2: 1.0}))
        assert not gamma_matched(a, c, SimilarityConfig(f=0.5, gamma=0.9))
        assert gamma_matched(a, c, SimilarityConfig(f=0.5, gamma=0.5))

    def test_threshold_is_inclusive(self):
        a = item("r.t.S", "a", SparseVector({1: 1.0}))
        b = item("r.t.S", "b", SparseVector({2: 1.0}))
        # similarity is exactly f = 0.6
        assert gamma_matched(a, b, SimilarityConfig(f=0.6, gamma=0.6))
