"""Property-based round-trip suite for the real-transport wire codec.

Hypothesis generates arbitrary transactions, representative payloads and
control frames and asserts that ``encode -> decode`` reproduces every field
bit-exactly (floats travel as IEEE-754 doubles, so exact equality is the
correct assertion, not approximate equality).  Because
``TreeTupleItem.__eq__`` deliberately compares only ``(item_id, path,
answer)``, the tests additionally compare ``terms`` and ``vector`` field by
field -- a codec that dropped the TCU vectors would otherwise pass.

The second half of the suite locks in the failure behaviour: truncated
frames, corrupted bytes (CRC), bad magic, version mismatches, unknown kind
bytes and trailing garbage must all raise :class:`CodecError` instead of
mis-parsing.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.codec import (
    HEADER_SIZE,
    MAGIC,
    TRAILER_SIZE,
    VERSION,
    CodecError,
    FrameKind,
    LocalResult,
    decode_error,
    decode_frame,
    decode_hello,
    decode_message,
    decode_result,
    encode_error,
    encode_frame,
    encode_hello,
    encode_message,
    encode_result,
    parse_frame_header,
)
from repro.network.message import Message, MessageKind
from repro.text.vector import SparseVector
from repro.transactions.items import TreeTupleItem
from repro.transactions.transaction import Transaction
from repro.xmlmodel.paths import XMLPath

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
# Tag labels: valid XML names that are neither the 'S' sentinel nor
# '@'-prefixed (only the last step of a path may be an attribute or 'S').
tag_labels = st.from_regex(r"[A-Za-z_][A-Za-z0-9_\-]{0,7}", fullmatch=True).filter(
    lambda s: s != "S"
)
last_steps = st.one_of(
    tag_labels,
    st.just("S"),
    st.from_regex(r"@[A-Za-z_][A-Za-z0-9_\-]{0,7}", fullmatch=True),
)
xml_paths = st.builds(
    lambda prefix, last: XMLPath(tuple(prefix) + (last,)),
    st.lists(tag_labels, min_size=0, max_size=3),
    last_steps,
)

finite_floats = st.floats(allow_nan=False, allow_infinity=False)
nonzero_weights = finite_floats.filter(lambda x: x != 0.0)
sparse_vectors = st.builds(
    SparseVector,
    st.dictionaries(st.integers(min_value=0, max_value=2**31 - 1), nonzero_weights, max_size=4),
)

items = st.builds(
    TreeTupleItem,
    item_id=st.integers(min_value=-1, max_value=2**31 - 1),
    path=xml_paths,
    answer=st.text(max_size=20),
    terms=st.tuples() | st.lists(st.text(max_size=10), max_size=3).map(tuple),
    vector=sparse_vectors,
)

transactions = st.builds(
    Transaction,
    transaction_id=st.text(max_size=20),
    items=st.lists(items, max_size=4).map(tuple),
    doc_id=st.text(max_size=10),
    tuple_id=st.text(max_size=10),
)

peer_ids = st.integers(min_value=-1, max_value=2**31 - 1)
round_indexes = st.integers(min_value=0, max_value=2**31 - 1)

# FLAG / extras payloads: scalar dictionaries of str / int / float values
# (booleans deliberately excluded: the wire carries them as integers).
scalar_values = st.one_of(
    st.text(max_size=10),
    st.integers(min_value=-(2**62), max_value=2**62),
    finite_floats,
)
scalar_dicts = st.dictionaries(st.text(max_size=10), scalar_values, max_size=4)

representative_payloads = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2**31 - 1),  # cluster id
        transactions,
        st.integers(min_value=-(2**62), max_value=2**62),  # weight
    ),
    max_size=3,
)

setup_payloads = st.builds(
    lambda resp, k, gamma, extras: {
        "responsibilities": resp,
        "k": k,
        "gamma": gamma,
        **extras,
    },
    st.lists(
        st.lists(st.integers(min_value=0, max_value=2**31 - 1), max_size=4),
        max_size=4,
    ),
    st.integers(min_value=0, max_value=2**31 - 1),
    finite_floats,
    st.dictionaries(
        st.text(max_size=8).filter(
            lambda key: key not in ("responsibilities", "k", "gamma")
        ),
        scalar_values,
        max_size=2,
    ),
)


def assert_transactions_bit_exact(original: Transaction, decoded: Transaction) -> None:
    """Full-field transaction equality, beyond ``TreeTupleItem.__eq__``.

    Items compare equal on (item_id, path, answer) alone, so the dataclass
    ``==`` would not notice dropped terms or TCU vectors.
    """
    assert decoded == original
    assert decoded.transaction_id == original.transaction_id
    assert decoded.doc_id == original.doc_id
    assert decoded.tuple_id == original.tuple_id
    assert len(decoded.items) == len(original.items)
    for got, expected in zip(decoded.items, original.items):
        assert got.item_id == expected.item_id
        assert got.path == expected.path
        assert got.path.steps == expected.path.steps
        assert got.answer == expected.answer
        assert got.terms == expected.terms
        assert got.vector.to_dict() == expected.vector.to_dict()


# --------------------------------------------------------------------------- #
# Round trips: algorithm messages (every MessageKind)
# --------------------------------------------------------------------------- #
class TestMessageRoundTrip:
    @given(
        sender=peer_ids,
        recipient=peer_ids,
        round_index=round_indexes,
        payload=st.none() | setup_payloads,
    )
    @settings(max_examples=50, deadline=None)
    def test_setup(self, sender, recipient, round_index, payload):
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=MessageKind.SETUP,
            payload=payload,
            round_index=round_index,
        )
        decoded = decode_message(encode_message(message))
        assert decoded.sender == sender
        assert decoded.recipient == recipient
        assert decoded.round_index == round_index
        assert decoded.kind is MessageKind.SETUP
        assert decoded.payload == payload

    @given(
        sender=peer_ids,
        recipient=peer_ids,
        round_index=round_indexes,
        payload=st.none() | scalar_dicts,
    )
    @settings(max_examples=50, deadline=None)
    def test_flag(self, sender, recipient, round_index, payload):
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=MessageKind.FLAG,
            payload=payload,
            round_index=round_index,
        )
        decoded = decode_message(encode_message(message))
        assert decoded.kind is MessageKind.FLAG
        assert decoded.payload == payload

    @given(
        kind=st.sampled_from(
            [MessageKind.GLOBAL_REPRESENTATIVES, MessageKind.LOCAL_REPRESENTATIVES]
        ),
        sender=peer_ids,
        recipient=peer_ids,
        round_index=round_indexes,
        payload=st.none() | representative_payloads,
    )
    @settings(max_examples=50, deadline=None)
    def test_representatives(self, kind, sender, recipient, round_index, payload):
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=payload,
            round_index=round_index,
        )
        decoded = decode_message(encode_message(message))
        assert decoded.kind is kind
        assert decoded.sender == sender
        assert decoded.recipient == recipient
        assert decoded.round_index == round_index
        if payload is None:
            assert decoded.payload is None
            return
        assert len(decoded.payload) == len(payload)
        for (got_cluster, got_rep, got_weight), (cluster, rep, weight) in zip(
            decoded.payload, payload
        ):
            assert got_cluster == cluster
            assert got_weight == weight
            assert_transactions_bit_exact(rep, got_rep)

    def test_unsupported_payload_value_raises(self):
        message = Message(
            sender=0, recipient=1, kind=MessageKind.FLAG, payload={"bad": [1, 2]}
        )
        try:
            encode_message(message)
        except CodecError as error:
            assert "unsupported flag payload value" in str(error)
        else:  # pragma: no cover - defensive
            raise AssertionError("expected CodecError")


# --------------------------------------------------------------------------- #
# Round trips: transport-control payloads
# --------------------------------------------------------------------------- #
class TestControlRoundTrip:
    @given(peer_id=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(deadline=None)
    def test_hello(self, peer_id):
        assert decode_hello(encode_hello(peer_id)) == peer_id

    @given(peer_id=peer_ids, text=st.text(max_size=200))
    @settings(deadline=None)
    def test_error(self, peer_id, text):
        assert decode_error(encode_error(peer_id, text)) == (peer_id, text)

    @given(
        result=st.builds(
            LocalResult,
            peer_id=st.integers(min_value=0, max_value=2**31 - 1),
            round_index=round_indexes,
            assignment=st.dictionaries(
                st.text(max_size=12), st.integers(min_value=-1, max_value=2**31 - 1), max_size=5
            ),
            local_representatives=st.lists(transactions, max_size=3),
            cluster_sizes=st.lists(
                st.integers(min_value=0, max_value=2**62), max_size=4
            ),
            compute_seconds=finite_floats,
            store_fallback=st.integers(min_value=0, max_value=2**31 - 1),
            extras=scalar_dicts,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_local_result(self, result):
        decoded = decode_result(encode_result(result))
        assert decoded.peer_id == result.peer_id
        assert decoded.round_index == result.round_index
        assert decoded.assignment == result.assignment
        assert decoded.cluster_sizes == result.cluster_sizes
        assert decoded.compute_seconds == result.compute_seconds
        assert decoded.store_fallback == result.store_fallback
        assert decoded.extras == result.extras
        assert len(decoded.local_representatives) == len(result.local_representatives)
        for got, expected in zip(
            decoded.local_representatives, result.local_representatives
        ):
            assert_transactions_bit_exact(expected, got)


# --------------------------------------------------------------------------- #
# Frame-level failure behaviour
# --------------------------------------------------------------------------- #
payloads = st.binary(max_size=64)
frame_kinds = st.sampled_from(list(FrameKind))


class TestFrameFailures:
    @given(kind=frame_kinds, payload=payloads)
    @settings(deadline=None)
    def test_frame_round_trip(self, kind, payload):
        got_kind, got_payload = decode_frame(encode_frame(kind, payload))
        assert got_kind is kind
        assert got_payload == payload

    @given(kind=frame_kinds, payload=payloads, data=st.data())
    @settings(deadline=None)
    def test_truncated_frame_rejected(self, kind, payload, data):
        frame = encode_frame(kind, payload)
        cut = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        try:
            decode_frame(frame[:cut])
        except CodecError:
            return
        raise AssertionError(f"truncation at {cut} was not rejected")

    @given(kind=frame_kinds, payload=payloads, data=st.data())
    @settings(deadline=None)
    def test_corrupted_byte_rejected(self, kind, payload, data):
        frame = bytearray(encode_frame(kind, payload))
        index = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        mask = data.draw(st.integers(min_value=1, max_value=255))
        frame[index] ^= mask
        try:
            decode_frame(bytes(frame))
        except CodecError:
            return
        raise AssertionError(f"corrupted byte at {index} was not rejected")

    @given(kind=frame_kinds, payload=payloads, garbage=st.binary(min_size=1, max_size=8))
    @settings(deadline=None)
    def test_trailing_bytes_rejected(self, kind, payload, garbage):
        try:
            decode_frame(encode_frame(kind, payload) + garbage)
        except CodecError as error:
            assert "trailing" in str(error)
            return
        raise AssertionError("trailing garbage was not rejected")

    def test_bad_magic(self):
        frame = bytearray(encode_frame(FrameKind.MESSAGE, b"x"))
        frame[:2] = b"ZZ"
        try:
            parse_frame_header(bytes(frame))
        except CodecError as error:
            assert "magic" in str(error)
        else:  # pragma: no cover - defensive
            raise AssertionError("expected CodecError")

    def test_version_mismatch(self):
        frame = bytearray(encode_frame(FrameKind.MESSAGE, b"x"))
        frame[len(MAGIC)] = VERSION + 1
        try:
            parse_frame_header(bytes(frame))
        except CodecError as error:
            assert "version" in str(error)
        else:  # pragma: no cover - defensive
            raise AssertionError("expected CodecError")

    def test_unknown_frame_kind(self):
        frame = bytearray(encode_frame(FrameKind.MESSAGE, b"x"))
        frame[len(MAGIC) + 1] = 200
        try:
            parse_frame_header(bytes(frame))
        except CodecError as error:
            assert "kind" in str(error)
        else:  # pragma: no cover - defensive
            raise AssertionError("expected CodecError")

    def test_header_constants(self):
        frame = encode_frame(FrameKind.HELLO, b"abc")
        assert frame.startswith(MAGIC)
        assert len(frame) == HEADER_SIZE + 3 + TRAILER_SIZE
        header = parse_frame_header(frame)
        assert header.kind is FrameKind.HELLO
        assert header.payload_length == 3


# --------------------------------------------------------------------------- #
# Payload-level failure behaviour
# --------------------------------------------------------------------------- #
class TestPayloadFailures:
    def test_unknown_message_kind_code(self):
        payload = bytearray(
            encode_message(Message(sender=0, recipient=1, kind=MessageKind.FLAG))
        )
        payload[12] = 99  # the kind byte follows sender/recipient/round (4+4+4)
        try:
            decode_message(bytes(payload))
        except CodecError as error:
            assert "message kind" in str(error)
        else:  # pragma: no cover - defensive
            raise AssertionError("expected CodecError")

    @given(payload=st.binary(max_size=10))
    @settings(deadline=None)
    def test_truncated_message_payload(self, payload):
        full = encode_message(
            Message(
                sender=0,
                recipient=1,
                kind=MessageKind.FLAG,
                payload={"state": "done"},
            )
        )
        if len(payload) >= len(full):
            return
        try:
            decode_message(full[: len(payload)])
        except CodecError:
            return
        raise AssertionError("truncated message payload was not rejected")

    def test_trailing_message_bytes(self):
        full = encode_message(Message(sender=0, recipient=1, kind=MessageKind.FLAG))
        try:
            decode_message(full + b"\x00")
        except CodecError as error:
            assert "trailing" in str(error)
        else:  # pragma: no cover - defensive
            raise AssertionError("expected CodecError")

    def test_truncated_hello(self):
        try:
            decode_hello(encode_hello(3)[:2])
        except CodecError as error:
            assert "truncated" in str(error)
        else:  # pragma: no cover - defensive
            raise AssertionError("expected CodecError")

    def test_invalid_utf8_string(self):
        payload = encode_error(1, "x")
        # overwrite the string bytes with invalid UTF-8 (length stays 1)
        corrupted = payload[:-1] + b"\xff"
        try:
            decode_error(corrupted)
        except CodecError as error:
            assert "UTF-8" in str(error)
        else:  # pragma: no cover - defensive
            raise AssertionError("expected CodecError")
