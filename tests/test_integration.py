"""End-to-end integration tests across the whole pipeline.

These tests exercise the complete flow of Fig. 1(b): XML documents ->
tree tuples -> transactions -> (distributed) clustering -> evaluation, on the
synthetic corpora, and check the qualitative claims of the paper's evaluation
at miniature scale (the benchmarks check them at full scale).
"""

import pytest

from repro.core.config import ClusteringConfig
from repro.core.cxkmeans import CXKMeans
from repro.core.partition import PartitioningScheme, partition, partition_equally
from repro.core.pkmeans import PKMeans
from repro.core.xkmeans import XKMeans
from repro.datasets.registry import cluster_count, get_corpus, get_dataset
from repro.evaluation.fmeasure import overall_f_measure
from repro.evaluation.metrics import clustering_report
from repro.network.costmodel import CostModel
from repro.network.mpengine import MultiprocessingExecutor
from repro.similarity.item import SimilarityConfig


SCALE = 0.2
ITERS = 4


@pytest.fixture(scope="module")
def dblp_dataset():
    return get_dataset("DBLP", scale=SCALE, seed=0)


@pytest.fixture(scope="module")
def shakespeare_dataset():
    return get_dataset("Shakespeare", scale=1.0, seed=0)


class TestEndToEndPipeline:
    def test_corpus_to_dataset_to_clustering(self, dblp_dataset):
        config = ClusteringConfig(
            k=cluster_count("DBLP", "content"),
            similarity=SimilarityConfig(f=0.2, gamma=0.7),
            seed=0,
            max_iterations=ITERS,
        )
        parts = partition_equally(dblp_dataset.transactions, 3, seed=0)
        result = CXKMeans(config).fit(parts)
        reference = dblp_dataset.labels_for("content")
        report = clustering_report(result.partition(), reference)
        assert 0.0 < report["f_measure"] <= 1.0
        assert 0.0 < report["purity"] <= 1.0
        assert result.total_clustered() + result.trash_size() == len(dblp_dataset)

    def test_structure_driven_clustering_finds_dblp_categories(self, dblp_dataset):
        config = ClusteringConfig(
            k=cluster_count("DBLP", "structure"),
            similarity=SimilarityConfig(f=0.9, gamma=0.8),
            seed=2,
            max_iterations=ITERS,
        )
        result = XKMeans(config).fit(dblp_dataset.transactions)
        reference = dblp_dataset.labels_for("structure")
        # the four DBLP record layouts are structurally well separated, so a
        # structure-driven run must score high (paper Table 1(c): 0.99)
        assert overall_f_measure(result.partition(), reference) >= 0.75

    def test_shakespeare_content_clustering(self, shakespeare_dataset):
        config = ClusteringConfig(
            k=cluster_count("Shakespeare", "content"),
            similarity=SimilarityConfig(f=0.2, gamma=0.7),
            seed=1,
            max_iterations=ITERS,
        )
        parts = partition_equally(shakespeare_dataset.transactions, 3, seed=1)
        result = CXKMeans(config).fit(parts)
        reference = shakespeare_dataset.labels_for("content")
        assert overall_f_measure(result.partition(), reference) >= 0.45


class TestPaperTrends:
    def test_distributed_runtime_is_lower_than_centralized(self, dblp_dataset):
        """Fig. 7 trend: more peers => lower simulated clustering time.

        At this miniature scale the communication term would dominate (the
        paper itself notes the distributed advantage shrinks with dataset
        size), so the comparison uses a fast-network cost model to expose the
        parallel-computation gain; the full-scale behaviour is covered by the
        Figure 7 benchmark.
        """
        config = ClusteringConfig(
            k=cluster_count("DBLP", "hybrid"),
            similarity=SimilarityConfig(f=0.5, gamma=0.8),
            seed=0,
            max_iterations=ITERS,
        )
        fast_network = CostModel(t_comm=1.0e-4, unit_comm=1.0e-6)
        times = {}
        for nodes in (1, 4):
            parts = partition_equally(dblp_dataset.transactions, nodes, seed=0)
            result = CXKMeans(config, cost_model=fast_network).fit(parts)
            times[nodes] = result.simulated_seconds
        assert times[4] < times[1]

    def test_accuracy_does_not_collapse_with_a_few_peers(self, dblp_dataset):
        """Tables 1-2 trend: the distributed accuracy loss stays bounded."""
        config = ClusteringConfig(
            k=cluster_count("DBLP", "content"),
            similarity=SimilarityConfig(f=0.2, gamma=0.7),
            seed=0,
            max_iterations=ITERS,
        )
        reference = dblp_dataset.labels_for("content")
        centralized = overall_f_measure(
            CXKMeans(config).fit([dblp_dataset.transactions]).partition(), reference
        )
        parts = partition_equally(dblp_dataset.transactions, 5, seed=0)
        distributed = overall_f_measure(
            CXKMeans(config).fit(parts).partition(), reference
        )
        assert centralized - distributed <= 0.35

    def test_unequal_distribution_is_not_catastrophic(self, dblp_dataset):
        """Table 2 trend: unequal partitioning loses little accuracy."""
        config = ClusteringConfig(
            k=cluster_count("DBLP", "content"),
            similarity=SimilarityConfig(f=0.2, gamma=0.7),
            seed=0,
            max_iterations=ITERS,
        )
        reference = dblp_dataset.labels_for("content")
        scores = {}
        for scheme in (PartitioningScheme.EQUAL, PartitioningScheme.UNEQUAL):
            parts = partition(dblp_dataset.transactions, 4, scheme, seed=0)
            scores[scheme] = overall_f_measure(
                CXKMeans(config).fit(parts).partition(), reference
            )
        assert scores[PartitioningScheme.EQUAL] - scores[PartitioningScheme.UNEQUAL] <= 0.3

    def test_cxk_traffic_grows_slower_than_pk_traffic(self, dblp_dataset):
        """Fig. 8 trend: the non-collaborative baseline exchanges more data."""
        config = ClusteringConfig(
            k=cluster_count("DBLP", "hybrid"),
            similarity=SimilarityConfig(f=0.5, gamma=0.8),
            seed=0,
            max_iterations=3,
        )
        parts = partition_equally(dblp_dataset.transactions, 5, seed=0)
        cxk = CXKMeans(config).fit(parts)
        pk = PKMeans(config).fit(parts)
        cxk_rate = cxk.network["transferred_transactions"] / cxk.network["rounds"]
        pk_rate = pk.network["transferred_transactions"] / pk.network["rounds"]
        assert pk_rate > cxk_rate


class TestExecutionEngines:
    def test_multiprocessing_engine_produces_same_clusters_as_serial(self, dblp_dataset):
        config = ClusteringConfig(
            k=4,
            similarity=SimilarityConfig(f=0.5, gamma=0.8),
            seed=0,
            max_iterations=2,
        )
        parts = partition_equally(dblp_dataset.transactions[:40], 2, seed=0)
        serial = CXKMeans(config).fit(parts)
        with MultiprocessingExecutor(processes=2) as executor:
            parallel = CXKMeans(config, executor=executor).fit(parts)
        assert serial.assignments(include_trash=True) == parallel.assignments(
            include_trash=True
        )

    def test_cost_model_scales_simulated_time(self, dblp_dataset):
        config = ClusteringConfig(
            k=4,
            similarity=SimilarityConfig(f=0.5, gamma=0.8),
            seed=0,
            max_iterations=2,
        )
        parts = partition_equally(dblp_dataset.transactions[:40], 4, seed=0)
        slow_network = CXKMeans(config, cost_model=CostModel(t_comm=0.2)).fit(parts)
        fast_network = CXKMeans(config, cost_model=CostModel(t_comm=0.0, unit_comm=0.0)).fit(parts)
        assert slow_network.simulated_seconds > fast_network.simulated_seconds
