"""Tests for clustering configuration, seeding and data partitioning."""

import random
from collections import Counter

import pytest

from repro.core.config import ClusteringConfig
from repro.core.partition import (
    PartitioningScheme,
    partition,
    partition_equally,
    partition_unequally,
)
from repro.core.seeding import partition_cluster_ids, select_seed_transactions
from repro.similarity.item import SimilarityConfig
from repro.transactions.items import make_synthetic_item
from repro.transactions.transaction import make_transaction
from repro.xmlmodel.paths import XMLPath


def make_transactions(count: int, docs: int):
    transactions = []
    for index in range(count):
        doc = f"doc{index % docs}"
        item = make_synthetic_item(XMLPath.parse("r.t.S"), f"value {index}")
        transactions.append(
            make_transaction(f"tr{index}", [item], doc_id=doc, tuple_id=f"tr{index}")
        )
    return transactions


class TestClusteringConfig:
    def test_valid_configuration(self):
        config = ClusteringConfig(k=4, similarity=SimilarityConfig(f=0.5, gamma=0.8))
        assert config.f == 0.5 and config.gamma == 0.8

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ClusteringConfig(k=0)

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            ClusteringConfig(k=2, max_iterations=0)

    def test_with_helpers_return_modified_copies(self):
        config = ClusteringConfig(k=2)
        assert config.with_k(5).k == 5
        assert config.with_seed(9).seed == 9
        new_similarity = SimilarityConfig(f=0.9, gamma=0.7)
        assert config.with_similarity(new_similarity).similarity == new_similarity
        # original untouched
        assert config.k == 2 and config.seed == 0


class TestSeeding:
    def test_seeds_come_from_distinct_documents_when_possible(self):
        transactions = make_transactions(20, docs=10)
        seeds = select_seed_transactions(transactions, 5, random.Random(0))
        docs = [seed.doc_id for seed in seeds]
        assert len(set(docs)) == 5

    def test_more_seeds_than_documents_falls_back_to_any_transaction(self):
        transactions = make_transactions(10, docs=3)
        seeds = select_seed_transactions(transactions, 6, random.Random(0))
        assert len(seeds) == 6
        assert len({seed.transaction_id for seed in seeds}) == 6

    def test_zero_seeds(self):
        assert select_seed_transactions(make_transactions(3, 3), 0, random.Random(0)) == []

    def test_too_many_seeds_raises(self):
        with pytest.raises(ValueError):
            select_seed_transactions(make_transactions(2, 2), 3, random.Random(0))

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            select_seed_transactions(make_transactions(2, 2), -1, random.Random(0))

    def test_selection_is_deterministic_given_seed(self):
        transactions = make_transactions(20, docs=10)
        first = select_seed_transactions(transactions, 4, random.Random(42))
        second = select_seed_transactions(transactions, 4, random.Random(42))
        assert [t.transaction_id for t in first] == [t.transaction_id for t in second]


class TestClusterIdPartitioning:
    def test_round_robin_assignment(self):
        assert partition_cluster_ids(5, 2) == [[0, 2, 4], [1, 3]]

    def test_more_nodes_than_clusters(self):
        subsets = partition_cluster_ids(2, 4)
        assert subsets == [[0], [1], [], []]

    def test_every_cluster_assigned_exactly_once(self):
        subsets = partition_cluster_ids(16, 5)
        flattened = [c for subset in subsets for c in subset]
        assert sorted(flattened) == list(range(16))

    def test_balanced_sizes(self):
        sizes = [len(s) for s in partition_cluster_ids(10, 3)]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            partition_cluster_ids(0, 3)
        with pytest.raises(ValueError):
            partition_cluster_ids(3, 0)


class TestDataPartitioning:
    def test_equal_partitioning_balances_sizes(self):
        transactions = make_transactions(101, docs=20)
        chunks = partition_equally(transactions, 4, seed=1)
        sizes = [len(chunk) for chunk in chunks]
        assert sum(sizes) == 101
        assert max(sizes) - min(sizes) <= 1

    def test_equal_partitioning_covers_every_transaction_once(self):
        transactions = make_transactions(30, docs=10)
        chunks = partition_equally(transactions, 3, seed=2)
        ids = [t.transaction_id for chunk in chunks for t in chunk]
        assert Counter(ids) == Counter(t.transaction_id for t in transactions)

    def test_unequal_partitioning_heavy_peers_hold_about_twice_as_much(self):
        transactions = make_transactions(120, docs=30)
        chunks = partition_unequally(transactions, 4, seed=0)
        sizes = [len(chunk) for chunk in chunks]
        assert sum(sizes) == 120
        heavy = sizes[:2]
        light = sizes[2:]
        assert min(heavy) > max(light)
        assert sum(heavy) == pytest.approx(2 * sum(light), rel=0.15)

    def test_unequal_partitioning_single_node(self):
        transactions = make_transactions(7, docs=3)
        chunks = partition_unequally(transactions, 1, seed=0)
        assert len(chunks) == 1 and len(chunks[0]) == 7

    def test_unequal_partitioning_odd_node_count(self):
        transactions = make_transactions(90, docs=30)
        chunks = partition_unequally(transactions, 5, seed=0)
        assert sum(len(chunk) for chunk in chunks) == 90
        assert len(chunks) == 5

    def test_partition_dispatcher(self):
        transactions = make_transactions(20, docs=5)
        equal = partition(transactions, 2, PartitioningScheme.EQUAL, seed=3)
        unequal = partition(transactions, 2, PartitioningScheme.UNEQUAL, seed=3)
        assert len(equal) == len(unequal) == 2
        assert abs(len(equal[0]) - len(equal[1])) <= 1
        assert len(unequal[0]) > len(unequal[1])

    def test_partitioning_is_deterministic(self):
        transactions = make_transactions(40, docs=10)
        first = partition_equally(transactions, 3, seed=5)
        second = partition_equally(transactions, 3, seed=5)
        assert [[t.transaction_id for t in chunk] for chunk in first] == [
            [t.transaction_id for t in chunk] for chunk in second
        ]

    def test_invalid_node_counts(self):
        transactions = make_transactions(5, docs=5)
        with pytest.raises(ValueError):
            partition_equally(transactions, 0)
        with pytest.raises(ValueError):
            partition_unequally(transactions, 0)
