"""Parity and availability tests for the optional torch backend.

Two halves, so the suite passes both with and without torch installed:

* **Availability** -- the ``torch`` registry entry, the actionable
  :class:`~repro.similarity.backend.BackendUnavailableError` at
  config-resolution time (``ClusteringConfig``, CLI) and the
  no-nested-sharding rules.  These tests *simulate* a torch-less
  environment (``sys.modules["torch"] = None`` makes every ``import
  torch`` raise), so they run identically on machines with and without
  the dependency.
* **Parity** -- bit-exact CPU-float64 agreement with the python reference
  (hypothesis transactions, hand-built edge cases, and full XK/CXK fits),
  mirroring ``tests/test_similarity_backend.py``'s exact-``==``
  discipline.  Skipped when torch is not installed; CI runs them in the
  ``optional-backends`` and ``coverage`` jobs.
"""

from __future__ import annotations

import importlib.util
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ClusteringConfig
from repro.core.representatives import compute_local_representative
from repro.network.mpengine import RefinementShard, refine_clusters
from repro.similarity.backend import (
    BackendUnavailableError,
    available_backends,
    create_backend,
    registered_backends,
    validate_backend_spec,
)
from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.item import SimilarityConfig
from repro.similarity.transaction import SimilarityEngine
from repro.text.vector import SparseVector
from repro.transactions.items import make_synthetic_item
from repro.transactions.transaction import make_transaction
from repro.xmlmodel.paths import XMLPath

HAS_TORCH = importlib.util.find_spec("torch") is not None

needs_torch = pytest.mark.skipif(
    not HAS_TORCH, reason="torch is not installed (optional dependency)"
)


# --------------------------------------------------------------------------- #
# Helpers and strategies (mirroring test_similarity_backend.py)
# --------------------------------------------------------------------------- #
def item(path: str, answer: str, vector=None):
    return make_synthetic_item(XMLPath.parse(path), answer, vector=vector)


def engines(f: float = 0.5, gamma: float = 0.8):
    """One python and one torch engine sharing nothing but the config."""
    config = SimilarityConfig(f=f, gamma=gamma)
    return (
        SimilarityEngine(config, cache=TagPathSimilarityCache(), backend="python"),
        SimilarityEngine(config, cache=TagPathSimilarityCache(), backend="torch"),
    )


_TAGS = ["a", "b", "c"]
_TERMS = [1, 2, 3, 4]


@st.composite
def transactions_strategy(draw, max_items: int = 5):
    """Random transaction: random paths, vectors and occasional empty TCUs."""
    count = draw(st.integers(min_value=0, max_value=max_items))
    items = []
    for _ in range(count):
        depth = draw(st.integers(min_value=1, max_value=3))
        steps = [draw(st.sampled_from(_TAGS)) for _ in range(depth)] + ["S"]
        if draw(st.booleans()):
            weights = {
                term: draw(st.floats(min_value=0.25, max_value=2.0))
                for term in draw(
                    st.sets(st.sampled_from(_TERMS), min_size=1, max_size=3)
                )
            }
            vector = SparseVector(weights)
        else:
            vector = None  # empty TCU: content falls back to answer equality
        answer = draw(st.sampled_from(["alpha", "beta", "gamma delta", "42"]))
        items.append(
            make_synthetic_item(XMLPath(tuple(steps)), answer, vector=vector)
        )
    return make_transaction(f"tr{draw(st.integers(0, 10_000))}", items)


_CONFIGS = st.tuples(
    st.sampled_from([0.0, 0.2, 0.5, 0.8, 1.0]),
    st.sampled_from([0.0, 0.5, 0.8, 1.0]),
)


@pytest.fixture
def no_torch(monkeypatch):
    """Simulate an environment without torch.

    ``None`` in ``sys.modules`` makes every ``import torch`` raise
    ``ImportError`` (the interpreter's halted-import marker), whether or
    not the real package is installed, so the availability behaviour is
    testable everywhere.
    """
    monkeypatch.setitem(sys.modules, "torch", None)


# --------------------------------------------------------------------------- #
# Registry and availability (run with and without torch installed)
# --------------------------------------------------------------------------- #
class TestAvailability:
    def test_torch_is_registered(self):
        assert "torch" in registered_backends()

    def test_available_backends_exclude_torch_without_torch(self, no_torch):
        assert "torch" not in available_backends()

    def test_create_backend_raises_actionable_error(self, no_torch):
        engine = SimilarityEngine(SimilarityConfig())
        with pytest.raises(BackendUnavailableError, match="pip install torch"):
            create_backend("torch", engine)

    @pytest.mark.parametrize("spec", ["torch", "torch:cuda", "torch:mps"])
    def test_config_resolution_raises_without_torch(self, no_torch, spec):
        """ClusteringConfig fails at construction, not deep inside a fit."""
        with pytest.raises(BackendUnavailableError, match="pip install torch"):
            ClusteringConfig(k=2, backend=spec)

    def test_validate_backend_spec_raises_without_torch(self, no_torch):
        with pytest.raises(BackendUnavailableError, match="pip install torch"):
            validate_backend_spec("torch")

    def test_malformed_block_option_fails_even_without_torch(self, no_torch):
        """Option-grammar errors surface before the import is attempted."""
        with pytest.raises(ValueError, match="block"):
            validate_backend_spec("torch:block=nope")

    def test_cli_fails_before_loading_any_corpus(self, no_torch, monkeypatch):
        """--backend torch exits cleanly (no traceback) at resolution time,
        carrying the same actionable install guidance the library raises."""
        from repro import cli

        def fail_dataset(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError(
                "the corpus must not be loaded when the backend is unavailable"
            )

        monkeypatch.setattr(cli, "get_dataset", fail_dataset)
        with pytest.raises(SystemExit, match="pip install torch"):
            cli.main(["cluster", "--corpus", "DBLP", "--backend", "torch"])

    def test_cli_rejects_unknown_backends_with_alternatives(self):
        from repro import cli

        with pytest.raises(SystemExit, match="unknown similarity backend"):
            cli.main(["cluster", "--corpus", "DBLP", "--backend", "bogus"])

    @pytest.mark.parametrize("spec", ["sharded:2:torch", "sharded::torch"])
    def test_sharded_refuses_a_torch_inner_backend(self, spec):
        """No nested sharding: torch never runs inside shard workers."""
        with pytest.raises(ValueError, match="torch backend cannot run inside"):
            validate_backend_spec(spec)
        engine = SimilarityEngine(SimilarityConfig())
        with pytest.raises(ValueError, match="torch backend cannot run inside"):
            create_backend(spec, engine)


class TestRefinementGuard:
    def _clusters(self):
        return [
            [
                make_transaction(
                    f"t{index}-{member}",
                    [
                        item("r.a.S", f"v{index}", SparseVector({1: 1.0})),
                        item("r.b.S", f"w{member}", SparseVector({2: 1.0})),
                    ],
                )
                for member in range(3)
            ]
            for index in range(3)
        ]

    def test_torch_shards_refine_in_process_instead_of_dispatching(
        self, monkeypatch
    ):
        """refine_clusters never reaches a worker pool for torch shards.

        The guard is backend-name based, so the test needs no torch
        install: the shards *name* a torch backend while the in-process
        fallback refines on the caller's (python) engine.
        """
        from repro.network import mpengine

        def no_pool(workers):  # pragma: no cover - must not run
            raise AssertionError("torch shards must not reach a worker pool")

        monkeypatch.setattr(mpengine, "shard_executor", no_pool)
        engine = SimilarityEngine(
            SimilarityConfig(f=0.5, gamma=0.8), cache=TagPathSimilarityCache()
        )

        def shards(backend):
            return [
                RefinementShard(
                    cluster_index=index,
                    members=list(cluster),
                    similarity=engine.config,
                    backend=backend,
                    representative_id=f"rep:{index}",
                )
                for index, cluster in enumerate(self._clusters())
            ]

        serial = refine_clusters(shards("torch"), engine, workers=1)
        for spec in ("torch", "torch:cuda"):
            guarded = refine_clusters(shards(spec), engine, workers=4)
            assert sorted(guarded) == sorted(serial)
            for index in serial:
                assert guarded[index].items == serial[index].items


# --------------------------------------------------------------------------- #
# Device specs (require torch; CI runs them on the CPU wheel)
# --------------------------------------------------------------------------- #
@needs_torch
class TestDeviceSpecs:
    def test_cpu_spec_is_valid_and_float64(self):
        engine = SimilarityEngine(SimilarityConfig(), backend="torch")
        backend = engine.backend
        assert backend.device.type == "cpu"
        assert backend.dtype == backend._torch.float64

    def test_validate_accepts_plain_torch_spec(self):
        assert validate_backend_spec("torch") == "torch"
        assert "torch" in available_backends()

    def test_invalid_device_raises_value_error(self):
        with pytest.raises(ValueError, match="invalid torch device"):
            validate_backend_spec("torch:not-a-device")

    def test_cuda_without_gpu_raises_unavailable(self):
        import torch

        if torch.cuda.is_available():  # pragma: no cover - CPU wheel in CI
            pytest.skip("CUDA is available on this host")
        with pytest.raises(BackendUnavailableError, match="torch:cuda"):
            ClusteringConfig(k=2, backend="torch:cuda")

    def test_mps_without_apple_silicon_raises_unavailable(self):
        import torch

        mps = getattr(torch.backends, "mps", None)
        if mps is not None and mps.is_available():  # pragma: no cover
            pytest.skip("MPS is available on this host")
        with pytest.raises(BackendUnavailableError, match="torch:mps"):
            validate_backend_spec("torch:mps")

    def test_block_option_parses_with_and_without_a_device(self):
        engine = SimilarityEngine(
            SimilarityConfig(), backend="torch:block=16"
        )
        backend = engine.backend
        assert backend.device.type == "cpu"
        assert backend.block_items == 16
        mixed = SimilarityEngine(
            SimilarityConfig(), backend="torch:cpu:block=8"
        ).backend
        assert mixed.device.type == "cpu"
        assert mixed.block_items == 8
        assert validate_backend_spec("torch:cpu:block=8") == "torch:cpu:block=8"

    def test_malformed_block_option_raises_value_error(self):
        with pytest.raises(ValueError, match="block"):
            validate_backend_spec("torch:block=abc")
        with pytest.raises(ValueError, match="invalid torch backend options"):
            validate_backend_spec("torch:cpu:cuda:block=4")


# --------------------------------------------------------------------------- #
# Hand-built edge cases (bit-exact CPU float64 parity)
# --------------------------------------------------------------------------- #
@needs_torch
class TestEdgeCaseParity:
    def edge_transactions(self):
        shared = item("r.a.S", "shared", SparseVector({1: 1.0}))
        near_1 = item("r.b.S", "near one", SparseVector({2: 1.0, 3: 1.0}))
        near_2 = item("r.b.S", "near two", SparseVector({2: 1.0, 4: 1.0}))
        empty_tcu_1 = item("r.c.S", "1999")
        empty_tcu_2 = item("r.c.S", "2001")
        return [
            make_transaction("t1", [shared, near_1, empty_tcu_1]),
            make_transaction("t2", [shared, near_2, empty_tcu_2]),
            make_transaction("t3", [near_2, empty_tcu_1]),
            make_transaction("empty", []),
        ]

    @pytest.mark.parametrize("f", [0.0, 0.5, 1.0])
    @pytest.mark.parametrize("gamma", [0.0, 0.8, 1.0])
    def test_pairwise_parity_on_edge_cases(self, f, gamma):
        python_engine, torch_engine = engines(f=f, gamma=gamma)
        transactions = self.edge_transactions()
        expected = python_engine.pairwise_transaction_similarity(
            transactions, transactions
        )
        actual = torch_engine.pairwise_transaction_similarity(
            transactions, transactions
        )
        assert actual == expected  # exact, not approximate

    @pytest.mark.parametrize("f", [0.0, 0.5, 1.0])
    def test_gamma_shared_items_parity_on_edge_cases(self, f):
        python_engine, torch_engine = engines(f=f, gamma=0.7)
        transactions = self.edge_transactions()
        for first in transactions:
            for second in transactions:
                assert torch_engine.backend.gamma_shared_items(
                    first, second
                ) == python_engine.gamma_shared_items(first, second)

    def test_assign_all_with_no_representatives(self):
        python_engine, torch_engine = engines()
        transactions = self.edge_transactions()
        expected = python_engine.assign_all(transactions, [])
        assert expected == [(-1, 0.0)] * len(transactions)
        assert torch_engine.assign_all(transactions, []) == expected

    def test_nearest_representative_breaks_ties_to_lowest_index(self):
        target = make_transaction("t", [item("r.a.S", "x", SparseVector({1: 1.0}))])
        twin_a = make_transaction("rep-a", [item("r.a.S", "x", SparseVector({1: 1.0}))])
        twin_b = make_transaction("rep-b", [item("r.a.S", "x", SparseVector({1: 1.0}))])
        _, torch_engine = engines(f=0.5, gamma=0.5)
        index, similarity = torch_engine.backend.nearest_representative(
            target, [twin_a, twin_b]
        )
        assert index == 0
        assert similarity == 1.0

    def test_compile_corpus_is_idempotent_and_counts(self):
        _, torch_engine = engines()
        transactions = [tr for tr in self.edge_transactions() if tr.items]
        assert torch_engine.backend.compile_corpus(transactions) == len(transactions)
        assert torch_engine.backend.compile_corpus(transactions) == 0


# --------------------------------------------------------------------------- #
# Property-based parity (hypothesis)
# --------------------------------------------------------------------------- #
@needs_torch
class TestPropertyParity:
    @settings(max_examples=40, deadline=None)
    @given(
        tr1=transactions_strategy(),
        tr2=transactions_strategy(),
        config=_CONFIGS,
    )
    def test_transaction_similarity_and_shared_items_parity(self, tr1, tr2, config):
        f, gamma = config
        python_engine, torch_engine = engines(f=f, gamma=gamma)
        assert torch_engine.backend.transaction_similarity(
            tr1, tr2
        ) == python_engine.transaction_similarity(tr1, tr2)
        assert torch_engine.backend.gamma_shared_items(
            tr1, tr2
        ) == python_engine.gamma_shared_items(tr1, tr2)

    @settings(max_examples=25, deadline=None)
    @given(
        transactions=st.lists(transactions_strategy(), min_size=1, max_size=6),
        representatives=st.lists(transactions_strategy(), min_size=1, max_size=3),
        config=_CONFIGS,
    )
    def test_assign_all_parity(self, transactions, representatives, config):
        f, gamma = config
        python_engine, torch_engine = engines(f=f, gamma=gamma)
        assert torch_engine.assign_all(
            transactions, representatives
        ) == python_engine.assign_all(transactions, representatives)

    @settings(max_examples=25, deadline=None)
    @given(
        cluster=st.lists(transactions_strategy(), min_size=1, max_size=4),
        candidates=st.lists(transactions_strategy(), min_size=1, max_size=4),
        config=_CONFIGS,
    )
    def test_score_candidates_parity(self, cluster, candidates, config):
        f, gamma = config
        python_engine, torch_engine = engines(f=f, gamma=gamma)
        assert torch_engine.backend.score_candidates(
            cluster, candidates
        ) == python_engine.backend.score_candidates(cluster, candidates)

    @settings(max_examples=25, deadline=None)
    @given(
        transactions=st.lists(transactions_strategy(), min_size=1, max_size=4),
        config=_CONFIGS,
    )
    def test_rank_items_batch_parity(self, transactions, config):
        f, gamma = config
        python_engine, torch_engine = engines(f=f, gamma=gamma)
        pool = [entry for tr in transactions for entry in tr.items]
        assert torch_engine.rank_items_batch(
            pool
        ) == python_engine.rank_items_batch(pool)

    @settings(max_examples=15, deadline=None)
    @given(
        cluster=st.lists(transactions_strategy(max_items=4), min_size=1, max_size=4),
        config=_CONFIGS,
    )
    def test_local_representative_parity(self, cluster, config):
        f, gamma = config
        python_engine, torch_engine = engines(f=f, gamma=gamma)
        expected = compute_local_representative(
            cluster, python_engine, representative_id="rep"
        )
        actual = compute_local_representative(
            cluster, torch_engine, representative_id="rep"
        )
        assert actual.items == expected.items


# --------------------------------------------------------------------------- #
# Tiled tensor kernels (bit-exact with the untiled numpy path)
# --------------------------------------------------------------------------- #
@needs_torch
class TestTiledParity:
    """Every tile budget reproduces the untiled numpy results bit for bit.

    The 4-D padded tile kernel fuses several column transactions per
    reduction; these tests sweep pathological (1, 2), misaligned (7) and
    oversized (>= corpus) budgets against the ``numpy:block=0`` baseline
    (itself pinned to the python reference by ``test_tiled_backend.py``).
    """

    TILE_SIZES = (1, 2, 7, 10_000)

    @pytest.fixture(scope="class")
    def dblp_small(self):
        from repro.datasets.registry import get_dataset

        return get_dataset("DBLP", scale=0.2, seed=0)

    def _engine(self, spec, f=0.5, gamma=0.8):
        return SimilarityEngine(
            SimilarityConfig(f=f, gamma=gamma),
            cache=TagPathSimilarityCache(),
            backend=spec,
        )

    @pytest.mark.parametrize("f", [0.0, 0.5, 1.0])
    def test_corpus_parity_across_tile_sizes(self, dblp_small, f):
        transactions = dblp_small.transactions
        representatives = transactions[:5]
        pool = [entry for tr in transactions[:8] for entry in tr.items]
        untiled = self._engine("numpy:block=0", f=f)
        expected_pairwise = untiled.pairwise_transaction_similarity(
            transactions, representatives
        )
        expected_assign = untiled.assign_all(transactions, representatives)
        expected_scores = untiled.score_candidates(
            transactions[:12], representatives
        )
        expected_ranks = untiled.rank_items_batch(pool)
        for block in self.TILE_SIZES:
            tiled = self._engine(f"torch:block={block}", f=f)
            assert (
                tiled.pairwise_transaction_similarity(
                    transactions, representatives
                )
                == expected_pairwise
            )
            assert tiled.assign_all(transactions, representatives) == expected_assign
            assert (
                tiled.score_candidates(transactions[:12], representatives)
                == expected_scores
            )
            assert tiled.rank_items_batch(pool) == expected_ranks

    def test_tiled_scratch_is_bounded(self, dblp_small):
        transactions = dblp_small.transactions
        tiled = self._engine("torch:block=8")
        tiled.pairwise_transaction_similarity(transactions, transactions[:6])
        bounded = tiled.backend.peak_scratch_entries
        untiled = self._engine("torch:block=0")
        untiled.pairwise_transaction_similarity(transactions, transactions[:6])
        # padding rounds each transaction up to its tile's longest one, so
        # the bound is (padded row items) x (padded column items) -- far
        # below the unbounded single-tile block on a real corpus
        assert bounded < untiled.backend.peak_scratch_entries

    def test_empty_rows_and_columns_survive_tiling(self):
        transactions = [
            make_transaction("e1", []),
            make_transaction(
                "t1", [item("r.a.S", "x", SparseVector({1: 1.0}))]
            ),
            make_transaction("e2", []),
            make_transaction(
                "t2",
                [
                    item("r.a.S", "x", SparseVector({1: 1.0})),
                    item("r.b.S", "y"),
                ],
            ),
        ]
        expected = self._engine("numpy:block=0").pairwise_transaction_similarity(
            transactions, transactions
        )
        for block in self.TILE_SIZES:
            tiled = self._engine(f"torch:block={block}")
            assert (
                tiled.pairwise_transaction_similarity(transactions, transactions)
                == expected
            )


# --------------------------------------------------------------------------- #
# Corpus-level parity (full fits; the acceptance gate)
# --------------------------------------------------------------------------- #
@needs_torch
class TestFitParity:
    @pytest.fixture(scope="class")
    def dblp_small(self):
        from repro.datasets.registry import get_dataset

        return get_dataset("DBLP", scale=0.2, seed=0)

    def test_assign_all_parity_on_generator_corpus(self, dblp_small):
        import random

        from repro.core.seeding import select_seed_transactions

        python_engine, torch_engine = engines(f=0.5, gamma=0.8)
        transactions = dblp_small.transactions
        torch_engine.backend.compile_corpus(transactions)
        representatives = select_seed_transactions(transactions, 5, random.Random(0))
        assert torch_engine.assign_all(
            transactions, representatives
        ) == python_engine.assign_all(transactions, representatives)

    def test_xkmeans_fit_parity_same_seed(self, dblp_small):
        from repro.core.xkmeans import XKMeans

        results = {}
        for backend in ("python", "torch"):
            config = ClusteringConfig(
                k=4,
                similarity=SimilarityConfig(f=0.5, gamma=0.8),
                seed=7,
                max_iterations=5,
                backend=backend,
            )
            results[backend] = XKMeans(config).fit(dblp_small.transactions)
        assert results["python"].partition() == results["torch"].partition()
        assert results["python"].iterations == results["torch"].iterations
        for rep_python, rep_torch in zip(
            results["python"].representatives(),
            results["torch"].representatives(),
        ):
            assert sorted(
                (str(entry.path), entry.answer) for entry in rep_python.items
            ) == sorted((str(entry.path), entry.answer) for entry in rep_torch.items)

    def test_cxkmeans_fit_parity_same_seed(self, dblp_small):
        from repro.core.cxkmeans import CXKMeans

        partitions = [
            dblp_small.transactions[0::2],
            dblp_small.transactions[1::2],
        ]
        results = {}
        for backend in ("python", "torch"):
            config = ClusteringConfig(
                k=3,
                similarity=SimilarityConfig(f=0.5, gamma=0.8),
                seed=3,
                max_iterations=4,
                backend=backend,
            )
            results[backend] = CXKMeans(config).fit(partitions)
        assert results["python"].partition() == results["torch"].partition()

    def test_cxkmeans_fit_with_refine_workers_matches_serial(self, dblp_small):
        """refine_workers>1 + torch degrades to the serial in-process path
        (the no-nested-sharding rule) without changing the clustering."""
        from repro.core.cxkmeans import CXKMeans

        partitions = [
            dblp_small.transactions[0::2],
            dblp_small.transactions[1::2],
        ]
        results = {}
        for refine_workers in (None, 2):
            config = ClusteringConfig(
                k=3,
                similarity=SimilarityConfig(f=0.5, gamma=0.8),
                seed=3,
                max_iterations=3,
                backend="torch",
                refine_workers=refine_workers,
            )
            results[refine_workers] = CXKMeans(config).fit(partitions)
        assert results[None].partition() == results[2].partition()
