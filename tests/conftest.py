"""Shared fixtures for the test suite.

The central fixture is the paper's running example (Fig. 2): a simplified
DBLP document with two conference papers that decomposes into exactly three
tree tuples and eleven distinct items, which lets many tests assert against
values printed in the paper itself.  A small synthetic two-topic corpus is
provided for clustering tests.
"""

from __future__ import annotations

import random

import pytest

from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.item import SimilarityConfig
from repro.similarity.transaction import SimilarityEngine
from repro.transactions.builder import build_dataset
from repro.xmlmodel.parser import parse_xml

#: The paper's Fig. 2 document (two KDD papers by Zaki / Zaki & Aggarwal).
PAPER_EXAMPLE_XML = """
<dblp>
  <inproceedings key="conf/kdd/ZakiA03">
    <author>M.J. Zaki</author>
    <author>C.C. Aggarwal</author>
    <title>XRules: an effective structural classifier for XML data</title>
    <year>2003</year>
    <booktitle>KDD</booktitle>
    <pages>316-325</pages>
  </inproceedings>
  <inproceedings key="conf/kdd/Zaki02">
    <author>M.J. Zaki</author>
    <title>Efficiently mining frequent trees in a forest</title>
    <year>2002</year>
    <booktitle>KDD</booktitle>
    <pages>71-80</pages>
  </inproceedings>
</dblp>
"""

#: Two-topic vocabulary for the miniature clustering corpus.
_TOPIC_WORDS = {
    "ml": [
        "learning", "machine", "neural", "network", "classification",
        "training", "model", "gradient", "feature", "kernel",
    ],
    "db": [
        "database", "query", "index", "transaction", "storage",
        "relational", "sql", "optimization", "schema", "join",
    ],
}


def make_mini_corpus(num_documents: int = 16, seed: int = 7):
    """Build a small two-topic, two-schema corpus with ground truth labels.

    Half of the documents use an ``article`` schema and half a ``paper``
    schema; topics alternate independently of the schema so content and
    structure labellings are orthogonal.
    """
    rng = random.Random(seed)
    trees = []
    content, structure, hybrid = {}, {}, {}
    for index in range(num_documents):
        topic = "ml" if index % 2 == 0 else "db"
        schema = "article" if index % 4 < 2 else "paper"
        words = _TOPIC_WORDS[topic]
        title = " ".join(rng.sample(words, 5))
        abstract = " ".join(rng.choices(words, k=12))
        if schema == "article":
            xml = (
                f"<article><author>Author {index}</author>"
                f"<title>{title}</title><abstract>{abstract}</abstract>"
                f"<journal>Journal of {topic}</journal></article>"
            )
        else:
            xml = (
                f'<paper key="p{index}"><writer>Writer {index}</writer>'
                f"<name>{title}</name><summary>{abstract}</summary>"
                f"<venue>Conference on {topic}</venue></paper>"
            )
        doc_id = f"doc{index:03d}"
        trees.append(parse_xml(xml, doc_id=doc_id))
        content[doc_id] = topic
        structure[doc_id] = schema
        hybrid[doc_id] = f"{schema}|{topic}"
    return trees, {"content": content, "structure": structure, "hybrid": hybrid}


@pytest.fixture(scope="session")
def paper_tree():
    """The XML tree of the paper's Fig. 2."""
    return parse_xml(PAPER_EXAMPLE_XML, doc_id="dblp-example")


@pytest.fixture(scope="session")
def mini_corpus():
    """(trees, doc_labels) of the miniature two-topic / two-schema corpus."""
    return make_mini_corpus()


@pytest.fixture(scope="session")
def mini_dataset(mini_corpus):
    """The miniature corpus as a TransactionDataset with all labellings."""
    trees, labels = mini_corpus
    return build_dataset("mini", trees, doc_labels=labels)


@pytest.fixture()
def engine():
    """A similarity engine with a permissive gamma (good for small fixtures)."""
    return SimilarityEngine(SimilarityConfig(f=0.5, gamma=0.5), cache=TagPathSimilarityCache())


@pytest.fixture()
def content_engine():
    """A content-leaning similarity engine."""
    return SimilarityEngine(SimilarityConfig(f=0.1, gamma=0.4))


@pytest.fixture()
def structure_engine():
    """A structure-only similarity engine."""
    return SimilarityEngine(SimilarityConfig(f=1.0, gamma=0.9))
