"""Parity, determinism and lifecycle tests for the ``sharded`` backend.

The sharded backend splits ``assign_all`` row blocks across worker
processes (each holding a cached per-process engine, see
``repro/network/mpengine.py``) and concatenates the per-block results in
block order.  Because every shard is evaluated by a bit-exact inner
backend, the sharded assignment -- and any clustering run on top of it --
must be *identical* to the serial ``python`` reference for every worker
count; these tests assert exactly that, plus deterministic repeat runs,
option parsing, executor cleanup and per-process engine-cache isolation.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import ClusteringConfig
from repro.core.cxkmeans import CXKMeans
from repro.core.seeding import select_seed_transactions
from repro.core.xkmeans import XKMeans
from repro.datasets.registry import get_dataset
from repro.network.mpengine import (
    _PROCESS_ENGINES,
    clear_process_engines,
    process_engine,
)
from repro.similarity.backend import (
    ShardedBackend,
    available_backends,
    create_backend,
    registered_backends,
)
from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.item import SimilarityConfig
from repro.similarity.transaction import SimilarityEngine


@pytest.fixture(autouse=True)
def isolated_process_engines():
    """Each test starts and ends with an empty per-process engine cache, so
    engines (and their compiled corpora) never leak between tests."""
    clear_process_engines()
    yield
    clear_process_engines()


@pytest.fixture(scope="module")
def dblp_small():
    return get_dataset("DBLP", scale=0.2, seed=0)


def make_engine(backend: str) -> SimilarityEngine:
    return SimilarityEngine(
        SimilarityConfig(f=0.5, gamma=0.8),
        cache=TagPathSimilarityCache(),
        backend=backend,
    )


# --------------------------------------------------------------------------- #
# Registry and option parsing
# --------------------------------------------------------------------------- #
class TestRegistration:
    def test_sharded_backend_is_registered_and_available(self):
        assert "sharded" in registered_backends()
        assert "sharded" in available_backends()

    def test_option_spec_selects_workers_and_inner_backend(self):
        engine = make_engine("python")
        backend = create_backend("sharded:3:python", engine)
        assert isinstance(backend, ShardedBackend)
        assert backend.workers == 3
        assert backend.inner_name == "python"

    def test_default_inner_backend_is_numpy_when_available(self):
        pytest.importorskip("numpy")
        backend = create_backend("sharded:2", make_engine("python"))
        assert backend.inner_name == "numpy"

    @pytest.mark.parametrize(
        "spec", ["sharded:0", "sharded:-1", "sharded:two", "sharded:2:sharded", "sharded:1:2:3"]
    )
    def test_invalid_option_specs_raise(self, spec):
        with pytest.raises(ValueError):
            create_backend(spec, make_engine("python"))

    def test_optionless_backends_reject_options(self):
        with pytest.raises(ValueError, match="accepts no options"):
            create_backend("python:2", make_engine("python"))


# --------------------------------------------------------------------------- #
# Assignment parity and determinism
# --------------------------------------------------------------------------- #
class TestAssignmentParity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_assign_all_matches_python_reference(self, dblp_small, workers):
        transactions = dblp_small.transactions
        representatives = select_seed_transactions(transactions, 4, random.Random(0))
        expected = make_engine("python").assign_all(transactions, representatives)
        engine = make_engine(f"sharded:{workers}")
        try:
            assert engine.assign_all(transactions, representatives) == expected
        finally:
            engine.backend.close()

    def test_assign_all_is_deterministic_across_repeat_calls(self, dblp_small):
        transactions = dblp_small.transactions
        representatives = select_seed_transactions(transactions, 5, random.Random(1))
        engine = make_engine("sharded:2")
        try:
            first = engine.assign_all(transactions, representatives)
            second = engine.assign_all(transactions, representatives)
        finally:
            engine.backend.close()
        assert first == second

    def test_python_inner_backend_parity(self, dblp_small):
        """Sharding over the reference inner backend changes nothing either."""
        transactions = dblp_small.transactions
        representatives = select_seed_transactions(transactions, 3, random.Random(2))
        expected = make_engine("python").assign_all(transactions, representatives)
        engine = make_engine("sharded:2:python")
        try:
            assert engine.assign_all(transactions, representatives) == expected
        finally:
            engine.backend.close()

    def test_no_representatives(self, dblp_small):
        engine = make_engine("sharded:2")
        transactions = dblp_small.transactions[:10]
        assert engine.assign_all(transactions, []) == [(-1, 0.0)] * 10
        assert engine.backend._executor is None  # nothing was dispatched

    def test_small_row_counts_stay_in_process(self, dblp_small):
        """Below MIN_SHARD_ROWS the inner backend answers directly; no pool
        is ever created."""
        transactions = dblp_small.transactions[: ShardedBackend.MIN_SHARD_ROWS - 1]
        representatives = transactions[:2]
        engine = make_engine("sharded:2")
        expected = make_engine("python").assign_all(transactions, representatives)
        assert engine.assign_all(transactions, representatives) == expected
        assert engine.backend._executor is None

    def test_row_blocks_cover_rows_in_order(self, dblp_small):
        backend = create_backend("sharded:4", make_engine("python"))
        transactions = list(dblp_small.transactions)
        blocks = backend._row_blocks(transactions)
        assert len(blocks) <= 4
        assert all(blocks)
        flattened = [transaction for block in blocks for transaction in block]
        assert flattened == transactions


# --------------------------------------------------------------------------- #
# Full-fit parity per seed
# --------------------------------------------------------------------------- #
class TestFitParity:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_cxkmeans_fit_matches_python_per_seed(self, dblp_small, workers):
        partitions = [dblp_small.transactions[0::2], dblp_small.transactions[1::2]]
        results = {}
        for backend in ("python", f"sharded:{workers}"):
            config = ClusteringConfig(
                k=3,
                similarity=SimilarityConfig(f=0.5, gamma=0.8),
                seed=3,
                max_iterations=4,
                backend=backend,
            )
            algorithm = CXKMeans(config)
            results[backend] = algorithm.fit(partitions)
            backend_object = algorithm.engine._backend
            if hasattr(backend_object, "close"):
                backend_object.close()
        sharded = results[f"sharded:{workers}"]
        assert sharded.partition() == results["python"].partition()
        representatives = [
            sorted((str(i.path), i.answer) for i in rep.items)
            for rep in sharded.representatives()
        ]
        expected = [
            sorted((str(i.path), i.answer) for i in rep.items)
            for rep in results["python"].representatives()
        ]
        assert representatives == expected

    @pytest.mark.parametrize("seed", [0, 5])
    def test_three_way_full_fit_parity(self, dblp_small, seed):
        """The acceptance bar: identical clusterings *and* representatives
        across python, numpy and sharded for the same seed."""
        partitions = [dblp_small.transactions[0::3], dblp_small.transactions[1::3], dblp_small.transactions[2::3]]
        results = {}
        for backend in ("python", "numpy", "sharded:2"):
            config = ClusteringConfig(
                k=3,
                similarity=SimilarityConfig(f=0.5, gamma=0.8),
                seed=seed,
                max_iterations=3,
                backend=backend,
            )
            algorithm = CXKMeans(config)
            result = algorithm.fit(partitions)
            backend_object = algorithm.engine._backend
            if hasattr(backend_object, "close"):
                backend_object.close()
            results[backend] = (
                result.partition(),
                [
                    sorted((str(i.path), i.answer) for i in rep.items)
                    for rep in result.representatives()
                ],
            )
        assert results["numpy"] == results["python"]
        assert results["sharded:2"] == results["python"]

    def test_xkmeans_fit_matches_python(self, dblp_small):
        results = {}
        for backend in ("python", "sharded:2"):
            config = ClusteringConfig(
                k=4,
                similarity=SimilarityConfig(f=0.5, gamma=0.8),
                seed=7,
                max_iterations=4,
                backend=backend,
            )
            algorithm = XKMeans(config)
            results[backend] = algorithm.fit(dblp_small.transactions)
            backend_object = algorithm.engine._backend
            if hasattr(backend_object, "close"):
                backend_object.close()
        assert results["sharded:2"].partition() == results["python"].partition()
        assert results["sharded:2"].iterations == results["python"].iterations


# --------------------------------------------------------------------------- #
# Executor lifecycle
# --------------------------------------------------------------------------- #
class TestExecutorLifecycle:
    def test_close_releases_the_pool_and_is_idempotent(self, dblp_small):
        engine = make_engine("sharded:2")
        transactions = dblp_small.transactions
        representatives = transactions[:3]
        engine.assign_all(transactions, representatives)
        assert engine.backend._executor is not None
        engine.backend.close()
        assert engine.backend._executor is None
        engine.backend.close()  # idempotent

    def test_backend_recovers_after_close(self, dblp_small):
        engine = make_engine("sharded:2")
        transactions = dblp_small.transactions
        representatives = transactions[:3]
        before = engine.assign_all(transactions, representatives)
        engine.backend.close()
        after = engine.assign_all(transactions, representatives)
        engine.backend.close()
        assert after == before

    def test_context_manager_closes_on_exit(self, dblp_small):
        engine = make_engine("python")
        with create_backend("sharded:2", engine) as backend:
            backend.assign_all(dblp_small.transactions, dblp_small.transactions[:2])
            assert backend._executor is not None
        assert backend._executor is None


# --------------------------------------------------------------------------- #
# Round payloads: representatives pickled once per dispatch, not per shard
# --------------------------------------------------------------------------- #
class TestRoundPayload:
    """Regression (PR 6): ``assign_all`` used to pickle the full
    representative set into *every* shard, so the bytes crossing the pool
    boundary scaled with ``k x workers`` per round.  The representatives
    are now published once per dispatch as a content-addressed tempfile
    payload; shards carry only a tiny ``PayloadRef``."""

    def test_shard_payload_size_does_not_scale_with_k(self, dblp_small):
        import pickle

        from repro.network.mpengine import (
            AssignmentShard,
            discard_round_payload,
            publish_round_payload,
        )

        transactions = dblp_small.transactions
        config = SimilarityConfig(f=0.5, gamma=0.8)
        rows = transactions[:8]
        sizes = {}
        for k in (2, 16):
            representatives = select_seed_transactions(
                transactions, k, random.Random(0)
            )
            ref = publish_round_payload(representatives)
            assert ref is not None
            try:
                shard = AssignmentShard(
                    transactions=rows,
                    representatives=None,
                    similarity=config,
                    backend="numpy",
                    representatives_ref=ref,
                )
                sizes[k] = len(pickle.dumps(shard))
            finally:
                discard_round_payload(ref)
        # 8x the representatives, same shard bytes (the ref is a fixed-size
        # path + digest): allow only incidental jitter, not k-scaling
        assert abs(sizes[16] - sizes[2]) < 128

    def test_published_payload_round_trips(self, dblp_small):
        from repro.network.mpengine import (
            discard_round_payload,
            load_round_payload,
            publish_round_payload,
        )

        representatives = dblp_small.transactions[:4]
        ref = publish_round_payload(representatives)
        assert ref is not None
        try:
            assert load_round_payload(ref) == representatives
        finally:
            discard_round_payload(ref)

    def test_tampered_payload_is_rejected(self, dblp_small, tmp_path):
        from repro.network.mpengine import (
            PayloadRef,
            discard_round_payload,
            publish_round_payload,
        )
        from repro.network.mpengine import load_round_payload

        ref = publish_round_payload(dblp_small.transactions[:2])
        assert ref is not None
        try:
            with open(ref.path, "wb") as handle:
                handle.write(b"garbage")
            with pytest.raises(RuntimeError):
                load_round_payload(PayloadRef(path=ref.path, digest=ref.digest))
        finally:
            discard_round_payload(ref)


# --------------------------------------------------------------------------- #
# Per-process engine cache isolation
# --------------------------------------------------------------------------- #
class TestProcessEngineIsolation:
    def test_process_engine_is_cached_per_config_and_backend(self):
        config = SimilarityConfig(f=0.5, gamma=0.8)
        first = process_engine(config, "python")
        assert process_engine(config, "python") is first
        assert process_engine(config, "numpy") is not first
        assert len(_PROCESS_ENGINES) == 2

    def test_clear_process_engines_empties_the_cache(self):
        process_engine(SimilarityConfig(f=0.5, gamma=0.8), "python")
        assert _PROCESS_ENGINES
        clear_process_engines()
        assert not _PROCESS_ENGINES

    def test_autouse_isolation_fixture_left_no_engines_behind(self):
        """Guards the autouse fixture: earlier tests must not leak cached
        engines into this one."""
        assert not _PROCESS_ENGINES
