"""Tests for the label alphabets (repro.xmlmodel.names)."""

import pytest

from repro.xmlmodel.errors import XMLTreeError
from repro.xmlmodel.names import (
    ATTRIBUTE_PREFIX,
    PCDATA,
    Label,
    LabelKind,
    attribute_label,
    is_attribute_label,
    is_tag_label,
    is_text_label,
    is_valid_name,
    label_kind,
    strip_attribute_prefix,
    validate_tag,
)


class TestNameValidation:
    def test_simple_names_are_valid(self):
        assert is_valid_name("author")
        assert is_valid_name("book-title")
        assert is_valid_name("x_1.y")
        assert is_valid_name("_private")

    def test_names_with_namespace_colon_are_valid(self):
        assert is_valid_name("dc:title")

    def test_invalid_names_are_rejected(self):
        assert not is_valid_name("1author")
        assert not is_valid_name("")
        assert not is_valid_name("two words")
        assert not is_valid_name("-leading")

    def test_validate_tag_accepts_regular_names(self):
        assert validate_tag("inproceedings") == "inproceedings"

    def test_validate_tag_rejects_reserved_s(self):
        with pytest.raises(XMLTreeError):
            validate_tag(PCDATA)

    def test_validate_tag_rejects_invalid_names(self):
        with pytest.raises(XMLTreeError):
            validate_tag("9lives")


class TestLabelClassification:
    def test_attribute_label_prefixes_name(self):
        assert attribute_label("key") == ATTRIBUTE_PREFIX + "key"

    def test_attribute_label_rejects_invalid_names(self):
        with pytest.raises(XMLTreeError):
            attribute_label("not valid")

    def test_is_attribute_label(self):
        assert is_attribute_label("@key")
        assert not is_attribute_label("key")

    def test_is_text_label_only_for_sentinel(self):
        assert is_text_label("S")
        assert not is_text_label("s")
        assert not is_text_label("@S")

    def test_is_tag_label_excludes_attributes_and_text(self):
        assert is_tag_label("title")
        assert not is_tag_label("@key")
        assert not is_tag_label("S")

    def test_label_kind_covers_all_three_kinds(self):
        assert label_kind("title") is LabelKind.TAG
        assert label_kind("@key") is LabelKind.ATTRIBUTE
        assert label_kind("S") is LabelKind.TEXT

    def test_strip_attribute_prefix(self):
        assert strip_attribute_prefix("@key") == "key"

    def test_strip_attribute_prefix_requires_attribute(self):
        with pytest.raises(XMLTreeError):
            strip_attribute_prefix("key")


class TestLabelValueObject:
    def test_tag_constructor(self):
        label = Label.tag("author")
        assert label.value == "author"
        assert label.kind is LabelKind.TAG

    def test_attribute_constructor(self):
        label = Label.attribute("key")
        assert label.value == "@key"
        assert label.kind is LabelKind.ATTRIBUTE

    def test_text_constructor(self):
        label = Label.text()
        assert label.value == "S"
        assert label.kind is LabelKind.TEXT

    def test_of_infers_kind(self):
        assert Label.of("@id").kind is LabelKind.ATTRIBUTE
        assert Label.of("S").kind is LabelKind.TEXT
        assert Label.of("title").kind is LabelKind.TAG

    def test_labels_are_hashable_value_objects(self):
        assert Label.tag("a") == Label.tag("a")
        assert len({Label.tag("a"), Label.tag("a"), Label.tag("b")}) == 2
