"""Tests for transactions and the dataset builder (repro.transactions)."""

import pytest

from repro.transactions.builder import BuilderConfig, TransactionDatasetBuilder, build_dataset
from repro.transactions.items import make_synthetic_item
from repro.transactions.transaction import Transaction, make_transaction, union_size
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.paths import XMLPath


class TestTransactionObject:
    def test_make_transaction_sorts_items_by_path(self):
        items = [
            make_synthetic_item(XMLPath.parse("z.b.S"), "2"),
            make_synthetic_item(XMLPath.parse("a.b.S"), "1"),
        ]
        transaction = make_transaction("t", items)
        assert [str(item.path) for item in transaction.items] == ["a.b.S", "z.b.S"]

    def test_container_protocol(self):
        item = make_synthetic_item(XMLPath.parse("a.b.S"), "1")
        transaction = make_transaction("t", [item])
        assert len(transaction) == 1
        assert item in transaction
        assert list(transaction) == [item]
        assert not transaction.is_empty()
        assert Transaction("empty", ()).is_empty()

    def test_paths_and_tag_paths(self):
        transaction = make_transaction(
            "t",
            [
                make_synthetic_item(XMLPath.parse("a.b.S"), "1"),
                make_synthetic_item(XMLPath.parse("a.@id"), "2"),
            ],
        )
        assert transaction.paths() == {XMLPath.parse("a.b.S"), XMLPath.parse("a.@id")}
        assert transaction.tag_paths() == {XMLPath.parse("a.b"), XMLPath.parse("a")}

    def test_find_by_path(self):
        item = make_synthetic_item(XMLPath.parse("a.b.S"), "1")
        transaction = make_transaction("t", [item])
        assert transaction.find_by_path(XMLPath.parse("a.b.S")) == [item]
        assert transaction.find_by_path(XMLPath.parse("a.c.S")) == []

    def test_union_size_merges_equal_items(self):
        shared = make_synthetic_item(XMLPath.parse("a.b.S"), "same")
        only_first = make_synthetic_item(XMLPath.parse("a.c.S"), "x")
        only_second = make_synthetic_item(XMLPath.parse("a.d.S"), "y")
        tr1 = make_transaction("t1", [shared, only_first])
        tr2 = make_transaction("t2", [shared, only_second])
        assert union_size(tr1, tr2) == 3

    def test_with_items_keeps_metadata(self):
        transaction = make_transaction("t", [], doc_id="d", tuple_id="tt")
        updated = transaction.with_items([make_synthetic_item(XMLPath.parse("a.S"), "1")])
        assert updated.doc_id == "d" and updated.tuple_id == "tt"
        assert len(updated) == 1


class TestBuilderOnPaperExample:
    def test_transaction_and_item_counts_match_figure4(self, paper_tree):
        dataset = build_dataset("paper", [paper_tree])
        # Fig. 4(c): three transactions of six items each over eleven items
        assert len(dataset) == 3
        assert all(len(transaction) == 6 for transaction in dataset)
        assert dataset.item_count() == 11

    def test_shared_items_have_same_identity(self, paper_tree):
        dataset = build_dataset("paper", [paper_tree])
        booktitle = XMLPath.parse("dblp.inproceedings.booktitle.S")
        ids = {
            transaction.find_by_path(booktitle)[0].item_id for transaction in dataset
        }
        # item e5 ('KDD') is shared by all three transactions
        assert len(ids) == 1

    def test_distinct_answers_get_distinct_items(self, paper_tree):
        dataset = build_dataset("paper", [paper_tree])
        author = XMLPath.parse("dblp.inproceedings.author.S")
        answers = {
            transaction.find_by_path(author)[0].answer for transaction in dataset
        }
        assert answers == {"M.J. Zaki", "C.C. Aggarwal"}

    def test_transaction_provenance(self, paper_tree):
        dataset = build_dataset("paper", [paper_tree])
        assert {transaction.doc_id for transaction in dataset} == {"dblp-example"}
        assert all(
            transaction.transaction_id == transaction.tuple_id for transaction in dataset
        )

    def test_summary_figures(self, paper_tree):
        dataset = build_dataset("paper", [paper_tree])
        summary = dataset.summary()
        assert summary["documents"] == 1
        assert summary["transactions"] == 3
        assert summary["distinct_items"] == 11
        assert summary["max_transaction_length"] == 6
        assert summary["vocabulary"] > 0


class TestBuilderBehaviour:
    def test_doc_labels_are_projected_onto_transactions(self, mini_corpus):
        trees, labels = mini_corpus
        dataset = build_dataset("mini", trees, doc_labels=labels)
        content = dataset.labels_for("content")
        assert set(content) == {t.transaction_id for t in dataset}
        sample = dataset.transactions[0]
        assert content[sample.transaction_id] == labels["content"][sample.doc_id]

    def test_class_count_helpers(self, mini_dataset):
        assert mini_dataset.class_count("content") == 2
        assert mini_dataset.class_count("structure") == 2
        assert mini_dataset.class_count("hybrid") == 4
        assert mini_dataset.classes_for("content") == ["db", "ml"]

    def test_items_carry_ttf_itf_vectors(self, mini_dataset):
        vectored = [
            item
            for transaction in mini_dataset
            for item in transaction.items
            if len(item.vector) > 0
        ]
        assert vectored, "at least some items must have non-empty TCU vectors"

    def test_shared_item_vector_is_average_of_occurrences(self):
        # the same (path, answer) appears in two documents with different
        # ttf.itf contexts; the stored vector must be the occurrence average
        xml_a = "<r><t>alpha beta</t><u>gamma</u></r>"
        xml_b = "<r><t>alpha beta</t><u>delta epsilon zeta</u></r>"
        dataset = build_dataset(
            "shared", [parse_xml(xml_a, doc_id="a"), parse_xml(xml_b, doc_id="b")]
        )
        path = XMLPath.parse("r.t.S")
        item = dataset.item_domain.find(path, "alpha beta")
        assert item is not None
        assert len(dataset.transactions) == 2
        # both transactions reference the same averaged item object
        for transaction in dataset:
            assert transaction.find_by_path(path)[0] is dataset.item_domain.get(item.item_id)

    def test_max_tuples_per_document_limit(self):
        xml = "<r>" + "".join(f"<a>v{i}</a>" for i in range(5)) + "".join(
            f"<b>w{i}</b>" for i in range(5)
        ) + "</r>"
        config = BuilderConfig(max_tuples_per_document=4)
        dataset = TransactionDatasetBuilder("limited", config).build(
            [parse_xml(xml, doc_id="big")]
        )
        assert len(dataset) == 4

    def test_empty_transactions_are_dropped_by_default(self):
        # a document whose only leaves produce no index terms (pure numbers)
        dataset = build_dataset("empty", [parse_xml("<r><n>123</n></r>", doc_id="d")])
        assert len(dataset) == 1  # transaction kept: it still has the item
        # but a truly leafless document cannot exist (parser requires content)

    def test_subset_view_shares_domain(self, mini_dataset):
        ids = [t.transaction_id for t in mini_dataset.transactions[:3]]
        subset = mini_dataset.subset(ids)
        assert len(subset) == 3
        assert subset.item_domain is mini_dataset.item_domain
        assert subset.labelings is mini_dataset.labelings

    def test_split_wraps_chunks(self, mini_dataset):
        chunks = [mini_dataset.transactions[:2], mini_dataset.transactions[2:5]]
        parts = mini_dataset.split(chunks)
        assert [len(p) for p in parts] == [2, 3]
        assert parts[0].statistics is mini_dataset.statistics

    def test_document_ids_order(self, mini_dataset):
        doc_ids = mini_dataset.document_ids()
        assert doc_ids[0] == "doc000"
        assert len(doc_ids) == 16
