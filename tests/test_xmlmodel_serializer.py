"""Tests for XML serialisation (repro.xmlmodel.serializer)."""

from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serializer import (
    escape_attribute,
    escape_text,
    serialize,
    to_compact_string,
)
from repro.xmlmodel.tree import tree_from_nested


class TestEscaping:
    def test_text_escaping(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_attribute_escaping_also_quotes(self):
        assert escape_attribute('say "hi" & <bye>') == "say &quot;hi&quot; &amp; &lt;bye&gt;"


class TestSerialize:
    def test_declaration_is_emitted_by_default(self):
        tree = tree_from_nested(["a", "x"])
        assert serialize(tree).startswith('<?xml version="1.0"')

    def test_declaration_can_be_suppressed(self):
        tree = tree_from_nested(["a", "x"])
        assert serialize(tree, xml_declaration=False).startswith("<a>")

    def test_empty_element_is_self_closed(self):
        tree = parse_xml("<root><empty/></root>")
        assert "<empty/>" in serialize(tree)

    def test_attributes_are_rendered_inline(self):
        tree = parse_xml('<paper key="k1"><title>T</title></paper>')
        text = serialize(tree)
        assert '<paper key="k1">' in text
        assert "<title>T</title>" in text

    def test_special_characters_survive_round_trip(self):
        tree = parse_xml('<a note="x &amp; y"><t>1 &lt; 2</t></a>')
        assert parse_xml(serialize(tree)) == tree

    def test_indentation_levels(self):
        tree = parse_xml("<a><b><c>x</c></b></a>")
        lines = serialize(tree, indent=2, xml_declaration=False).splitlines()
        assert lines[0] == "<a>"
        assert lines[1].startswith("  <b>")
        assert lines[2].startswith("    <c>")


class TestCompactString:
    def test_compact_has_no_newlines(self):
        tree = parse_xml("<a><b>x</b><c>y</c></a>")
        compact = to_compact_string(tree)
        assert "\n" not in compact
        assert compact == "<a><b>x</b><c>y</c></a>"

    def test_compact_round_trip(self, paper_tree):
        assert parse_xml(to_compact_string(paper_tree)) == paper_tree

    def test_mixed_content_round_trip(self):
        tree = parse_xml("<p>before <b>bold</b> after</p>")
        assert parse_xml(to_compact_string(tree)) == tree
