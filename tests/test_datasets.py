"""Tests for the synthetic corpus generators and the registry."""

import pytest

from repro.datasets.corpus import FILLER_WORDS, TOPICS, topic_names, vocabulary_for
from repro.datasets.dblp import DBLP_HYBRID_COMBOS, DBLP_TOPICS, generate_dblp
from repro.datasets.generator import SyntheticCorpus, TextSampler, spread_classes
from repro.datasets.ieee import IEEE_HYBRID_COMBOS, generate_ieee
from repro.datasets.registry import (
    DATASET_NAMES,
    cluster_count,
    get_corpus,
    get_dataset,
    profile,
)
from repro.datasets.shakespeare import PLAYS, generate_shakespeare
from repro.datasets.wikipedia import WIKIPEDIA_TOPICS, generate_wikipedia
from repro.treetuples.decompose import count_tree_tuples
import random


class TestCorpusVocabularies:
    def test_every_topic_has_a_reasonable_vocabulary(self):
        for name in topic_names():
            words = vocabulary_for(name)
            assert len(words) >= 15
            assert len(set(words)) == len(words), f"duplicate words in {name}"

    def test_topics_do_not_share_too_many_words(self):
        ai = set(TOPICS["artificial_intelligence"])
        security = set(TOPICS["security"])
        assert len(ai & security) <= 3

    def test_filler_words_are_disjoint_from_most_topic_words(self):
        filler = set(FILLER_WORDS)
        overlapping = sum(1 for name in topic_names() if filler & set(TOPICS[name]))
        assert overlapping <= 3


class TestTextSampler:
    def test_topic_ratio_bounds_are_enforced(self):
        with pytest.raises(ValueError):
            TextSampler(random.Random(0), topic_ratio=1.5)

    def test_words_are_drawn_from_topic_and_filler(self):
        sampler = TextSampler(random.Random(0), topic_ratio=1.0)
        words = sampler.words("security", 20)
        assert all(word in TOPICS["security"] for word in words)

    def test_title_and_paragraph_lengths(self):
        sampler = TextSampler(random.Random(0))
        assert 4 <= len(sampler.title("security").split()) <= 9
        assert 20 <= len(sampler.paragraph("security").split()) <= 60

    def test_person_name_and_year(self):
        sampler = TextSampler(random.Random(0))
        assert len(sampler.person_name().split()) == 2
        assert 1995 <= int(sampler.year()) <= 2009

    def test_spread_classes_is_balanced(self):
        assigned = spread_classes(30, ["a", "b", "c"], random.Random(0))
        assert assigned.count("a") == assigned.count("b") == assigned.count("c") == 10


class TestDBLP:
    def test_profile_counts(self):
        corpus = generate_dblp(num_documents=64, seed=1)
        assert corpus.document_count() == 64
        assert corpus.class_counts == {"structure": 4, "content": 6, "hybrid": 16}
        assert set(corpus.doc_labels) == {"structure", "content", "hybrid"}

    def test_structural_category_matches_record_element(self):
        corpus = generate_dblp(num_documents=32, seed=2)
        for tree in corpus.trees:
            category = corpus.doc_labels["structure"][tree.doc_id]
            assert tree.root.label == "dblp"
            assert tree.root.children[0].label == category

    def test_hybrid_labels_are_consistent(self):
        corpus = generate_dblp(num_documents=32, seed=3)
        for doc_id, hybrid in corpus.doc_labels["hybrid"].items():
            category, topic = hybrid.split("|")
            assert corpus.doc_labels["structure"][doc_id] == category
            assert corpus.doc_labels["content"][doc_id] == topic
            assert (category, topic) in DBLP_HYBRID_COMBOS

    def test_topics_are_from_the_dblp_set(self):
        corpus = generate_dblp(num_documents=48, seed=4)
        assert set(corpus.doc_labels["content"].values()) <= set(DBLP_TOPICS)

    def test_generation_is_deterministic(self):
        first = generate_dblp(num_documents=20, seed=7)
        second = generate_dblp(num_documents=20, seed=7)
        assert [t.structure_signature() for t in first.trees] == [
            t.structure_signature() for t in second.trees
        ]

    def test_transactions_roughly_double_documents(self):
        # 1-3 authors per record => tuples per document in [1, 3]
        corpus = generate_dblp(num_documents=40, seed=5)
        dataset = corpus.to_dataset()
        assert 40 <= len(dataset) <= 120


class TestIEEE:
    def test_profile_counts(self):
        corpus = generate_ieee(num_documents=28, seed=1)
        assert corpus.class_counts == {"structure": 2, "content": 8, "hybrid": 14}
        assert len(IEEE_HYBRID_COMBOS) == 14

    def test_transactions_articles_have_front_and_back_matter(self):
        corpus = generate_ieee(num_documents=28, seed=2)
        for tree in corpus.trees:
            category = corpus.doc_labels["structure"][tree.doc_id]
            child_labels = {c.label for c in tree.root.children}
            if category == "transactions":
                assert {"fm", "bdy", "bm"} <= child_labels
            else:
                assert "hdr" in child_labels
                assert "bm" not in child_labels

    def test_documents_decompose_into_multiple_tuples(self):
        corpus = generate_ieee(num_documents=14, seed=3)
        per_doc = [count_tree_tuples(tree) for tree in corpus.trees]
        # transactions articles repeat authors, sections and references, so
        # the corpus-level transactions-per-document ratio stays well above 1
        assert sum(per_doc) / len(per_doc) >= 2
        assert max(per_doc) >= 4


class TestShakespeare:
    def test_seven_plays_and_class_structure(self):
        corpus = generate_shakespeare(seed=0)
        assert corpus.document_count() == 7
        assert corpus.class_counts["content"] == 5
        assert corpus.class_counts["structure"] == 3
        assert {doc for doc, _, _ in PLAYS} == set(corpus.doc_labels["content"])

    def test_structural_markers_follow_the_class(self):
        corpus = generate_shakespeare(seed=1)
        for tree in corpus.trees:
            structure_class = corpus.doc_labels["structure"][tree.doc_id]
            labels = {node.label for node in tree.iter_nodes()}
            if structure_class == "pgroup":
                assert "pgroup" in labels
            elif structure_class == "prologue":
                assert "prologue" in labels
            else:
                assert "epilogue" in labels and "pgroup" not in labels

    def test_size_knobs_scale_the_tuple_count(self):
        small = generate_shakespeare(seed=0, acts=1, scenes_per_act=1, speeches_per_scene=2, personas=2)
        large = generate_shakespeare(seed=0, acts=2, scenes_per_act=2, speeches_per_scene=3, personas=3)
        small_tuples = sum(count_tree_tuples(t) for t in small.trees)
        large_tuples = sum(count_tree_tuples(t) for t in large.trees)
        assert large_tuples > small_tuples


class TestWikipedia:
    def test_21_categories(self):
        assert len(WIKIPEDIA_TOPICS) == 21
        corpus = generate_wikipedia(num_documents=42, seed=0)
        assert corpus.class_counts["content"] == 21
        assert corpus.class_counts["structure"] == 1

    def test_structure_is_homogeneous(self):
        corpus = generate_wikipedia(num_documents=21, seed=1)
        signatures = {tuple(sorted({n.label for n in t.iter_nodes()})) for t in corpus.trees}
        assert len(signatures) == 1

    def test_topic_restriction(self):
        corpus = generate_wikipedia(num_documents=10, seed=2, topics=["music", "sports"])
        assert set(corpus.doc_labels["content"].values()) <= {"music", "sports"}


class TestHalving:
    def test_halved_corpus_keeps_half_the_documents(self):
        corpus = generate_dblp(num_documents=40, seed=0)
        half = corpus.halved(seed=1)
        assert half.document_count() == 20
        assert half.name.endswith("-half")
        kept = {t.doc_id for t in half.trees}
        assert set(half.doc_labels["content"]) == kept


class TestRegistry:
    def test_all_four_corpora_are_registered(self):
        assert DATASET_NAMES == ["DBLP", "IEEE", "Shakespeare", "Wikipedia"]
        for name in DATASET_NAMES:
            assert profile(name).name == name

    def test_lookup_is_case_insensitive(self):
        assert profile("dblp").name == "DBLP"
        assert cluster_count("ieee", "content") == 8

    def test_unknown_corpus_raises(self):
        with pytest.raises(KeyError):
            profile("unknown")

    def test_cluster_counts_match_the_paper(self):
        assert cluster_count("DBLP", "content") == 6
        assert cluster_count("DBLP", "hybrid") == 16
        assert cluster_count("DBLP", "structure") == 4
        assert cluster_count("IEEE", "structure/content") == 14
        assert cluster_count("Shakespeare", "structure") == 3
        assert cluster_count("Wikipedia", "content") == 21

    def test_unknown_goal_raises(self):
        with pytest.raises(KeyError):
            cluster_count("DBLP", "nonsense")

    def test_scale_changes_corpus_size(self):
        small = get_corpus("DBLP", scale=0.25, seed=0)
        full = get_corpus("DBLP", scale=1.0, seed=0)
        assert small.document_count() < full.document_count()

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            get_corpus("DBLP", scale=0.0)

    def test_get_dataset_attaches_labelings(self):
        dataset = get_dataset("DBLP", scale=0.2, seed=0)
        assert {"content", "structure", "hybrid"} <= set(dataset.labelings)
        assert len(dataset) > 0

    def test_shakespeare_scaling_goes_through_play_size(self):
        small = get_corpus("Shakespeare", scale=1.0, seed=0)
        large = get_corpus("Shakespeare", scale=2.0, seed=0)
        small_tuples = sum(count_tree_tuples(t) for t in small.trees)
        large_tuples = sum(count_tree_tuples(t) for t in large.trees)
        assert large_tuples > small_tuples
