"""Parity and behaviour tests for the pluggable similarity backends.

The numpy batch backend is designed to be *bit-exact* with the python
reference (see ``repro/similarity/backend.py``); these tests assert exact
(``==``) equality of item similarities, gamma-shared sets, transaction
similarities, batched blocks, bulk assignments and complete clustering
results -- not approximate agreement -- across hand-built edge cases,
property-based random transactions and the synthetic generator corpora.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ClusteringConfig
from repro.core.cxkmeans import CXKMeans
from repro.core.seeding import select_seed_transactions
from repro.core.xkmeans import XKMeans
from repro.datasets.registry import get_dataset
from repro.experiments.runner import precompute_similarity, run_configuration
from repro.similarity.backend import (
    BackendUnavailableError,
    NumpyBackend,
    PythonBackend,
    available_backends,
    create_backend,
    register_backend,
    registered_backends,
)
from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.item import SimilarityConfig
from repro.similarity.transaction import SimilarityEngine
from repro.text.vector import SparseVector
from repro.transactions.items import make_synthetic_item
from repro.transactions.transaction import make_transaction
from repro.xmlmodel.paths import XMLPath

numpy = pytest.importorskip("numpy")


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def item(path: str, answer: str, vector=None):
    return make_synthetic_item(XMLPath.parse(path), answer, vector=vector)


def engines(f: float = 0.5, gamma: float = 0.8):
    """One python and one numpy engine sharing nothing but the config."""
    config = SimilarityConfig(f=f, gamma=gamma)
    return (
        SimilarityEngine(config, cache=TagPathSimilarityCache(), backend="python"),
        SimilarityEngine(config, cache=TagPathSimilarityCache(), backend="numpy"),
    )


#: Small alphabet so random transactions overlap structurally and textually.
_TAGS = ["a", "b", "c"]
_TERMS = [1, 2, 3, 4]


@st.composite
def transactions_strategy(draw, max_items: int = 5):
    """Random transaction: random paths, vectors and occasional empty TCUs."""
    count = draw(st.integers(min_value=0, max_value=max_items))
    items = []
    for index in range(count):
        depth = draw(st.integers(min_value=1, max_value=3))
        steps = [draw(st.sampled_from(_TAGS)) for _ in range(depth)] + ["S"]
        if draw(st.booleans()):
            weights = {
                term: draw(st.floats(min_value=0.25, max_value=2.0))
                for term in draw(
                    st.sets(st.sampled_from(_TERMS), min_size=1, max_size=3)
                )
            }
            vector = SparseVector(weights)
        else:
            vector = None  # empty TCU: content falls back to answer equality
        answer = draw(st.sampled_from(["alpha", "beta", "gamma delta", "42"]))
        items.append(
            make_synthetic_item(XMLPath(tuple(steps)), answer, vector=vector)
        )
    return make_transaction(f"tr{draw(st.integers(0, 10_000))}", items)


_CONFIGS = st.tuples(
    st.sampled_from([0.0, 0.2, 0.5, 0.8, 1.0]),
    st.sampled_from([0.0, 0.5, 0.8, 1.0]),
)


# --------------------------------------------------------------------------- #
# Registry behaviour
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_both_builtin_backends_are_registered(self):
        assert {"python", "numpy"} <= set(registered_backends())

    def test_available_backends_include_numpy_when_importable(self):
        assert "numpy" in available_backends()

    def test_unknown_backend_raises_with_alternatives(self):
        engine = SimilarityEngine(SimilarityConfig())
        with pytest.raises(ValueError, match="unknown similarity backend"):
            create_backend("cuda", engine)

    def test_engine_creates_backend_lazily_by_name(self):
        engine = SimilarityEngine(SimilarityConfig(), backend="numpy")
        assert engine._backend is None
        assert isinstance(engine.backend, NumpyBackend)
        engine = SimilarityEngine(SimilarityConfig())
        assert isinstance(engine.backend, PythonBackend)

    def test_custom_backend_can_be_registered(self):
        class Recording(PythonBackend):
            name = "recording"

        register_backend("recording", Recording)
        try:
            engine = SimilarityEngine(SimilarityConfig(), backend="recording")
            assert isinstance(engine.backend, Recording)
        finally:
            from repro.similarity import backend as backend_module

            backend_module._REGISTRY.pop("recording", None)

    def test_backend_unavailable_error_is_runtime_error(self):
        assert issubclass(BackendUnavailableError, RuntimeError)


# --------------------------------------------------------------------------- #
# Hand-built edge cases
# --------------------------------------------------------------------------- #
class TestEdgeCaseParity:
    def edge_transactions(self):
        shared = item("r.a.S", "shared", SparseVector({1: 1.0}))
        near_1 = item("r.b.S", "near one", SparseVector({2: 1.0, 3: 1.0}))
        near_2 = item("r.b.S", "near two", SparseVector({2: 1.0, 4: 1.0}))
        empty_tcu_1 = item("r.c.S", "1999")
        empty_tcu_2 = item("r.c.S", "2001")
        return [
            make_transaction("t1", [shared, near_1, empty_tcu_1]),
            make_transaction("t2", [shared, near_2, empty_tcu_2]),
            make_transaction("t3", [near_2, empty_tcu_1]),
            make_transaction("empty", []),
        ]

    @pytest.mark.parametrize("f", [0.0, 0.5, 1.0])
    @pytest.mark.parametrize("gamma", [0.0, 0.8, 1.0])
    def test_pairwise_parity_on_edge_cases(self, f, gamma):
        python_engine, numpy_engine = engines(f=f, gamma=gamma)
        transactions = self.edge_transactions()
        expected = python_engine.pairwise_transaction_similarity(
            transactions, transactions
        )
        actual = numpy_engine.pairwise_transaction_similarity(
            transactions, transactions
        )
        assert actual == expected  # exact, not approximate

    @pytest.mark.parametrize("f", [0.0, 0.5, 1.0])
    def test_gamma_shared_items_parity_on_edge_cases(self, f):
        python_engine, numpy_engine = engines(f=f, gamma=0.7)
        transactions = self.edge_transactions()
        for first in transactions:
            for second in transactions:
                assert numpy_engine.backend.gamma_shared_items(
                    first, second
                ) == python_engine.gamma_shared_items(first, second)

    def test_item_similarity_parity_on_edge_cases(self):
        python_engine, numpy_engine = engines(f=0.5, gamma=0.8)
        items = [entry for tr in self.edge_transactions() for entry in tr.items]
        for first in items:
            for second in items:
                assert numpy_engine.backend.item_similarity(
                    first, second
                ) == python_engine.item_similarity(first, second)

    def test_all_trash_corpus(self):
        """Disjoint transactions: zero similarity, everything assigned 0/0.0."""
        python_engine, numpy_engine = engines(f=0.5, gamma=0.8)
        transactions = [
            make_transaction("a", [item("x.p.S", "one", SparseVector({1: 1.0}))]),
            make_transaction("b", [item("y.q.S", "two", SparseVector({2: 1.0}))]),
        ]
        representatives = [
            make_transaction("r", [item("z.z.S", "other", SparseVector({9: 1.0}))])
        ]
        expected = python_engine.assign_all(transactions, representatives)
        assert numpy_engine.assign_all(transactions, representatives) == expected
        assert all(similarity == 0.0 for _, similarity in expected)

    def test_assign_all_with_no_representatives(self):
        python_engine, numpy_engine = engines()
        transactions = self.edge_transactions()
        expected = python_engine.assign_all(transactions, [])
        assert expected == [(-1, 0.0)] * len(transactions)
        assert numpy_engine.assign_all(transactions, []) == expected


# --------------------------------------------------------------------------- #
# Property-based parity
# --------------------------------------------------------------------------- #
class TestPropertyParity:
    @settings(max_examples=40, deadline=None)
    @given(
        tr1=transactions_strategy(),
        tr2=transactions_strategy(),
        config=_CONFIGS,
    )
    def test_transaction_similarity_and_shared_items_parity(self, tr1, tr2, config):
        f, gamma = config
        python_engine, numpy_engine = engines(f=f, gamma=gamma)
        assert numpy_engine.backend.transaction_similarity(
            tr1, tr2
        ) == python_engine.transaction_similarity(tr1, tr2)
        assert numpy_engine.backend.gamma_shared_items(
            tr1, tr2
        ) == python_engine.gamma_shared_items(tr1, tr2)

    @settings(max_examples=25, deadline=None)
    @given(
        transactions=st.lists(transactions_strategy(), min_size=1, max_size=6),
        representatives=st.lists(transactions_strategy(), min_size=1, max_size=3),
        config=_CONFIGS,
    )
    def test_assign_all_parity(self, transactions, representatives, config):
        f, gamma = config
        python_engine, numpy_engine = engines(f=f, gamma=gamma)
        assert numpy_engine.assign_all(
            transactions, representatives
        ) == python_engine.assign_all(transactions, representatives)

    @settings(max_examples=25, deadline=None)
    @given(
        tr1=transactions_strategy(),
        tr2=transactions_strategy(),
        config=_CONFIGS,
    )
    def test_item_similarity_parity(self, tr1, tr2, config):
        f, gamma = config
        python_engine, numpy_engine = engines(f=f, gamma=gamma)
        for first in tr1.items:
            for second in tr2.items:
                assert numpy_engine.backend.item_similarity(
                    first, second
                ) == python_engine.item_similarity(first, second)


# --------------------------------------------------------------------------- #
# Corpus-level parity (generator corpora)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def dblp_small():
    return get_dataset("DBLP", scale=0.2, seed=0)


class TestCorpusParity:
    def test_assign_all_parity_on_generator_corpus(self, dblp_small):
        python_engine, numpy_engine = engines(f=0.5, gamma=0.8)
        transactions = dblp_small.transactions
        numpy_engine.backend.compile_corpus(transactions)
        representatives = select_seed_transactions(
            transactions, 5, random.Random(0)
        )
        assert numpy_engine.assign_all(
            transactions, representatives
        ) == python_engine.assign_all(transactions, representatives)

    @pytest.mark.parametrize("f", [0.2, 0.5, 0.9])
    def test_pairwise_block_parity_on_generator_corpus(self, dblp_small, f):
        python_engine, numpy_engine = engines(f=f, gamma=0.8)
        rows = dblp_small.transactions[:12]
        columns = dblp_small.transactions[12:18]
        assert numpy_engine.pairwise_transaction_similarity(
            rows, columns
        ) == python_engine.pairwise_transaction_similarity(rows, columns)

    def test_xkmeans_fit_parity_same_seed(self, dblp_small):
        """Same seed -> identical clustering under either backend."""
        results = {}
        for backend in ("python", "numpy"):
            config = ClusteringConfig(
                k=4,
                similarity=SimilarityConfig(f=0.5, gamma=0.8),
                seed=7,
                max_iterations=5,
                backend=backend,
            )
            results[backend] = XKMeans(config).fit(dblp_small.transactions)
        assert results["python"].partition() == results["numpy"].partition()
        assert results["python"].iterations == results["numpy"].iterations
        representatives_python = [
            sorted((str(i.path), i.answer) for i in rep.items)
            for rep in results["python"].representatives()
        ]
        representatives_numpy = [
            sorted((str(i.path), i.answer) for i in rep.items)
            for rep in results["numpy"].representatives()
        ]
        assert representatives_python == representatives_numpy

    def test_cxkmeans_fit_parity_same_seed(self, dblp_small):
        results = {}
        partitions = [
            dblp_small.transactions[0::2],
            dblp_small.transactions[1::2],
        ]
        for backend in ("python", "numpy"):
            config = ClusteringConfig(
                k=3,
                similarity=SimilarityConfig(f=0.5, gamma=0.8),
                seed=3,
                max_iterations=4,
                backend=backend,
            )
            results[backend] = CXKMeans(config).fit(partitions)
        assert results["python"].partition() == results["numpy"].partition()


# --------------------------------------------------------------------------- #
# Engine-level behaviour added with the backend refactor
# --------------------------------------------------------------------------- #
class TestEngineBehaviour:
    def test_nearest_representative_breaks_ties_to_lowest_index(self):
        """The documented deterministic rule: equal similarity -> lowest index."""
        target = make_transaction(
            "t", [item("r.a.S", "x", SparseVector({1: 1.0}))]
        )
        twin_a = make_transaction(
            "rep-a", [item("r.a.S", "x", SparseVector({1: 1.0}))]
        )
        twin_b = make_transaction(
            "rep-b", [item("r.a.S", "x", SparseVector({1: 1.0}))]
        )
        for backend in ("python", "numpy"):
            engine = SimilarityEngine(
                SimilarityConfig(f=0.5, gamma=0.5), backend=backend
            )
            index, similarity = engine.backend.nearest_representative(
                target, [twin_a, twin_b]
            )
            assert index == 0
            assert similarity == 1.0

    def test_similarity_matrix_diagonal_is_set_directly(self):
        """Non-empty transactions get 1.0, empty ones 0.0, without a full
        self-similarity computation."""
        engine = SimilarityEngine(SimilarityConfig(f=0.5, gamma=0.8))
        transactions = [
            make_transaction("t1", [item("r.a.S", "x", SparseVector({1: 1.0}))]),
            make_transaction("empty", []),
        ]
        calls = []
        original = engine.transaction_similarity

        def counting(tr1, tr2):
            calls.append((tr1.transaction_id, tr2.transaction_id))
            return original(tr1, tr2)

        engine.transaction_similarity = counting  # type: ignore[method-assign]
        matrix = engine.similarity_matrix(transactions)
        assert matrix[0][0] == 1.0
        assert matrix[1][1] == 0.0
        assert ("t1", "t1") not in calls and ("empty", "empty") not in calls

    def test_compile_corpus_is_idempotent_and_counts(self, dblp_small):
        engine = SimilarityEngine(SimilarityConfig(), backend="numpy")
        transactions = dblp_small.transactions[:10]
        assert engine.backend.compile_corpus(transactions) == 10
        assert engine.backend.compile_corpus(transactions) == 0

    def test_python_backend_compile_corpus_is_noop(self):
        engine = SimilarityEngine(SimilarityConfig(), backend="python")
        assert engine.backend.compile_corpus([]) == 0


# --------------------------------------------------------------------------- #
# Experiment wiring (Sec. 4.3.2 precomputation)
# --------------------------------------------------------------------------- #
class TestExperimentWiring:
    def test_precompute_similarity_fills_cache_before_fit(self, dblp_small):
        config = ClusteringConfig(
            k=3,
            similarity=SimilarityConfig(f=0.5, gamma=0.8),
            seed=0,
            max_iterations=3,
            backend="numpy",
        )
        algorithm = XKMeans(config)
        status = precompute_similarity(algorithm, dblp_small.transactions)
        assert status["store"] == "off"
        assert status["compiled"] == len(dblp_small.transactions)
        assert algorithm.engine.cache.stats()["entries"] > 0
        algorithm.fit(dblp_small.transactions)
        # up-front precomputation means the clustering itself never misses
        assert algorithm.engine.cache.stats()["misses"] == 0

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_run_configuration_reports_backend_and_cache_stats(
        self, dblp_small, backend
    ):
        record = run_configuration(
            dblp_small,
            goal="hybrid",
            nodes=1,
            f=0.5,
            gamma=0.8,
            seed=0,
            algorithm="xk",
            k=3,
            max_iterations=3,
            backend=backend,
        )
        assert record.backend == backend
        assert record.cache_stats["entries"] > 0
        assert record.cache_stats["misses"] == 0
        assert "cache_stats" in record.as_dict()

    def test_run_configuration_results_identical_across_backends(self, dblp_small):
        records = {
            backend: run_configuration(
                dblp_small,
                goal="hybrid",
                nodes=3,
                f=0.5,
                gamma=0.8,
                seed=1,
                algorithm="cxk",
                k=3,
                max_iterations=3,
                backend=backend,
            )
            for backend in ("python", "numpy")
        }
        assert records["python"].f_measure == records["numpy"].f_measure
        assert records["python"].trash == records["numpy"].trash
        assert records["python"].iterations == records["numpy"].iterations
