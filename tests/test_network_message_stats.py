"""Tests for network messages, peers and traffic statistics."""

import pytest

from repro.network.message import Message, MessageKind, representative_payload
from repro.network.peer import Peer, make_peers
from repro.network.stats import NetworkStats
from repro.text.vector import SparseVector
from repro.transactions.items import make_synthetic_item
from repro.transactions.transaction import make_transaction
from repro.xmlmodel.paths import XMLPath


def rep_transaction(n_items: int = 2):
    items = [
        make_synthetic_item(
            XMLPath.parse(f"r.p{i}.S"), f"value {i}", vector=SparseVector({i: 1.0, 100 + i: 2.0})
        )
        for i in range(n_items)
    ]
    return make_transaction("rep", items)


class TestMessage:
    def test_flag_messages_have_unit_size(self):
        message = Message(0, 1, MessageKind.FLAG, {"state": "done"})
        assert message.transaction_count() == 0
        assert message.item_count() == 0
        assert message.size_units() == 1.0

    def test_representative_message_size_accounts_items_and_vectors(self):
        payload = representative_payload([(0, rep_transaction(2), 5)])
        message = Message(0, 1, MessageKind.LOCAL_REPRESENTATIVES, payload)
        assert message.transaction_count() == 1
        assert message.item_count() == 2
        # 2 items + 2 vectors of 2 components each
        assert message.size_units() == 2 + 4

    def test_global_representative_payload(self):
        payload = representative_payload([(3, rep_transaction(1), 0), (4, rep_transaction(3), 0)])
        message = Message(2, 0, MessageKind.GLOBAL_REPRESENTATIVES, payload)
        assert message.transaction_count() == 2
        assert message.item_count() == 4

    def test_message_ids_are_unique(self):
        first = Message(0, 1, MessageKind.FLAG)
        second = Message(0, 1, MessageKind.FLAG)
        assert first.message_id != second.message_id

    def test_payload_normalisation_casts_types(self):
        payload = representative_payload([("3", rep_transaction(1), "7")])
        assert payload[0][0] == 3 and payload[0][2] == 7


class TestPeer:
    def test_deliver_and_drain(self):
        peer = Peer(0)
        peer.deliver(Message(1, 0, MessageKind.FLAG))
        peer.deliver(Message(2, 0, MessageKind.LOCAL_REPRESENTATIVES, []))
        flags = peer.drain_inbox(MessageKind.FLAG)
        assert len(flags) == 1
        assert len(peer.inbox) == 1
        assert len(peer.drain_inbox()) == 1
        assert peer.inbox == []

    def test_peek_does_not_remove(self):
        peer = Peer(0)
        peer.deliver(Message(1, 0, MessageKind.FLAG))
        assert len(peer.peek_inbox()) == 1
        assert len(peer.peek_inbox(MessageKind.FLAG)) == 1
        assert len(peer.inbox) == 1

    def test_local_size(self):
        peer = Peer(0, transactions=[rep_transaction(), rep_transaction()])
        assert peer.local_size() == 2

    def test_make_peers_assigns_ids_and_responsibilities(self):
        peers = make_peers([[rep_transaction()], []], [[0, 2], [1]])
        assert [p.peer_id for p in peers] == [0, 1]
        assert peers[0].responsibilities == [0, 2]
        assert peers[1].local_size() == 0

    def test_make_peers_length_mismatch(self):
        with pytest.raises(ValueError):
            make_peers([[]], [[0], [1]])


class TestNetworkStats:
    def test_round_accounting(self):
        stats = NetworkStats()
        stats.start_round(0)
        stats.record_message(
            Message(0, 1, MessageKind.LOCAL_REPRESENTATIVES,
                    representative_payload([(0, rep_transaction(2), 1)]))
        )
        stats.record_compute(0, 0.5)
        stats.record_compute(1, 0.2)
        stats.start_round(1)
        stats.record_message(Message(1, 0, MessageKind.FLAG))
        stats.record_compute(0, 0.1)

        assert stats.round_count() == 2
        assert stats.total_messages() == 2
        assert stats.total_transferred_transactions() == 1
        assert stats.total_transferred_items() == 2
        assert stats.total_parallel_compute_seconds() == pytest.approx(0.6)
        assert stats.total_sequential_compute_seconds() == pytest.approx(0.8)

    def test_compute_times_accumulate_per_peer_within_round(self):
        stats = NetworkStats()
        stats.start_round(0)
        stats.record_compute(0, 0.25)
        stats.record_compute(0, 0.25)
        assert stats.current_round().compute_seconds[0] == pytest.approx(0.5)

    def test_current_round_opens_one_when_missing(self):
        stats = NetworkStats()
        stats.record_message(Message(0, 1, MessageKind.FLAG))
        assert stats.round_count() == 1

    def test_as_dict_is_flat_and_complete(self):
        stats = NetworkStats()
        stats.start_round(0)
        flat = stats.as_dict()
        assert set(flat) == {
            "rounds",
            "messages",
            "transferred_transactions",
            "transferred_items",
            "transferred_units",
            "parallel_compute_seconds",
            "sequential_compute_seconds",
        }
