"""Tests for cluster representative computation (Fig. 6)."""

import pytest

from repro.core.representatives import (
    RankedItem,
    compute_global_representative,
    compute_local_representative,
    conflate_items,
    generate_tree_tuple,
    rank_items,
    reference_item_ranks,
    refinement_candidates,
    representatives_equal,
)
from repro.similarity.item import SimilarityConfig
from repro.similarity.transaction import SimilarityEngine
from repro.text.vector import SparseVector
from repro.transactions.builder import build_dataset
from repro.transactions.items import make_synthetic_item
from repro.transactions.transaction import make_transaction
from repro.xmlmodel.paths import XMLPath


def item(path: str, answer: str, weights=None):
    return make_synthetic_item(
        XMLPath.parse(path), answer, vector=SparseVector(weights or {})
    )


@pytest.fixture()
def hybrid_engine():
    return SimilarityEngine(SimilarityConfig(f=0.5, gamma=0.6))


class TestConflateItems:
    def test_one_item_per_distinct_path(self):
        conflated = conflate_items(
            [item("r.a.S", "x"), item("r.a.S", "y"), item("r.b.S", "z")]
        )
        assert [str(entry.path) for entry in conflated] == ["r.a.S", "r.b.S"]

    def test_answers_are_unioned_in_first_seen_order(self):
        conflated = conflate_items(
            [item("r.a.S", "x"), item("r.a.S", "y"), item("r.a.S", "x")]
        )
        assert conflated[0].answer == "x | y"

    def test_vectors_are_summed(self):
        conflated = conflate_items(
            [item("r.a.S", "x", {1: 1.0}), item("r.a.S", "y", {1: 2.0, 2: 3.0})]
        )
        assert conflated[0].vector.get(1) == 3.0
        assert conflated[0].vector.get(2) == 3.0

    def test_terms_are_concatenated(self):
        first = make_synthetic_item(XMLPath.parse("r.a.S"), "x", terms=("alpha",))
        second = make_synthetic_item(XMLPath.parse("r.a.S"), "y", terms=("beta",))
        conflated = conflate_items([first, second])
        assert conflated[0].terms == ("alpha", "beta")

    def test_single_item_is_preserved(self):
        single = item("r.a.S", "only", {5: 1.0})
        conflated = conflate_items([single])
        assert conflated[0].answer == "only"
        assert conflated[0].vector == single.vector

    def test_result_is_a_tree_tuple_shape(self):
        # the defining property of a representative: at most one item per path
        conflated = conflate_items(
            [item("r.a.S", "1"), item("r.b.S", "2"), item("r.a.S", "3"), item("r.b.S", "4")]
        )
        paths = [entry.path for entry in conflated]
        assert len(paths) == len(set(paths))

    def test_empty_input(self):
        assert conflate_items([]) == []


class TestRankItems:
    def test_frequent_items_rank_higher(self, hybrid_engine):
        frequent = item("r.common.S", "shared", {1: 1.0})
        rare = item("r.rare.S", "unique", {2: 1.0})
        pool = [frequent, frequent, frequent, rare]
        ranked = rank_items(pool, hybrid_engine)
        assert ranked[0].item.path == frequent.path
        assert ranked[0].rank >= ranked[-1].rank

    def test_weights_scale_the_rank(self, hybrid_engine):
        a = item("r.a.S", "a", {1: 1.0})
        b = item("r.b.S", "b", {2: 1.0})
        unweighted = rank_items([a, b], hybrid_engine)
        weighted = rank_items([a, b], hybrid_engine, weights={a: 10.0, b: 1.0})
        rank_of_a_unweighted = next(e.rank for e in unweighted if e.item == a)
        rank_of_a_weighted = next(e.rank for e in weighted if e.item == a)
        assert rank_of_a_weighted == pytest.approx(10.0 * rank_of_a_unweighted)

    def test_ordering_is_deterministic(self, hybrid_engine):
        pool = [item(f"r.p{i}.S", f"v{i}", {i: 1.0}) for i in range(5)]
        first = [e.item.answer for e in rank_items(pool, hybrid_engine)]
        second = [e.item.answer for e in rank_items(list(reversed(pool)), hybrid_engine)]
        assert first == second

    def test_structure_only_engine_ignores_content(self):
        engine = SimilarityEngine(SimilarityConfig(f=1.0, gamma=0.9))
        a = item("r.a.S", "a", {1: 100.0})
        b = item("r.a.S", "b", {})
        ranked = rank_items([a, b], engine)
        assert ranked[0].rank == pytest.approx(ranked[1].rank)

    def test_rank_items_blends_exactly_the_reference_ranks(self, hybrid_engine):
        pool = [item(f"r.p{i}.S", f"v{i}", {i: 1.0, i + 1: 0.5}) for i in range(4)]
        reference = dict(zip(pool, reference_item_ranks(pool, hybrid_engine)))
        for entry in rank_items(pool, hybrid_engine):
            assert entry.rank == reference[entry.item]  # exact, not approximate


class TestGenerateTreeTuple:
    def test_empty_cluster_produces_empty_representative(self, hybrid_engine):
        rep = generate_tree_tuple([], [], hybrid_engine)
        assert rep.is_empty()

    def test_representative_length_is_bounded_by_longest_member(self, hybrid_engine):
        members = [
            make_transaction("t1", [item("r.a.S", "1", {1: 1.0}), item("r.b.S", "2", {2: 1.0})]),
            make_transaction("t2", [item("r.a.S", "1", {1: 1.0})]),
        ]
        pool = [i for member in members for i in member.items]
        rep = generate_tree_tuple(rank_items(pool, hybrid_engine), members, hybrid_engine)
        assert len(rep) <= 2

    def test_max_items_cap(self, hybrid_engine):
        members = [
            make_transaction(
                "t1", [item(f"r.p{i}.S", f"v{i}", {i: 1.0}) for i in range(5)]
            )
        ]
        pool = list(members[0].items)
        rep = generate_tree_tuple(
            rank_items(pool, hybrid_engine), members, hybrid_engine, max_items=2
        )
        assert len(rep) <= 2

    def test_representative_has_at_most_one_item_per_path(self, hybrid_engine):
        members = [
            make_transaction("t1", [item("r.a.S", "x", {1: 1.0}), item("r.b.S", "y", {2: 1.0})]),
            make_transaction("t2", [item("r.a.S", "z", {1: 1.0}), item("r.b.S", "y", {2: 1.0})]),
        ]
        pool = [i for member in members for i in member.items]
        rep = generate_tree_tuple(rank_items(pool, hybrid_engine), members, hybrid_engine)
        paths = [i.path for i in rep.items]
        assert len(paths) == len(set(paths))

    def test_tied_refinement_steps_keep_the_first_best_candidate(self):
        """Regression test for the best-seen tracking on score ties.

        The historical loop updated the incumbent on ``score >= best``, so a
        refinement step that merely *tied* the best score replaced the
        representative with a larger candidate.  The documented semantics is
        first-best-wins: a step must strictly improve the cohesion score to
        replace the incumbent, so equal-scoring growth never bloats the
        representative.

        The scenario: two symmetric members ``{x, x}`` / ``{y, y}`` with
        structurally dissimilar items.  The candidate ``{x}`` scores
        ``1.0 + 0.0``; the next candidate ``{x, y}`` scores ``0.5 + 0.5`` --
        an exact tie -- so the refinement must return ``{x}``.
        """
        x = item("r.a.S", "alpha")
        y = item("r.b.S", "beta")
        members = [
            make_transaction("m1", [x, x]),
            make_transaction("m2", [y, y]),
        ]
        engine = SimilarityEngine(SimilarityConfig(f=1.0, gamma=0.9))
        ranked = [RankedItem(item=x, rank=2.0), RankedItem(item=y, rank=1.0)]
        chain = refinement_candidates(ranked, 2)
        scores = engine.score_candidates(
            members, [make_transaction("rep", c) for c in chain]
        )
        assert scores == [1.0, 1.0]  # the tie this test is about
        rep = generate_tree_tuple(ranked, members, engine)
        assert [(str(i.path), i.answer) for i in rep.items] == [("r.a.S", "alpha")]

    def test_zero_scoring_candidates_never_replace_the_empty_incumbent(self):
        """Companion to the tie fix: the incumbent starts as the empty
        representative at score 0.0, so a candidate chain whose scores are
        all zero yields an empty representative instead of an arbitrary
        zero-cohesion one."""
        x = item("r.a.S", "alpha")
        members = [make_transaction("m", [item("z.q.S", "far", {9: 1.0})])]
        engine = SimilarityEngine(SimilarityConfig(f=1.0, gamma=1.0))
        rep = generate_tree_tuple([RankedItem(item=x, rank=1.0)], members, engine)
        assert rep.is_empty()

    def test_refinement_chain_is_score_independent_and_prefix_nested(self, hybrid_engine):
        """The candidate chain consumes equal-rank batches cumulatively, so
        each candidate's path set contains the previous one's."""
        pool = [item(f"r.p{i}.S", f"v{i}", {i: 1.0}) for i in range(4)]
        ranked = rank_items(pool, hybrid_engine)
        chain = refinement_candidates(ranked, 4)
        assert chain
        previous_paths = set()
        for candidate in chain:
            paths = {i.path for i in candidate}
            assert previous_paths <= paths
            previous_paths = paths
        assert len(chain[-1]) <= 4


class TestLocalRepresentative:
    def test_homogeneous_cluster_representative_resembles_members(self, hybrid_engine):
        members = [
            make_transaction(
                f"t{i}",
                [item("r.title.S", "clustering xml", {1: 1.0}), item("r.year.S", "2009", {2: 1.0})],
            )
            for i in range(3)
        ]
        rep = compute_local_representative(members, hybrid_engine)
        assert not rep.is_empty()
        for member in members:
            assert hybrid_engine.transaction_similarity(member, rep) > 0.5

    def test_empty_cluster(self, hybrid_engine):
        rep = compute_local_representative([], hybrid_engine)
        assert rep.is_empty()

    def test_representative_of_paper_clusters(self, paper_tree, hybrid_engine):
        dataset = build_dataset("paper", [paper_tree])
        tr1, tr2, tr3 = dataset.transactions
        rep = compute_local_representative([tr1, tr2], hybrid_engine)
        # the representative of the first paper's tuples is closer to them
        # than to the other paper's tuple
        assert hybrid_engine.transaction_similarity(tr1, rep) >= hybrid_engine.transaction_similarity(tr3, rep)

    def test_representative_id_is_attached(self, hybrid_engine):
        members = [make_transaction("t", [item("r.a.S", "x", {1: 1.0})])]
        rep = compute_local_representative(members, hybrid_engine, representative_id="rep:7")
        assert rep.transaction_id == "rep:7"


class TestGlobalRepresentative:
    def test_weighted_merge_prefers_heavier_peer(self, hybrid_engine):
        local_a = make_transaction("rep:a", [item("r.a.S", "topic alpha", {1: 1.0})])
        local_b = make_transaction("rep:b", [item("r.b.S", "topic beta", {2: 1.0})])
        heavy_a = compute_global_representative(
            [(local_a, 90), (local_b, 10)], hybrid_engine
        )
        heavy_b = compute_global_representative(
            [(local_a, 10), (local_b, 90)], hybrid_engine
        )
        # the dominant peer's path should always survive in the representative
        assert XMLPath.parse("r.a.S") in {i.path for i in heavy_a.items}
        assert XMLPath.parse("r.b.S") in {i.path for i in heavy_b.items}

    def test_zero_weight_locals_are_ignored(self, hybrid_engine):
        local_a = make_transaction("rep:a", [item("r.a.S", "alpha", {1: 1.0})])
        empty = make_transaction("rep:b", [])
        rep = compute_global_representative([(local_a, 5), (empty, 0)], hybrid_engine)
        assert {str(i.path) for i in rep.items} == {"r.a.S"}

    def test_all_empty_locals_produce_empty_representative(self, hybrid_engine):
        empty = make_transaction("rep:a", [])
        rep = compute_global_representative([(empty, 0)], hybrid_engine)
        assert rep.is_empty()


class TestRepresentativesEqual:
    def test_equality_by_content(self):
        a = make_transaction("x", [item("r.a.S", "1")])
        b = make_transaction("y", [item("r.a.S", "1")])
        c = make_transaction("z", [item("r.a.S", "2")])
        assert representatives_equal(a, b)
        assert not representatives_equal(a, c)

    def test_none_handling(self):
        a = make_transaction("x", [item("r.a.S", "1")])
        assert representatives_equal(None, None)
        assert not representatives_equal(a, None)
        assert not representatives_equal(None, a)
