"""Tests for tree tuple decomposition (repro.treetuples).

The assertions mirror the paper's running example: the Fig. 2 document
decomposes into exactly the three tree tuples of Fig. 3.
"""

import pytest

from repro.treetuples.decompose import (
    collection_tree_tuples,
    count_tree_tuples,
    extract_tree_tuples,
    iter_tree_tuples,
)
from repro.treetuples.tupleobj import is_maximal_tree_tuple, is_tree_tuple
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.paths import XMLPath
from repro.xmlmodel.tree import tree_from_nested


class TestPaperExample:
    def test_count_matches_paper(self, paper_tree):
        assert count_tree_tuples(paper_tree) == 3

    def test_three_tuples_are_extracted(self, paper_tree):
        tuples = extract_tree_tuples(paper_tree)
        assert len(tuples) == 3
        assert {t.tuple_id for t in tuples} == {
            "dblp-example#0",
            "dblp-example#1",
            "dblp-example#2",
        }

    def test_every_tuple_has_six_leaves(self, paper_tree):
        # Fig. 4: each transaction has six items (key, author, title, year,
        # booktitle, pages)
        for tree_tuple in extract_tree_tuples(paper_tree):
            assert tree_tuple.leaf_count() == 6

    def test_authors_are_split_across_tuples(self, paper_tree):
        tuples = extract_tree_tuples(paper_tree)
        author_path = XMLPath.parse("dblp.inproceedings.author.S")
        authors = sorted(t.answer(author_path) for t in tuples)
        # Zaki appears in two tuples (once per paper), Aggarwal in one
        assert authors == ["C.C. Aggarwal", "M.J. Zaki", "M.J. Zaki"]

    def test_second_paper_forms_its_own_tuple(self, paper_tree):
        tuples = extract_tree_tuples(paper_tree)
        key_path = XMLPath.parse("dblp.inproceedings.@key")
        keys = [t.answer(key_path) for t in tuples]
        assert keys.count("conf/kdd/ZakiA03") == 2
        assert keys.count("conf/kdd/Zaki02") == 1

    def test_tuples_preserve_node_ids(self, paper_tree):
        tuples = extract_tree_tuples(paper_tree)
        for tree_tuple in tuples:
            assert tree_tuple.node_ids() <= {n.node_id for n in paper_tree.iter_nodes()}

    def test_tuples_satisfy_defining_property(self, paper_tree):
        for tree_tuple in extract_tree_tuples(paper_tree):
            assert is_tree_tuple(tree_tuple.tree, paper_tree)
            assert is_maximal_tree_tuple(tree_tuple.tree, paper_tree)

    def test_pruned_subtree_is_not_maximal(self, paper_tree):
        # the paper's example: removing node n3 (@key) breaks maximality
        tuples = extract_tree_tuples(paper_tree)
        first = tuples[0]
        pruned_ids = first.node_ids() - {3}
        pruned = paper_tree.restricted_to(pruned_ids)
        assert is_tree_tuple(pruned, paper_tree)
        assert not is_maximal_tree_tuple(pruned, paper_tree)


class TestProductConstruction:
    def test_single_record_yields_one_tuple(self):
        tree = tree_from_nested(
            ["dblp", ["article", ["author", "A"], ["title", "T"]]], doc_id="single"
        )
        assert count_tree_tuples(tree) == 1
        assert len(extract_tree_tuples(tree)) == 1

    def test_repeated_siblings_multiply(self):
        tree = tree_from_nested(
            ["r", ["a", "1"], ["a", "2"], ["b", "x"], ["b", "y"], ["b", "z"]],
            doc_id="grid",
        )
        # 2 choices for 'a' times 3 choices for 'b'
        assert count_tree_tuples(tree) == 6
        assert len(extract_tree_tuples(tree)) == 6

    def test_nested_repetition(self):
        tree = tree_from_nested(
            ["r", ["sec", ["p", "1"], ["p", "2"]], ["sec", ["p", "3"]]],
            doc_id="nested",
        )
        # pick one sec; first sec contributes 2 tuples, second contributes 1
        assert count_tree_tuples(tree) == 3

    def test_extraction_matches_count_on_random_shapes(self):
        specs = [
            ["r", ["a", "1"]],
            ["r", ["a", "1"], ["a", "2"]],
            ["r", ["x", ["y", "1"], ["y", "2"]], ["z", "q"]],
            ["r", ["x", ["y", "1"]], ["x", ["y", "2"], ["y", "3"]]],
        ]
        for index, spec in enumerate(specs):
            tree = tree_from_nested(spec, doc_id=f"shape{index}")
            assert len(extract_tree_tuples(tree)) == count_tree_tuples(tree)

    def test_limit_bounds_materialisation(self):
        tree = tree_from_nested(
            ["r"] + [["a", str(i)] for i in range(6)] + [["b", str(i)] for i in range(6)],
            doc_id="big",
        )
        assert count_tree_tuples(tree) == 36
        limited = extract_tree_tuples(tree, limit=10)
        assert len(limited) == 10
        for tree_tuple in limited:
            assert is_tree_tuple(tree_tuple.tree, tree)

    def test_every_leaf_is_covered_by_some_tuple(self, paper_tree):
        tuples = extract_tree_tuples(paper_tree)
        covered = set()
        for tree_tuple in tuples:
            covered |= {n.node_id for n in tree_tuple.tree.iter_leaves()}
        assert covered == {n.node_id for n in paper_tree.iter_leaves()}


class TestTreeTupleObject:
    def test_relational_view(self, paper_tree):
        first = extract_tree_tuples(paper_tree)[0]
        mapping = first.as_dict()
        assert mapping["dblp.inproceedings.booktitle.S"] == "KDD"
        assert len(mapping) == 6

    def test_answer_of_missing_path_is_none(self, paper_tree):
        first = extract_tree_tuples(paper_tree)[0]
        assert first.answer(XMLPath.parse("dblp.article.title.S")) is None

    def test_len_is_leaf_count(self, paper_tree):
        first = extract_tree_tuples(paper_tree)[0]
        assert len(first) == first.leaf_count() == 6

    def test_as_pairs_is_sorted_by_path(self, paper_tree):
        first = extract_tree_tuples(paper_tree)[0]
        paths = [p for p, _ in first.as_pairs()]
        assert paths == sorted(paths)


class TestCollectionHelpers:
    def test_iter_and_collect_over_collection(self, paper_tree):
        other = parse_xml("<dblp><article><title>T</title></article></dblp>", doc_id="o")
        tuples = collection_tree_tuples([paper_tree, other])
        assert len(tuples) == 4
        assert len(list(iter_tree_tuples([paper_tree, other]))) == 4
        assert {t.source_doc_id for t in tuples} == {"dblp-example", "o"}
