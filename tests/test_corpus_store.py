"""Persistence, invalidation and bit-exact-attach tests for the corpus store.

The persistent compiled-corpus store (``repro/similarity/corpus_store.py``)
exports one ``NumpyBackend`` compilation to a fingerprinted on-disk layout
that later runs attach zero-copy via ``np.load(mmap_mode="r")``.  These
tests pin its contract:

* the fingerprint invalidates on changed transaction content, a changed
  similarity configuration and a bumped store-format version;
* corrupted or crash-truncated directories are rejected by ``load`` and
  transparently recompiled (then re-exported) by ``prepare_engine_corpus``;
* a warm attach is a store **hit** that skips *all* compile work -- no
  tag-path cache precompute, ``corpus_compile_count == 0``, and
  ``compile_corpus`` returning 0 -- through a whole ``fit``;
* store-attached engines are **bit-exact** with fresh-compiled ones across
  the numpy / sharded backends, tiled and untiled (hypothesis property
  suite; the torch variant lives in its own importorskip test).
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

pytest.importorskip("numpy")

from repro.core.config import ClusteringConfig
from repro.core.seeding import select_seed_transactions
from repro.core.xkmeans import XKMeans
from repro.datasets.registry import get_dataset
from repro.network.mpengine import clear_process_engines
from repro.similarity import corpus_store
from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.corpus_store import (
    CorpusStore,
    CorpusStoreError,
    clear_store_cache,
    corpus_fingerprint,
    prepare_engine_corpus,
    store_directory,
)
from repro.similarity.item import SimilarityConfig
from repro.similarity.transaction import SimilarityEngine


@pytest.fixture(autouse=True)
def isolated_caches():
    """Every test starts and ends with empty engine and store caches, so
    attached stores and per-process engines never leak between tests."""
    clear_process_engines()
    clear_store_cache()
    yield
    clear_process_engines()
    clear_store_cache()


@pytest.fixture(scope="module")
def dblp_small():
    return get_dataset("DBLP", scale=0.2, seed=0)


@pytest.fixture(scope="module")
def shared_cache_dir(tmp_path_factory):
    """A module-lived store cache root (reused across hypothesis examples,
    so repeated configurations exercise the warm hit path too)."""
    return str(tmp_path_factory.mktemp("corpus-store"))


SIMILARITY = SimilarityConfig(f=0.5, gamma=0.8)


def make_engine(backend: str = "numpy") -> SimilarityEngine:
    return SimilarityEngine(
        SIMILARITY, cache=TagPathSimilarityCache(), backend=backend
    )


def fresh_compile(engine: SimilarityEngine, transactions) -> None:
    engine.cache.precompute(
        {item.tag_path for transaction in transactions for item in transaction.items}
    )
    engine.backend.compile_corpus(transactions)


# --------------------------------------------------------------------------- #
# Fingerprint
# --------------------------------------------------------------------------- #
class TestFingerprint:
    def test_equal_corpora_hash_identically(self, dblp_small):
        # a freshly regenerated (value-equal, object-distinct) corpus must
        # produce the same fingerprint: the hash is value-based, not
        # identity/aliasing-based
        regenerated = get_dataset("DBLP", scale=0.2, seed=0)
        assert corpus_fingerprint(
            dblp_small.transactions, SIMILARITY
        ) == corpus_fingerprint(regenerated.transactions, SIMILARITY)

    def test_fingerprint_is_stable_across_processes(self):
        """Regression: term identifiers are assigned in hash-randomised
        vocabulary order, so hashing raw ``vector.items()`` produced a
        different fingerprint in every process (and the CLI's second
        ``--corpus-cache`` run could never hit).  The canonical term
        relabeling must make the hash process-independent."""
        import os
        import subprocess
        import sys

        script = (
            "from repro.datasets.registry import get_dataset\n"
            "from repro.similarity.corpus_store import corpus_fingerprint\n"
            "from repro.similarity.item import SimilarityConfig\n"
            "ds = get_dataset('DBLP', scale=0.2, seed=0)\n"
            "print(corpus_fingerprint("
            "ds.transactions, SimilarityConfig(f=0.5, gamma=0.8)))\n"
        )
        fingerprints = set()
        for hash_seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = str(
                Path(__file__).resolve().parent.parent / "src"
            )
            completed = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                check=True,
                timeout=300,
            )
            fingerprints.add(completed.stdout.strip())
        assert len(fingerprints) == 1

    def test_changed_transaction_content_changes_the_fingerprint(
        self, dblp_small
    ):
        other = get_dataset("DBLP", scale=0.2, seed=1)
        assert corpus_fingerprint(
            dblp_small.transactions, SIMILARITY
        ) != corpus_fingerprint(other.transactions, SIMILARITY)

    def test_dropped_transaction_changes_the_fingerprint(self, dblp_small):
        transactions = dblp_small.transactions
        assert corpus_fingerprint(transactions, SIMILARITY) != corpus_fingerprint(
            transactions[:-1], SIMILARITY
        )

    def test_changed_similarity_config_changes_the_fingerprint(
        self, dblp_small
    ):
        transactions = dblp_small.transactions
        assert corpus_fingerprint(transactions, SIMILARITY) != corpus_fingerprint(
            transactions, SimilarityConfig(f=0.6, gamma=0.8)
        )
        assert corpus_fingerprint(transactions, SIMILARITY) != corpus_fingerprint(
            transactions, SimilarityConfig(f=0.5, gamma=0.7)
        )

    def test_bumped_format_version_changes_the_fingerprint(
        self, dblp_small, monkeypatch
    ):
        transactions = dblp_small.transactions
        before = corpus_fingerprint(transactions, SIMILARITY)
        monkeypatch.setattr(
            corpus_store,
            "STORE_FORMAT_VERSION",
            corpus_store.STORE_FORMAT_VERSION + 1,
        )
        assert corpus_fingerprint(transactions, SIMILARITY) != before


# --------------------------------------------------------------------------- #
# Invalidation and recovery through prepare_engine_corpus
# --------------------------------------------------------------------------- #
class TestInvalidation:
    def test_miss_then_hit(self, dblp_small, tmp_path):
        transactions = dblp_small.transactions
        first = prepare_engine_corpus(
            make_engine(), transactions, cache_dir=tmp_path
        )
        assert first["store"] == "miss"
        assert first["compiled"] == len(transactions)
        clear_store_cache()
        second = prepare_engine_corpus(
            make_engine(), transactions, cache_dir=tmp_path
        )
        assert second["store"] == "hit"
        assert second["compiled"] == 0
        assert second["directory"] == first["directory"]

    def test_changed_corpus_misses(self, dblp_small, tmp_path):
        first = prepare_engine_corpus(
            make_engine(), dblp_small.transactions, cache_dir=tmp_path
        )
        other = get_dataset("DBLP", scale=0.2, seed=1)
        second = prepare_engine_corpus(
            make_engine(), other.transactions, cache_dir=tmp_path
        )
        assert second["store"] == "miss"
        assert second["directory"] != first["directory"]

    def test_changed_similarity_config_misses(self, dblp_small, tmp_path):
        transactions = dblp_small.transactions
        first = prepare_engine_corpus(
            make_engine(), transactions, cache_dir=tmp_path
        )
        other = SimilarityEngine(
            SimilarityConfig(f=0.7, gamma=0.8),
            cache=TagPathSimilarityCache(),
            backend="numpy",
        )
        second = prepare_engine_corpus(other, transactions, cache_dir=tmp_path)
        assert second["store"] == "miss"
        assert second["directory"] != first["directory"]

    def test_bumped_format_version_misses_and_rejects_the_old_dir(
        self, dblp_small, tmp_path, monkeypatch
    ):
        transactions = dblp_small.transactions
        first = prepare_engine_corpus(
            make_engine(), transactions, cache_dir=tmp_path
        )
        assert first["store"] == "miss"
        monkeypatch.setattr(
            corpus_store,
            "STORE_FORMAT_VERSION",
            corpus_store.STORE_FORMAT_VERSION + 1,
        )
        clear_store_cache()
        second = prepare_engine_corpus(
            make_engine(), transactions, cache_dir=tmp_path
        )
        assert second["store"] == "miss"
        assert second["directory"] != first["directory"]
        # the old-format directory is now unloadable
        with pytest.raises(CorpusStoreError, match="format version"):
            CorpusStore.load(first["directory"])

    def test_corrupted_manifest_recovers_by_recompiling(
        self, dblp_small, tmp_path
    ):
        transactions = dblp_small.transactions
        first = prepare_engine_corpus(
            make_engine(), transactions, cache_dir=tmp_path
        )
        directory = Path(first["directory"])
        (directory / "manifest.json").write_text("{ truncated", encoding="utf-8")
        with pytest.raises(CorpusStoreError, match="manifest"):
            CorpusStore.load(directory)
        clear_store_cache()
        second = prepare_engine_corpus(
            make_engine(), transactions, cache_dir=tmp_path
        )
        assert second["store"] == "miss"
        assert second["compiled"] == len(transactions)
        clear_store_cache()
        third = prepare_engine_corpus(
            make_engine(), transactions, cache_dir=tmp_path
        )
        assert third["store"] == "hit"

    def test_missing_manifest_marks_a_crash_truncated_save(
        self, dblp_small, tmp_path
    ):
        # the manifest is written last: a directory without one (a crash
        # mid-save) must be rejected and recompiled, not half-attached
        transactions = dblp_small.transactions
        first = prepare_engine_corpus(
            make_engine(), transactions, cache_dir=tmp_path
        )
        directory = Path(first["directory"])
        (directory / "manifest.json").unlink()
        with pytest.raises(CorpusStoreError):
            CorpusStore.load(directory)
        clear_store_cache()
        second = prepare_engine_corpus(
            make_engine(), transactions, cache_dir=tmp_path
        )
        assert second["store"] == "miss"

    def test_missing_array_file_is_rejected(self, dblp_small, tmp_path):
        transactions = dblp_small.transactions
        first = prepare_engine_corpus(
            make_engine(), transactions, cache_dir=tmp_path
        )
        directory = Path(first["directory"])
        (directory / "tp_matrix.npy").unlink()
        with pytest.raises(CorpusStoreError, match="missing"):
            CorpusStore.load(directory)

    def test_unwritable_cache_dir_degrades_to_error_status(
        self, dblp_small, tmp_path
    ):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file in the way", encoding="utf-8")
        status = prepare_engine_corpus(
            make_engine(),
            dblp_small.transactions,
            cache_dir=blocker / "cache",
        )
        # the run still got a compiled engine; only the export failed
        assert status["store"] == "error"
        assert status["compiled"] == len(dblp_small.transactions)
        # the error record names what failed where: fingerprint + target
        # directory make a failed save debuggable from run records alone
        assert status["fingerprint"] == corpus_fingerprint(
            dblp_small.transactions, SIMILARITY
        )
        assert status["directory"] == str(
            store_directory(blocker / "cache", status["fingerprint"])
        )

    def test_pickle_failure_during_save_degrades_to_error_status(
        self, dblp_small, tmp_path, monkeypatch
    ):
        # a pickling/encoding failure inside CorpusStore.save must degrade
        # exactly like an unwritable directory, not kill the run
        import pickle

        def refuse_to_pickle(*args, **kwargs):
            raise pickle.PicklingError("unpicklable corpus")

        monkeypatch.setattr(corpus_store.pickle, "dump", refuse_to_pickle)
        status = prepare_engine_corpus(
            make_engine(), dblp_small.transactions, cache_dir=tmp_path
        )
        assert status["store"] == "error"
        assert "unpicklable corpus" in status["error"]
        assert status["compiled"] == len(dblp_small.transactions)
        assert status["fingerprint"]
        assert status["directory"].startswith(str(tmp_path))

    def test_store_off_and_unsupported_statuses(self, dblp_small, tmp_path):
        off = prepare_engine_corpus(make_engine(), dblp_small.transactions)
        assert off["store"] == "off"
        unsupported = prepare_engine_corpus(
            make_engine("python"), dblp_small.transactions, cache_dir=tmp_path
        )
        assert unsupported["store"] == "unsupported"

    def test_store_directory_is_keyed_by_fingerprint_prefix(self, tmp_path):
        fingerprint = "ab" * 32
        assert store_directory(tmp_path, fingerprint) == tmp_path / ("ab" * 8)


# --------------------------------------------------------------------------- #
# Warm attach skips all compile work (acceptance)
# --------------------------------------------------------------------------- #
class TestWarmAttachSkipsCompilation:
    def test_hit_engine_does_zero_compile_work(self, dblp_small, tmp_path):
        transactions = dblp_small.transactions
        prepare_engine_corpus(make_engine(), transactions, cache_dir=tmp_path)
        clear_store_cache()
        engine = make_engine()
        status = prepare_engine_corpus(engine, transactions, cache_dir=tmp_path)
        assert status["store"] == "hit"
        assert engine.backend.corpus_compile_count == 0
        # the O(paths^2) tag-path precompute was skipped too
        assert engine.cache.stats()["precomputed"] == 0
        # an explicit compile_corpus call resolves every transaction from
        # the attached arrays: zero transactions compiled
        assert engine.backend.compile_corpus(transactions) == 0
        assert engine.backend.corpus_compile_count == 0

    def test_full_fit_on_a_warm_engine_compiles_nothing(
        self, dblp_small, tmp_path
    ):
        transactions = dblp_small.transactions
        prepare_engine_corpus(make_engine(), transactions, cache_dir=tmp_path)
        clear_store_cache()
        engine = make_engine()
        assert (
            prepare_engine_corpus(engine, transactions, cache_dir=tmp_path)[
                "store"
            ]
            == "hit"
        )
        config = ClusteringConfig(
            k=4, similarity=SIMILARITY, seed=0, max_iterations=4, backend="numpy"
        )
        warm_result = XKMeans(config, engine=engine).fit(transactions)
        assert engine.backend.corpus_compile_count == 0

        fresh = XKMeans(config)
        fresh_compile(fresh.engine, transactions)
        fresh_result = fresh.fit(transactions)
        assert warm_result.partition() == fresh_result.partition()
        assert warm_result.iterations == fresh_result.iterations

    def test_attach_is_handle_only_on_an_already_compiled_engine(
        self, dblp_small, tmp_path
    ):
        transactions = dblp_small.transactions
        engine = make_engine()
        status = prepare_engine_corpus(engine, transactions, cache_dir=tmp_path)
        # the miss path compiled first, so the save's attach kept the
        # compiled registries and only recorded the handle
        assert status["store"] == "miss"
        assert engine.backend.attached_store is not None
        assert engine.backend.corpus_compile_count == len(transactions)


# --------------------------------------------------------------------------- #
# Bit-exact parity: store-attached vs fresh-compiled (acceptance)
# --------------------------------------------------------------------------- #
class TestAttachParity:
    @settings(max_examples=12, deadline=None)
    @given(
        backend=st.sampled_from(
            ["numpy", "numpy:block=64", "numpy:block=0", "sharded:2"]
        ),
        f=st.sampled_from([0.0, 0.3, 0.5, 1.0]),
        gamma=st.sampled_from([0.6, 0.8]),
        k=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_property_store_attach_is_bit_exact(
        self, dblp_small, shared_cache_dir, backend, f, gamma, k, seed
    ):
        """``assign_all`` on a store-attached corpus equals the fresh
        compile exactly, across backends (numpy untiled / tiled / sharded),
        similarity configurations and seeds.  The shared cache dir is
        reused across examples, so repeat configurations exercise the warm
        hit path and first-seen ones the miss+export path."""
        similarity = SimilarityConfig(f=f, gamma=gamma)
        transactions = dblp_small.transactions
        representatives = select_seed_transactions(
            transactions, k, random.Random(seed)
        )

        fresh = SimilarityEngine(
            similarity, cache=TagPathSimilarityCache(), backend=backend
        )
        fresh_compile(fresh, transactions)
        expected = fresh.assign_all(transactions, representatives)

        clear_store_cache()
        attached = SimilarityEngine(
            similarity, cache=TagPathSimilarityCache(), backend=backend
        )
        status = prepare_engine_corpus(
            attached, transactions, cache_dir=shared_cache_dir
        )
        assert status["store"] in ("hit", "miss")
        result = attached.assign_all(transactions, representatives)
        for engine in (fresh, attached):
            if hasattr(engine.backend, "close"):
                engine.backend.close()
        assert result == expected

    def test_sharded_warm_attach_matches_python_reference(
        self, dblp_small, tmp_path
    ):
        """The dispatched store path (workers attaching by store_dir +
        row spans) agrees with the serial python reference on a warm hit."""
        transactions = dblp_small.transactions
        representatives = select_seed_transactions(
            transactions, 4, random.Random(0)
        )
        expected = make_engine("python").assign_all(
            transactions, representatives
        )
        prepare_engine_corpus(make_engine(), transactions, cache_dir=tmp_path)
        clear_store_cache()
        engine = make_engine("sharded:2")
        assert (
            prepare_engine_corpus(engine, transactions, cache_dir=tmp_path)[
                "store"
            ]
            == "hit"
        )
        try:
            assert engine.assign_all(transactions, representatives) == expected
            assert engine.backend.corpus_compile_count == 0
        finally:
            engine.backend.close()

    @pytest.mark.parametrize("backend", ["torch", "torch:block=64"])
    def test_torch_store_attach_is_bit_exact(
        self, dblp_small, tmp_path, backend
    ):
        pytest.importorskip("torch")
        transactions = dblp_small.transactions
        representatives = select_seed_transactions(
            transactions, 4, random.Random(1)
        )
        fresh = SimilarityEngine(
            SIMILARITY, cache=TagPathSimilarityCache(), backend=backend
        )
        fresh_compile(fresh, transactions)
        expected = fresh.assign_all(transactions, representatives)

        prepare_engine_corpus(make_engine(), transactions, cache_dir=tmp_path)
        clear_store_cache()
        attached = SimilarityEngine(
            SIMILARITY, cache=TagPathSimilarityCache(), backend=backend
        )
        status = prepare_engine_corpus(
            attached, transactions, cache_dir=tmp_path
        )
        assert status["store"] == "hit"
        assert attached.assign_all(transactions, representatives) == expected
        assert attached.backend.corpus_compile_count == 0

    def test_stored_arrays_equal_a_fresh_compilation(self, dblp_small, tmp_path):
        """The exported arrays are byte-for-byte what a fresh backend
        compiling exactly this corpus produces."""
        import numpy as np

        transactions = dblp_small.transactions
        engine = make_engine()
        fresh_compile(engine, transactions)
        status = prepare_engine_corpus(
            make_engine(), transactions, cache_dir=tmp_path
        )
        store = CorpusStore.load(status["directory"])
        arrays = store.arrays()
        backend = engine.backend
        spans = arrays["tx_spans"]
        assert spans[0] == 0
        for row, transaction in enumerate(transactions):
            compiled = backend._compile(transaction)
            start, stop = int(spans[row]), int(spans[row + 1])
            assert stop - start == compiled.length
            np.testing.assert_array_equal(
                arrays["item_tag_path_ids"][start:stop], compiled.tag_path_ids
            )
            np.testing.assert_array_equal(
                arrays["item_content_ids"][start:stop], compiled.content_ids
            )
            np.testing.assert_array_equal(
                arrays["item_uids"][start:stop], compiled.uids
            )
        np.testing.assert_array_equal(
            arrays["tp_matrix"], backend._ensure_tp_matrix()
        )


# --------------------------------------------------------------------------- #
# Block chains (streaming out-of-core ingestion)
# --------------------------------------------------------------------------- #
from repro.similarity.corpus_store import (  # noqa: E402  (section import)
    BLOCK_MANIFEST_NAME,
    BlockCorpusStore,
    chain_base_fingerprint,
    load_store,
    roll_chain_fingerprint,
)


def chunk3(transactions):
    """Split a corpus into three streaming chunks."""
    third = len(transactions) // 3
    return [
        transactions[:third],
        transactions[third : 2 * third],
        transactions[2 * third :],
    ]


def build_chain(directory, chunks, cache=None):
    """Create a chain at *directory* and append *chunks* in order."""
    cache = cache if cache is not None else TagPathSimilarityCache()
    chain = BlockCorpusStore.create(directory, SIMILARITY)
    for chunk in chunks:
        chain.append_block(chunk, cache)
    return chain


class TestBlockChain:
    def test_chunked_chain_matches_a_monolithic_compilation(
        self, dblp_small, tmp_path
    ):
        """Arrays assembled from blocks are bit-identical to one compile."""
        import numpy as np

        transactions = dblp_small.transactions
        chain = build_chain(tmp_path / "chain", chunk3(transactions))
        engine = make_engine()
        fresh_compile(engine, transactions)
        backend = engine.backend
        arrays = chain.arrays()
        spans = arrays["tx_spans"]
        assert chain.transaction_count == len(transactions)
        assert spans[0] == 0
        for row, transaction in enumerate(transactions):
            compiled = backend._compile(transaction)
            start, stop = int(spans[row]), int(spans[row + 1])
            np.testing.assert_array_equal(
                arrays["item_tag_path_ids"][start:stop], compiled.tag_path_ids
            )
            np.testing.assert_array_equal(
                arrays["item_content_ids"][start:stop], compiled.content_ids
            )
            np.testing.assert_array_equal(
                arrays["item_uids"][start:stop], compiled.uids
            )
        np.testing.assert_array_equal(
            arrays["tp_matrix"], backend._ensure_tp_matrix()
        )

    def test_append_extends_without_touching_earlier_blocks(
        self, dblp_small, tmp_path
    ):
        """Appending rewrites nothing but the chain manifest."""
        chunks = chunk3(dblp_small.transactions)
        cache = TagPathSimilarityCache()
        chain = build_chain(tmp_path / "chain", chunks[:2], cache)
        first_block = (tmp_path / "chain" / "block-00000" / BLOCK_MANIFEST_NAME)
        before = first_block.stat().st_mtime_ns, first_block.read_bytes()
        chain.append_block(chunks[2], cache)
        assert (first_block.stat().st_mtime_ns, first_block.read_bytes()) == before
        assert [record["name"] for record in chain.blocks] == [
            "block-00000",
            "block-00001",
            "block-00002",
        ]

    def test_chain_fingerprint_rolls_over_block_fingerprints(
        self, dblp_small, tmp_path
    ):
        """The manifest fingerprint is the documented rolling hash."""
        chunks = chunk3(dblp_small.transactions)
        chain = build_chain(tmp_path / "chain", chunks)
        expected = chain_base_fingerprint(SIMILARITY)
        for record in chain.blocks:
            expected = roll_chain_fingerprint(expected, record["fingerprint"])
        assert chain.fingerprint == expected
        reopened = BlockCorpusStore.open(tmp_path / "chain")
        assert reopened.fingerprint == expected

    def test_warm_multi_block_attach_compiles_nothing(self, dblp_small, tmp_path):
        """A chain attach is zero-compile and bit-exact with fresh compile."""
        transactions = dblp_small.transactions
        build_chain(tmp_path / "chain", chunk3(transactions))
        warm = make_engine()
        store = load_store(tmp_path / "chain")
        store.bind_transactions(transactions)
        assert store.attach(warm.backend)
        assert warm.backend.compile_corpus(transactions) == 0
        assert warm.backend.corpus_compile_count == 0
        fresh = make_engine()
        fresh_compile(fresh, transactions)
        rng = random.Random(7)
        pairs = [
            (rng.choice(transactions), rng.choice(transactions)) for _ in range(25)
        ]
        for left, right in pairs:
            assert warm.transaction_similarity(
                left, right
            ) == fresh.transaction_similarity(left, right)

    def test_refresh_adopts_blocks_appended_by_another_handle(
        self, dblp_small, tmp_path
    ):
        """A stale reader handle follows the chain after an append."""
        chunks = chunk3(dblp_small.transactions)
        cache = TagPathSimilarityCache()
        chain = build_chain(tmp_path / "chain", chunks[:2], cache)
        reader = BlockCorpusStore.open(tmp_path / "chain")
        assert reader.refresh() is False  # up to date: no-op
        chain.append_block(chunks[2], cache)
        assert reader.refresh() is True
        assert reader.fingerprint == chain.fingerprint
        assert reader.transaction_count == chain.transaction_count
        tail = reader.resolve_rows(
            [chain.transaction_count - len(chunks[2]), chain.transaction_count - 1]
        )
        assert tail[0].transaction_id == chunks[2][0].transaction_id
        assert tail[-1].transaction_id == chunks[2][-1].transaction_id


class TestBlockChainCrashSafety:
    def torn_block(self, chain_dir):
        """Simulate a crash mid-append: block dir exists, chain untouched."""
        torn = chain_dir / "block-00002"
        torn.mkdir()
        (torn / "tp_rows.npy").write_bytes(b"\x93NUMPY-garbage")
        return torn

    def test_partially_written_block_is_invisible(self, dblp_small, tmp_path):
        """A torn block (unlisted dir) does not corrupt open or attach."""
        transactions = dblp_small.transactions
        chunks = chunk3(transactions)
        build_chain(tmp_path / "chain", chunks[:2])
        self.torn_block(tmp_path / "chain")
        reopened = BlockCorpusStore.open(tmp_path / "chain")
        listed = [record["name"] for record in reopened.blocks]
        assert listed == ["block-00000", "block-00001"]
        visible = chunks[0] + chunks[1]
        assert reopened.transaction_count == len(visible)
        engine = make_engine()
        reopened.bind_transactions(visible)
        assert reopened.attach(engine.backend)
        assert engine.backend.compile_corpus(visible) == 0

    def test_next_append_repairs_the_torn_block(self, dblp_small, tmp_path):
        """The torn dir is removed and its index reused by the next append."""
        chunks = chunk3(dblp_small.transactions)
        cache = TagPathSimilarityCache()
        chain = build_chain(tmp_path / "chain", chunks[:2], cache)
        torn = self.torn_block(tmp_path / "chain")
        assert torn.exists()
        chain.append_block(chunks[2], cache)
        assert [record["name"] for record in chain.blocks] == [
            "block-00000",
            "block-00001",
            "block-00002",
        ]
        assert (torn / BLOCK_MANIFEST_NAME).exists()  # rebuilt, now valid
        reopened = BlockCorpusStore.open(tmp_path / "chain")
        assert reopened.transaction_count == sum(len(chunk) for chunk in chunks)

    def test_explicit_repair_reports_removed_orphans(self, dblp_small, tmp_path):
        chunks = chunk3(dblp_small.transactions)
        chain = build_chain(tmp_path / "chain", chunks[:2])
        torn = self.torn_block(tmp_path / "chain")
        assert chain.repair() == ["block-00002"]
        assert not torn.exists()
        assert chain.repair() == []

    def test_listed_block_with_missing_manifest_is_rejected(
        self, dblp_small, tmp_path
    ):
        """Losing a *listed* block's manifest is corruption, not a torn tail."""
        chunks = chunk3(dblp_small.transactions)
        build_chain(tmp_path / "chain", chunks[:2])
        (tmp_path / "chain" / "block-00001" / BLOCK_MANIFEST_NAME).unlink()
        with pytest.raises(CorpusStoreError):
            BlockCorpusStore.open(tmp_path / "chain")

    def test_load_store_dispatches_on_layout(self, dblp_small, tmp_path):
        """`load_store` opens chains and monolithic dirs interchangeably."""
        transactions = dblp_small.transactions
        build_chain(tmp_path / "chain", chunk3(transactions))
        assert isinstance(load_store(tmp_path / "chain"), BlockCorpusStore)
        status = prepare_engine_corpus(
            make_engine(), transactions, cache_dir=tmp_path / "mono"
        )
        assert isinstance(load_store(status["directory"]), CorpusStore)
