"""Tests for sparse TCU vectors (repro.text.vector)."""

import math

import pytest

from repro.text.vector import SparseVector, centroid_vector, merge_vectors


class TestConstruction:
    def test_zero_weights_are_not_stored(self):
        vector = SparseVector({1: 0.0, 2: 3.0})
        assert 1 not in vector
        assert len(vector) == 1

    def test_empty_vector_is_falsy(self):
        assert not SparseVector()
        assert SparseVector({1: 1.0})

    def test_get_with_default(self):
        vector = SparseVector({1: 2.0})
        assert vector.get(1) == 2.0
        assert vector.get(99) == 0.0
        assert vector.get(99, -1.0) == -1.0

    def test_to_dict_returns_copy(self):
        vector = SparseVector({1: 2.0})
        copy = vector.to_dict()
        copy[1] = 99.0
        assert vector.get(1) == 2.0

    def test_iteration_yields_items(self):
        vector = SparseVector({1: 2.0, 3: 4.0})
        assert dict(iter(vector)) == {1: 2.0, 3: 4.0}
        assert set(vector.terms()) == {1, 3}


class TestAlgebra:
    def test_norm(self):
        assert SparseVector({1: 3.0, 2: 4.0}).norm() == pytest.approx(5.0)
        assert SparseVector().norm() == 0.0

    def test_dot_product(self):
        a = SparseVector({1: 1.0, 2: 2.0})
        b = SparseVector({2: 3.0, 3: 5.0})
        assert a.dot(b) == pytest.approx(6.0)
        assert b.dot(a) == pytest.approx(6.0)

    def test_dot_with_disjoint_support_is_zero(self):
        assert SparseVector({1: 1.0}).dot(SparseVector({2: 1.0})) == 0.0

    def test_cosine_of_identical_vectors_is_one(self):
        vector = SparseVector({1: 0.5, 7: 2.5})
        assert vector.cosine(vector) == pytest.approx(1.0)

    def test_cosine_of_orthogonal_vectors_is_zero(self):
        assert SparseVector({1: 1.0}).cosine(SparseVector({2: 1.0})) == 0.0

    def test_cosine_with_empty_vector_is_zero(self):
        assert SparseVector().cosine(SparseVector({1: 1.0})) == 0.0
        assert SparseVector().cosine(SparseVector()) == 0.0

    def test_cosine_is_scale_invariant(self):
        a = SparseVector({1: 1.0, 2: 2.0})
        assert a.cosine(a.scaled(10.0)) == pytest.approx(1.0)

    def test_cosine_is_clamped_to_unit_interval(self):
        a = SparseVector({1: 1e-8, 2: 1e8})
        assert 0.0 <= a.cosine(a) <= 1.0

    def test_scaled(self):
        assert SparseVector({1: 2.0}).scaled(0.5).get(1) == 1.0

    def test_added(self):
        total = SparseVector({1: 1.0}).added(SparseVector({1: 2.0, 2: 3.0}))
        assert total.get(1) == 3.0 and total.get(2) == 3.0

    def test_normalized_has_unit_norm(self):
        unit = SparseVector({1: 3.0, 2: 4.0}).normalized()
        assert unit.norm() == pytest.approx(1.0)

    def test_normalized_empty_stays_empty(self):
        assert not SparseVector().normalized()


class TestEqualityAndHashing:
    def test_equal_vectors_hash_equal(self):
        assert SparseVector({1: 1.0}) == SparseVector({1: 1.0})
        assert hash(SparseVector({1: 1.0})) == hash(SparseVector({1: 1.0}))

    def test_different_vectors_are_not_equal(self):
        assert SparseVector({1: 1.0}) != SparseVector({1: 2.0})

    def test_comparison_with_other_types(self):
        assert SparseVector() != 42


class TestAggregates:
    def test_merge_vectors_sums_weights(self):
        merged = merge_vectors([SparseVector({1: 1.0}), SparseVector({1: 2.0, 2: 1.0})])
        assert merged.get(1) == 3.0 and merged.get(2) == 1.0

    def test_merge_of_nothing_is_empty(self):
        assert not merge_vectors([])

    def test_centroid_vector_is_mean(self):
        centroid = centroid_vector([SparseVector({1: 2.0}), SparseVector({1: 4.0})])
        assert centroid.get(1) == pytest.approx(3.0)

    def test_centroid_of_empty_collection(self):
        assert not centroid_vector([])
