"""Tests for the serving layer (WSGI app, stdin protocol, CLI commands).

Pin the thin serving surface over a loaded model: the WSGI routes and
error statuses, the stdin line protocol (one XML file path in, one JSON
verdict out, per-line error isolation), the live HTTP server, and the
``cxk cluster --save-model`` / ``cxk classify`` / ``cxk serve`` CLI flows
including the grep-able ``store     : hit`` banner the CI smoke asserts.
"""

from __future__ import annotations

import io
import json
import threading
import urllib.request
from pathlib import Path

import pytest

pytest.importorskip("numpy")

from repro.cli import main
from repro.core.config import ClusteringConfig
from repro.core.model_store import load_model, save_model
from repro.core.xkmeans import XKMeans
from repro.datasets.registry import get_corpus, get_dataset
from repro.network.mpengine import clear_process_engines
from repro.serving import (
    classify_payload,
    make_wsgi_app,
    serve_http,
    serve_stdin,
)
from repro.similarity.corpus_store import clear_store_cache, prepare_engine_corpus
from repro.similarity.item import SimilarityConfig
from repro.xmlmodel.serializer import serialize


@pytest.fixture(autouse=True)
def isolated_caches():
    """Start and end every test with empty engine and store caches."""
    clear_process_engines()
    clear_store_cache()
    yield
    clear_process_engines()
    clear_store_cache()


@pytest.fixture(scope="module")
def model_dir(tmp_path_factory):
    """A fitted, store-backed model directory shared by the module."""
    root = tmp_path_factory.mktemp("serving")
    dataset = get_dataset("DBLP", scale=0.2, seed=0)
    config = ClusteringConfig(
        k=4,
        similarity=SimilarityConfig(f=0.5, gamma=0.8),
        seed=0,
        max_iterations=3,
        backend="numpy",
        corpus_cache_dir=str(root / "cache"),
    )
    algorithm = XKMeans(config)
    prepare_engine_corpus(
        algorithm.engine, dataset.transactions, cache_dir=root / "cache"
    )
    result = algorithm.fit(dataset.transactions)
    save_model(
        root / "model", result, config, dataset=dataset, engine=algorithm.engine
    )
    return root / "model"


@pytest.fixture(scope="module")
def xml_files(tmp_path_factory):
    """A few corpus documents serialized to disk for file-based queries."""
    root = tmp_path_factory.mktemp("xml-docs")
    paths = []
    for tree in get_corpus("DBLP", scale=0.2, seed=0).trees[:3]:
        path = root / f"{tree.doc_id}.xml"
        path.write_text(serialize(tree), encoding="utf-8")
        paths.append(path)
    return paths


def fetch_with_retry(url, data=None, method="GET", attempts=100):
    """GET/POST *url*, retrying while the server socket is not yet bound."""
    import time
    import urllib.error

    request = urllib.request.Request(url, data=data, method=method)
    for attempt in range(attempts):
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.URLError:
            if attempt == attempts - 1:
                raise
            time.sleep(0.05)


def free_port():
    """An ephemeral localhost port number."""
    import socket

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def call_wsgi(app, method="GET", path="/", body=b""):
    """Invoke a WSGI app directly; return (status, parsed JSON body)."""
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = dict(headers)

    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "CONTENT_LENGTH": str(len(body)),
        "wsgi.input": io.BytesIO(body),
    }
    chunks = b"".join(app(environ, start_response))
    return captured["status"], json.loads(chunks.decode("utf-8"))


class TestWsgiApp:
    def test_health_route_reports_stats(self, model_dir):
        model = load_model(model_dir)
        status, payload = call_wsgi(make_wsgi_app(model), "GET", "/healthz")
        assert status == "200 OK"
        assert payload["status"] == "ok"
        assert payload["store"] == "hit"
        assert payload["corpus_compile_count"] == 0

    def test_classify_route_returns_a_verdict(self, model_dir):
        model = load_model(model_dir)
        document = serialize(get_corpus("DBLP", scale=0.2, seed=0).trees[0])
        status, payload = call_wsgi(
            make_wsgi_app(model), "POST", "/classify", document.encode("utf-8")
        )
        assert status == "200 OK"
        assert payload["cluster_id"] >= -1
        assert payload["transactions"] >= 1
        assert payload["latency_ms"] >= 0.0
        assert payload["assignments"]

    def test_malformed_xml_answers_400(self, model_dir):
        model = load_model(model_dir)
        status, payload = call_wsgi(
            make_wsgi_app(model), "POST", "/classify", b"<broken"
        )
        assert status == "400 Bad Request"
        assert "error" in payload

    def test_unknown_route_answers_404(self, model_dir):
        model = load_model(model_dir)
        status, payload = call_wsgi(make_wsgi_app(model), "GET", "/nope")
        assert status == "404 Not Found"
        assert "error" in payload

    def test_classify_payload_reports_latency(self, model_dir):
        model = load_model(model_dir)
        document = serialize(get_corpus("DBLP", scale=0.2, seed=0).trees[1])
        payload = classify_payload(model, document)
        assert payload["latency_ms"] > 0.0
        assert payload["cluster_id"] >= -1


class TestStdinProtocol:
    def test_lines_in_verdicts_out(self, model_dir, xml_files):
        model = load_model(model_dir)
        source = io.StringIO(
            f"{xml_files[0]}\n\n{xml_files[1]}\n{xml_files[0].parent}/missing.xml\n"
        )
        sink = io.StringIO()
        answered = serve_stdin(model, source, sink)
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert answered == 3
        assert lines[0]["file"] == str(xml_files[0])
        assert lines[0]["cluster_id"] >= -1
        assert lines[1]["cluster_id"] >= -1
        # a missing file yields an error line, not a crash
        assert "error" in lines[2]


class TestHttpServer:
    def test_live_server_answers_health_and_classify(self, model_dir, xml_files):
        port = free_port()
        model = load_model(model_dir)
        server = threading.Thread(
            target=serve_http,
            kwargs=dict(model=model, host="127.0.0.1", port=port, max_requests=2),
            daemon=True,
        )
        server.start()
        health = fetch_with_retry(f"http://127.0.0.1:{port}/healthz")
        assert health["status"] == "ok"
        verdict = fetch_with_retry(
            f"http://127.0.0.1:{port}/classify",
            data=xml_files[0].read_bytes(),
            method="POST",
        )
        assert verdict["cluster_id"] >= -1
        server.join(timeout=10)
        assert not server.is_alive()

    def test_stalled_client_cannot_block_the_server(self, model_dir):
        """Regression: a client that connects and sends nothing used to
        block the single-threaded wsgiref loop forever; the per-connection
        timeout now drops it and the next client is served."""
        import socket

        port = free_port()
        model = load_model(model_dir)
        server = threading.Thread(
            target=serve_http,
            kwargs=dict(
                model=model, host="127.0.0.1", port=port, max_requests=2,
                request_timeout=0.5,
            ),
            daemon=True,
        )
        server.start()
        # connect but never send a request line: without the timeout this
        # holds the (one-request-at-a-time) server hostage
        import time

        for attempt in range(100):
            try:
                stalled = socket.create_connection(("127.0.0.1", port), timeout=10)
                break
            except OSError:
                if attempt == 99:
                    raise
                time.sleep(0.05)
        try:
            health = fetch_with_retry(f"http://127.0.0.1:{port}/healthz")
            assert health["status"] == "ok"
        finally:
            stalled.close()
        server.join(timeout=10)
        assert not server.is_alive()


class TestCli:
    def test_cluster_save_model_then_classify(
        self, tmp_path, xml_files, capsys
    ):
        status = main(
            [
                "cluster",
                "--corpus",
                "DBLP",
                "--scale",
                "0.2",
                "--algorithm",
                "xk",
                "--backend",
                "numpy",
                "--max-iterations",
                "2",
                "--corpus-cache",
                str(tmp_path / "cache"),
                "--save-model",
                str(tmp_path / "model"),
            ]
        )
        assert status == 0
        assert f"model     : saved -> {tmp_path / 'model'}" in capsys.readouterr().out
        clear_store_cache()
        status = main(
            ["classify", "--model", str(tmp_path / "model"), str(xml_files[0])]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "store     : hit (compiled 0 transactions)" in out
        assert f"{xml_files[0]}: cluster=" in out

    def test_cluster_save_model_degrades_on_unwritable_dir(
        self, tmp_path, capsys
    ):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file in the way", encoding="utf-8")
        status = main(
            [
                "cluster",
                "--corpus",
                "DBLP",
                "--scale",
                "0.2",
                "--algorithm",
                "xk",
                "--backend",
                "numpy",
                "--max-iterations",
                "2",
                "--save-model",
                str(blocker / "model"),
            ]
        )
        assert status == 0
        assert "model     : error" in capsys.readouterr().out

    def test_classify_of_a_missing_model_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="error:"):
            main(["classify", "--model", str(tmp_path / "absent"), "x.xml"])

    def test_serve_stdin_round_trip(
        self, model_dir, xml_files, capsys, monkeypatch
    ):
        import sys

        monkeypatch.setattr(sys, "stdin", io.StringIO(f"{xml_files[0]}\n"))
        status = main(["serve", "--model", str(model_dir)])
        out = capsys.readouterr().out
        assert status == 0
        assert "serving   : stdin" in out
        verdict = json.loads(out.splitlines()[-1])
        assert verdict["cluster_id"] >= -1

    def test_serve_http_smoke(self, model_dir, capsys):
        port = free_port()

        fetcher = threading.Thread(
            target=fetch_with_retry,
            args=(f"http://127.0.0.1:{port}/healthz",),
            daemon=True,
        )
        fetcher.start()
        status = main(
            [
                "serve",
                "--model",
                str(model_dir),
                "--port",
                str(port),
                "--max-requests",
                "1",
            ]
        )
        fetcher.join(timeout=10)
        assert status == 0
        assert "serving   : http://127.0.0.1" in capsys.readouterr().out


# --------------------------------------------------------------------------- #
# classify --stdin: line-by-line streaming classification
# --------------------------------------------------------------------------- #
class _LazyStdin:
    """Iterable stdin stand-in that refuses bulk reads.

    ``classify --stdin`` must consume paths line by line (bounded
    memory); any ``read()``/``readlines()`` slurp is a regression.
    """

    def __init__(self, lines):
        self._lines = iter(lines)

    def __iter__(self):
        return self

    def __next__(self):
        return next(self._lines)

    def read(self, *args):  # pragma: no cover - the assertion IS the test
        raise AssertionError("classify --stdin must not bulk-read stdin")

    readlines = read


class TestClassifyStdin:
    def test_stdin_paths_stream_line_by_line(
        self, model_dir, xml_files, capsys, monkeypatch
    ):
        import sys

        lines = [f"{path}\n" for path in xml_files[:3]]
        lines.insert(1, "\n")  # blank lines are skipped, not classified
        monkeypatch.setattr(sys, "stdin", _LazyStdin(lines))
        status = main(["classify", "--model", str(model_dir), "--stdin"])
        out = capsys.readouterr().out
        assert status == 0
        for path in xml_files[:3]:
            assert f"{path}: cluster=" in out
        assert out.count("cluster=") == 3

    def test_positional_files_come_before_stdin(
        self, model_dir, xml_files, capsys, monkeypatch
    ):
        import sys

        monkeypatch.setattr(sys, "stdin", _LazyStdin([f"{xml_files[1]}\n"]))
        status = main(
            ["classify", "--model", str(model_dir), "--stdin", str(xml_files[0])]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert out.index(str(xml_files[0])) < out.index(f"{xml_files[1]}: cluster=")

    def test_classify_without_files_or_stdin_exits(self, model_dir):
        with pytest.raises(SystemExit, match="--stdin"):
            main(["classify", "--model", str(model_dir)])


# --------------------------------------------------------------------------- #
# cxk stream: incremental ingestion into a saved model directory
# --------------------------------------------------------------------------- #
class TestStreamCommand:
    def stream_args(self, model, extra=()):
        return [
            "stream",
            "--model", str(model),
            "--corpus", "DBLP",
            "--scale", "0.2",
            "--k", "4",
            "--gamma", "0.8",
            "--max-iterations", "2",
            "--chunk-size", "16",
            "--backend", "numpy",
            *extra,
        ]

    def test_stream_corpus_checkpoints_and_saves_a_model(
        self, tmp_path, capsys
    ):
        model = tmp_path / "streamed"
        status = main(self.stream_args(model, ["--checkpoint-every", "1"]))
        out = capsys.readouterr().out
        assert status == 0
        assert "algorithm : Streaming-XK-means" in out
        assert out.count(f"checkpoint: saved -> {model}") >= 2  # periodic + final
        assert "chunks    :" in out
        loaded = load_model(model)
        assert loaded.config.streaming is True
        assert loaded.config.chunk_size == 16

    def test_streamed_model_serves_classify(self, tmp_path, xml_files, capsys):
        model = tmp_path / "streamed"
        assert main(self.stream_args(model)) == 0
        capsys.readouterr()
        status = main(["classify", "--model", str(model), str(xml_files[0])])
        out = capsys.readouterr().out
        assert status == 0
        assert f"{xml_files[0]}: cluster=" in out

    def test_out_of_core_stream_builds_a_block_chain(
        self, tmp_path, xml_files, capsys
    ):
        from repro.similarity.corpus_store import BlockCorpusStore

        model = tmp_path / "streamed"
        status = main(self.stream_args(model, ["--out-of-core"]))
        out = capsys.readouterr().out
        assert status == 0
        assert "blocks    : out-of-core ->" in out
        chain = BlockCorpusStore.open(model / "blocks")
        assert chain.transaction_count > 0
        clear_store_cache()
        status = main(["classify", "--model", str(model), str(xml_files[0])])
        out = capsys.readouterr().out
        assert status == 0
        # the block chain re-attaches warm: zero compile work to classify
        assert "store     : hit (compiled 0 transactions)" in out

    def test_stream_from_stdin_paths(self, tmp_path, xml_files, capsys, monkeypatch):
        import sys

        model = tmp_path / "streamed"
        monkeypatch.setattr(
            sys, "stdin", io.StringIO("".join(f"{path}\n" for path in xml_files))
        )
        status = main(
            [
                "stream",
                "--model", str(model),
                "--stdin",
                "--k", "3",
                "--gamma", "0.7",
                "--max-iterations", "2",
                "--chunk-size", "4",
                "--backend", "numpy",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert f"checkpoint: saved -> {model} (final" in out

    def test_stream_input_modes_are_exclusive(self, tmp_path):
        with pytest.raises(SystemExit, match="one or the other"):
            main(self.stream_args(tmp_path / "m", ["--stdin"]))

    def test_stream_without_input_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="stream needs"):
            main(
                ["stream", "--model", str(tmp_path / "m"), "--backend", "numpy"]
            )

    def test_under_k_stream_fails_loudly(self, tmp_path, xml_files, monkeypatch):
        import sys

        monkeypatch.setattr(sys, "stdin", io.StringIO(f"{xml_files[0]}\n"))
        with pytest.raises(SystemExit, match="error:"):
            main(
                [
                    "stream",
                    "--model", str(tmp_path / "m"),
                    "--stdin",
                    "--k", "4",
                    "--backend", "numpy",
                ]
            )
