"""Tests for the durable model registry (``repro.store``).

Pin the catalog's lifecycle invariants: append-only versioning with
idempotent re-publish, content fingerprints that actually track content,
retire-as-status-flip (never delete), durable rows across re-opens, the
``save_model`` publish hook, and the ``cxk models`` CLI surface.
"""

from __future__ import annotations

import json

import pytest

pytest.importorskip("numpy")

from repro.cli import main
from repro.core.config import ClusteringConfig
from repro.core.model_store import save_model
from repro.core.xkmeans import XKMeans
from repro.datasets.registry import get_dataset
from repro.experiments.runner import precompute_similarity
from repro.similarity.corpus_store import clear_store_cache, prepare_engine_corpus
from repro.similarity.item import SimilarityConfig
from repro.store import (
    ModelRegistry,
    RegistryError,
    SqliteModelRegistry,
    model_fingerprint,
    open_registry,
)
from repro.store.registry import STATUS_PUBLISHED, STATUS_RETIRED


def fit_and_save(directory, *, k=4, max_iterations=2, cache_dir=None, **save_kwargs):
    """Fit a small XK-means model and persist it to *directory*."""
    clear_store_cache()
    dataset = get_dataset("DBLP", scale=0.2, seed=0)
    config = ClusteringConfig(
        k=k,
        similarity=SimilarityConfig(f=0.5, gamma=0.8),
        seed=0,
        max_iterations=max_iterations,
        backend="numpy",
        corpus_cache_dir=str(cache_dir) if cache_dir else None,
    )
    algorithm = XKMeans(config)
    if cache_dir is not None:
        prepare_engine_corpus(
            algorithm.engine, dataset.transactions, cache_dir=cache_dir
        )
    else:
        precompute_similarity(algorithm, dataset.transactions)
    result = algorithm.fit(dataset.transactions)
    return save_model(
        directory, result, config, dataset=dataset, engine=algorithm.engine,
        **save_kwargs,
    )


@pytest.fixture(scope="module")
def model_dirs(tmp_path_factory):
    """Two saved model directories with different content (k=4 and k=3)."""
    root = tmp_path_factory.mktemp("registry-models")
    fit_and_save(root / "model-a", k=4)
    fit_and_save(root / "model-b", k=3)
    return root / "model-a", root / "model-b"


class TestFingerprint:
    def test_stable_for_identical_content(self, model_dirs):
        model_a, _ = model_dirs
        assert model_fingerprint(model_a) == model_fingerprint(model_a)

    def test_differs_for_different_content(self, model_dirs):
        model_a, model_b = model_dirs
        assert model_fingerprint(model_a) != model_fingerprint(model_b)

    def test_unreadable_directory_raises(self, tmp_path):
        with pytest.raises(RegistryError, match="cannot fingerprint"):
            model_fingerprint(tmp_path / "absent")


class TestPublish:
    def test_first_publish_is_version_one(self, tmp_path, model_dirs):
        registry = open_registry(tmp_path / "registry.db")
        record = registry.publish("dblp", model_dirs[0])
        assert record.version == 1
        assert record.status == STATUS_PUBLISHED
        assert record.fingerprint == model_fingerprint(model_dirs[0])
        assert record.config["k"] == 4
        assert record.fit

    def test_republish_same_content_is_idempotent(self, tmp_path, model_dirs):
        registry = open_registry(tmp_path / "registry.db")
        first = registry.publish("dblp", model_dirs[0])
        second = registry.publish("dblp", model_dirs[0])
        assert second.version == first.version
        assert len(registry.list_models("dblp")) == 1

    def test_new_content_appends_a_version(self, tmp_path, model_dirs):
        registry = open_registry(tmp_path / "registry.db")
        registry.publish("dblp", model_dirs[0])
        second = registry.publish("dblp", model_dirs[1])
        assert second.version == 2
        # append-only: version 1 is still cataloged, untouched
        versions = [r.version for r in registry.list_models("dblp")]
        assert versions == [1, 2]
        assert registry.active("dblp").version == 2

    def test_invalid_names_are_rejected(self, tmp_path, model_dirs):
        registry = open_registry(tmp_path / "registry.db")
        for bad in ("", "a/b"):
            with pytest.raises(RegistryError, match="invalid model name"):
                registry.publish(bad, model_dirs[0])

    def test_non_model_directory_is_rejected(self, tmp_path):
        registry = open_registry(tmp_path / "registry.db")
        with pytest.raises(RegistryError, match="no readable manifest"):
            registry.publish("dblp", tmp_path)

    def test_rows_survive_reopen(self, tmp_path, model_dirs):
        path = tmp_path / "registry.db"
        open_registry(path).publish("dblp", model_dirs[0])
        reopened = open_registry(path)
        assert reopened.active("dblp").fingerprint == model_fingerprint(
            model_dirs[0]
        )

    def test_sqlite_backend_satisfies_the_protocol(self, tmp_path):
        registry = open_registry(tmp_path / "registry.db")
        assert isinstance(registry, SqliteModelRegistry)
        assert isinstance(registry, ModelRegistry)


class TestLifecycle:
    def test_retire_flips_status_and_promotes_previous(self, tmp_path, model_dirs):
        registry = open_registry(tmp_path / "registry.db")
        registry.publish("dblp", model_dirs[0])
        registry.publish("dblp", model_dirs[1])
        retired = registry.retire("dblp")
        assert retired.version == 2
        assert retired.status == STATUS_RETIRED
        # never deleted: --all style listing still shows it
        assert [r.version for r in registry.list_models("dblp", include_retired=True)] == [1, 2]
        # the older published version becomes active again
        assert registry.active("dblp").version == 1

    def test_show_unknown_name_names_the_catalog(self, tmp_path, model_dirs):
        registry = open_registry(tmp_path / "registry.db")
        registry.publish("dblp", model_dirs[0])
        with pytest.raises(RegistryError, match="cataloged names: dblp"):
            registry.show("nope")

    def test_show_unknown_version_raises(self, tmp_path, model_dirs):
        registry = open_registry(tmp_path / "registry.db")
        registry.publish("dblp", model_dirs[0])
        with pytest.raises(RegistryError, match="no version 9"):
            registry.show("dblp", 9)

    def test_active_models_is_one_record_per_name(self, tmp_path, model_dirs):
        registry = open_registry(tmp_path / "registry.db")
        registry.publish("beta", model_dirs[1])
        registry.publish("alpha", model_dirs[0])
        records = registry.active_models()
        assert [record.name for record in records] == ["alpha", "beta"]

    def test_record_round_trips_to_json(self, tmp_path, model_dirs):
        registry = open_registry(tmp_path / "registry.db")
        record = registry.publish("dblp", model_dirs[0])
        encoded = json.loads(json.dumps(record.to_dict()))
        assert encoded["name"] == "dblp"
        assert encoded["version"] == 1
        assert encoded["fingerprint"] == record.fingerprint


class TestSaveModelHook:
    def test_save_model_publishes_into_the_registry(self, tmp_path):
        registry = open_registry(tmp_path / "registry.db")
        manifest = fit_and_save(
            tmp_path / "model", registry=registry, model_name="hooked"
        )
        assert manifest["registry"]["name"] == "hooked"
        assert manifest["registry"]["version"] == 1
        record = registry.active("hooked")
        assert record.fingerprint == manifest["registry"]["fingerprint"]

    def test_save_model_defaults_the_name_to_the_directory(self, tmp_path):
        registry = open_registry(tmp_path / "registry.db")
        fit_and_save(tmp_path / "dblp-default", registry=registry)
        assert registry.active("dblp-default") is not None

    def test_store_backed_model_catalogs_its_corpus_store(self, tmp_path):
        registry = open_registry(tmp_path / "registry.db")
        fit_and_save(
            tmp_path / "model",
            cache_dir=tmp_path / "cache",
            registry=registry,
            model_name="stored",
        )
        stores = registry.corpus_stores()
        assert len(stores) == 1
        assert stores[0]["transactions"] > 0
        assert registry.active("stored").corpus_fingerprint == stores[0]["fingerprint"]


class TestModelsCli:
    def test_publish_list_show_retire_round_trip(
        self, tmp_path, model_dirs, capsys
    ):
        registry_path = str(tmp_path / "registry.db")
        assert main(
            ["models", "--registry", registry_path, "publish", "dblp",
             str(model_dirs[0])]
        ) == 0
        assert "published dblp v1" in capsys.readouterr().out

        assert main(["models", "--registry", registry_path, "list"]) == 0
        listing = capsys.readouterr().out
        assert "dblp" in listing and "published" in listing

        assert main(["models", "--registry", registry_path, "show", "dblp"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["version"] == 1
        assert record["directory"] == str(model_dirs[0].resolve())

        assert main(["models", "--registry", registry_path, "retire", "dblp"]) == 0
        assert "retired dblp v1" in capsys.readouterr().out

        assert main(["models", "--registry", registry_path, "list"]) == 0
        assert "no models cataloged" in capsys.readouterr().out
        assert main(["models", "--registry", registry_path, "list", "--all"]) == 0
        assert "retired" in capsys.readouterr().out

    def test_show_of_an_unknown_name_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="error:"):
            main(
                ["models", "--registry", str(tmp_path / "registry.db"),
                 "show", "ghost"]
            )

    def test_cluster_registry_flag_publishes(self, tmp_path, capsys):
        status = main(
            [
                "cluster", "--corpus", "DBLP", "--scale", "0.2",
                "--algorithm", "xk", "--backend", "numpy",
                "--max-iterations", "2",
                "--save-model", str(tmp_path / "model"),
                "--registry", str(tmp_path / "registry.db"),
                "--model-name", "cli-published",
            ]
        )
        out = capsys.readouterr().out
        assert status == 0
        assert "registry  : published cli-published v1" in out
        assert open_registry(tmp_path / "registry.db").active("cli-published")

    def test_cluster_registry_requires_save_model(self):
        with pytest.raises(SystemExit, match="--registry requires --save-model"):
            main(
                ["cluster", "--corpus", "DBLP", "--scale", "0.2",
                 "--algorithm", "xk", "--registry", "r.db"]
            )
