"""Property and regression tests for streaming ingestion.

:mod:`repro.core.streaming` promises that a streamed replay of a corpus
behaves like batch XK-means regardless of how the stream was chunked:

* **corpus preservation** -- any chunking yields a partition carrying
  every transaction exactly once (hypothesis property);
* **bit-exactness anchor** -- one big chunk (``chunk_size=None`` or
  ``>= corpus``) IS the batch fit: identical partition object semantics;
* **bounded state** -- the retained set never exceeds the configured
  capacity and the drift signal stays inside ``[0, 1]`` at every step;
* **drift edges** -- a lower drift threshold can only re-refine more
  often; ``drift_threshold=1.0`` defers until the retained set is full;
* **convergence** -- finite chunkings agree with the batch partition to
  a measured overall-F tolerance (trash included on both sides);
* **edge streams** -- empty and under-``k`` streams fail loudly at
  :meth:`finalize`, never silently return a partial clustering.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

pytest.importorskip("numpy")

from repro.core.config import ClusteringConfig
from repro.core.streaming import StreamingClusterer, stream_chunks, stream_corpus
from repro.core.xkmeans import XKMeans
from repro.datasets.registry import get_dataset
from repro.evaluation.fmeasure import overall_f_measure
from repro.network.mpengine import clear_process_engines
from repro.similarity.corpus_store import BlockCorpusStore, clear_store_cache
from repro.similarity.item import SimilarityConfig


@pytest.fixture(autouse=True)
def isolated_caches():
    """Engine and store caches never leak between streaming tests."""
    clear_process_engines()
    clear_store_cache()
    yield
    clear_process_engines()
    clear_store_cache()


@pytest.fixture(scope="module")
def dblp_tiny():
    return get_dataset("DBLP", scale=0.2, seed=0)


def make_config(
    chunk_size=None, retain_threshold=0.25, drift_threshold=0.5
) -> ClusteringConfig:
    return ClusteringConfig(
        k=4,
        similarity=SimilarityConfig(f=0.5, gamma=0.8),
        seed=0,
        max_iterations=4,
        backend="numpy",
    ).with_streaming(
        chunk_size=chunk_size,
        retain_threshold=retain_threshold,
        drift_threshold=drift_threshold,
    )


def replay(transactions, chunk_size, **config_kwargs):
    """Stream *transactions* in *chunk_size* chunks; return the clusterer."""
    clusterer = StreamingClusterer(make_config(chunk_size, **config_kwargs))
    for chunk in stream_chunks(transactions, chunk_size):
        clusterer.ingest(chunk)
    return clusterer


@pytest.fixture(scope="module")
def batch_reference(dblp_tiny):
    """The batch partition as an ``id -> label`` reference mapping."""
    result = XKMeans(make_config()).fit(dblp_tiny.transactions)
    partition = result.partition(include_trash=True)
    reference = {
        transaction_id: f"c{index}"
        for index, cluster in enumerate(partition)
        for transaction_id in cluster
    }
    return partition, reference


def canonical(partition):
    return sorted(tuple(sorted(cluster)) for cluster in partition)


# --------------------------------------------------------------------------- #
# Properties over arbitrary chunkings
# --------------------------------------------------------------------------- #
class TestChunkingProperties:
    @given(chunk_size=st.integers(min_value=1, max_value=50))
    @settings(max_examples=12, deadline=None)
    def test_any_chunking_preserves_the_corpus(self, dblp_tiny, chunk_size):
        """No chunking loses or duplicates a transaction, and the
        retained set stays within its capacity at every ingest step."""
        transactions = dblp_tiny.transactions
        clusterer = StreamingClusterer(make_config(chunk_size))
        for chunk in stream_chunks(transactions, chunk_size):
            clusterer.ingest(chunk)
            assert 0.0 <= clusterer.drift <= 1.0
            assert len(clusterer._retained) <= clusterer.retain_capacity
        result = clusterer.finalize()
        streamed = sorted(
            transaction_id
            for cluster in clusterer.partition(include_trash=True)
            for transaction_id in cluster
        )
        assert streamed == sorted(t.transaction_id for t in transactions)
        stats = result.metadata.get("streaming", {})
        if stats:  # multi-chunk replays report bounded retained peaks
            assert stats["retained_peak"] <= clusterer.retain_capacity

    def test_one_big_chunk_is_the_batch_fit(self, dblp_tiny, batch_reference):
        """chunk_size=None (and >= corpus) return the bootstrap result
        object unchanged -- streaming degenerates to batch, bit-exact."""
        batch_partition, _ = batch_reference
        for chunk_size in (None, len(dblp_tiny.transactions) + 5):
            clusterer = replay(dblp_tiny.transactions, chunk_size)
            result = clusterer.finalize()
            assert result is clusterer._bootstrap_result
            assert canonical(
                clusterer.partition(include_trash=True)
            ) == canonical(batch_partition)

    @pytest.mark.parametrize("chunk_size", [4, 8, 16])
    def test_finite_chunkings_converge_to_batch_parity(
        self, dblp_tiny, batch_reference, chunk_size
    ):
        """Measured tolerance: DBLP scale 0.2 agrees at ~0.70-0.76 for
        these chunk sizes; the gate leaves slack for seeding noise."""
        _, reference = batch_reference
        clusterer = replay(dblp_tiny.transactions, chunk_size)
        clusterer.finalize()
        agreement = overall_f_measure(
            clusterer.partition(include_trash=True), reference
        )
        assert agreement >= 0.65

    def test_out_of_core_replay_matches_in_memory(self, dblp_tiny, tmp_path):
        """A block-chain-backed replay partitions exactly like in-memory."""
        in_memory = replay(dblp_tiny.transactions, 8)
        in_memory.finalize()
        config = make_config(8)
        store = BlockCorpusStore.create(tmp_path / "chain", config.similarity)
        out_of_core = StreamingClusterer(config, store=store, keep_members=False)
        for chunk in stream_chunks(dblp_tiny.transactions, 8):
            out_of_core.ingest(chunk)
        result = out_of_core.finalize()
        assert canonical(out_of_core.partition(include_trash=True)) == canonical(
            in_memory.partition(include_trash=True)
        )
        assert result.metadata["streaming"]["blocks_appended"] == len(
            stream_chunks(dblp_tiny.transactions, 8)
        )
        assert store.transaction_count == len(dblp_tiny.transactions)


# --------------------------------------------------------------------------- #
# Drift and retention edges
# --------------------------------------------------------------------------- #
class TestDriftEdges:
    def re_refinements(self, transactions, drift_threshold):
        clusterer = replay(transactions, 8, drift_threshold=drift_threshold)
        return clusterer.finalize().metadata["streaming"]["re_refinements"]

    def test_lower_drift_threshold_refines_at_least_as_often(self, dblp_tiny):
        counts = [
            self.re_refinements(dblp_tiny.transactions, threshold)
            for threshold in (0.1, 0.5, 1.0)
        ]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] > 0  # the eager edge actually fires

    def test_drift_threshold_one_defers_until_full(self, dblp_tiny):
        """At the 1.0 edge a re-refinement needs a *full* retained set."""
        clusterer = StreamingClusterer(make_config(8, drift_threshold=1.0))
        for chunk in stream_chunks(dblp_tiny.transactions, 8):
            before = clusterer.stats.re_refinements
            clusterer.ingest(chunk)
            if clusterer.stats.re_refinements == before:
                assert clusterer.drift < 1.0

    def test_zero_retain_threshold_parks_only_zero_similarity(self, dblp_tiny):
        """retain_threshold=0.0: anything with positive similarity commits
        immediately, so the retained set only ever holds trash candidates."""
        clusterer = StreamingClusterer(make_config(8, retain_threshold=0.0))
        for chunk in stream_chunks(dblp_tiny.transactions, 8):
            clusterer.ingest(chunk)
            assert all(
                parked.best_similarity == 0.0
                for parked in clusterer._retained.values()
            )
        result = clusterer.finalize()
        assert result.metadata["streaming"]["flushed_to_trash"] == len(
            result.trash.members
        )


# --------------------------------------------------------------------------- #
# Edge streams and helpers
# --------------------------------------------------------------------------- #
class TestEdgeStreams:
    def test_empty_stream_cannot_finalize(self):
        clusterer = StreamingClusterer(make_config())
        with pytest.raises(RuntimeError, match="bootstrap"):
            clusterer.finalize()

    def test_under_k_stream_cannot_finalize(self, dblp_tiny):
        clusterer = StreamingClusterer(make_config())
        clusterer.ingest(dblp_tiny.transactions[:2])  # k=4: not bootstrapped
        assert not clusterer.bootstrapped
        with pytest.raises(RuntimeError, match="need at least"):
            clusterer.finalize()

    def test_stream_chunks_edges(self, dblp_tiny):
        transactions = dblp_tiny.transactions
        assert stream_chunks([], 8) == []
        assert stream_chunks(transactions, None) == [list(transactions)]
        chunks = stream_chunks(transactions, 7)
        assert [t for chunk in chunks for t in chunk] == list(transactions)
        assert all(len(chunk) <= 7 for chunk in chunks)

    def test_stream_corpus_helper_matches_manual_loop(self, dblp_tiny):
        manual = replay(dblp_tiny.transactions, 8)
        manual.finalize()
        helper = StreamingClusterer(make_config(8))
        stream_corpus(helper, dblp_tiny.transactions)
        helper.finalize()
        assert canonical(helper.partition(include_trash=True)) == canonical(
            manual.partition(include_trash=True)
        )

    def test_checkpoint_result_is_light_and_non_destructive(self, dblp_tiny):
        """A checkpoint snapshot does not flush retained state or change
        the final partition."""
        plain = replay(dblp_tiny.transactions, 8)
        plain.finalize()
        checkpointed = StreamingClusterer(make_config(8))
        for chunk in stream_chunks(dblp_tiny.transactions, 8):
            checkpointed.ingest(chunk)
            if checkpointed.bootstrapped:
                snapshot = checkpointed.checkpoint_result()
                assert snapshot.metadata["checkpoint"] is True
        checkpointed.finalize()
        assert canonical(
            checkpointed.partition(include_trash=True)
        ) == canonical(plain.partition(include_trash=True))
