"""Tests for tree / collection statistics (repro.xmlmodel.stats)."""

from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.stats import collection_stats, tree_stats


class TestTreeStats:
    def test_paper_example_statistics(self, paper_tree):
        stats = tree_stats(paper_tree)
        assert stats.node_count == 27
        assert stats.leaf_count == 13
        assert stats.depth == 4
        assert stats.max_fanout == 7
        # dblp, inproceedings, author, title, year, booktitle, pages
        assert stats.distinct_tags == 7
        assert stats.complete_path_count == 6
        assert stats.tag_path_count == 6

    def test_doc_id_is_carried(self, paper_tree):
        assert tree_stats(paper_tree).doc_id == "dblp-example"


class TestCollectionStats:
    def test_aggregation_over_two_documents(self, paper_tree):
        other = parse_xml(
            "<dblp><article><title>T</title><journal>J</journal></article></dblp>",
            doc_id="other",
        )
        stats = collection_stats([paper_tree, other])
        assert stats.document_count == 2
        assert stats.node_count == 27 + other.node_count()
        assert stats.leaf_count == 13 + 2
        assert stats.max_depth == 4
        assert stats.max_fanout == 7
        assert stats.distinct_complete_paths == 6 + 2
        assert stats.average_depth == (4 + 4) / 2
        assert len(stats.per_tree) == 2

    def test_empty_collection(self):
        stats = collection_stats([])
        assert stats.document_count == 0
        assert stats.average_depth == 0.0

    def test_as_dict_contains_headline_figures(self, paper_tree):
        stats = collection_stats([paper_tree]).as_dict()
        assert stats["document_count"] == 1
        assert stats["distinct_tags"] == 7
