"""Tests for gamma-shared items and the transaction similarity (Eq. 4)."""

import pytest

from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.item import SimilarityConfig
from repro.similarity.transaction import (
    SimilarityEngine,
    gamma_shared_items,
    transaction_similarity,
)
from repro.text.vector import SparseVector
from repro.transactions.builder import build_dataset
from repro.transactions.items import make_synthetic_item
from repro.transactions.transaction import make_transaction
from repro.xmlmodel.paths import XMLPath


def item(path: str, answer: str, vector=None):
    return make_synthetic_item(XMLPath.parse(path), answer, vector=vector)


def simple_transactions():
    """Two transactions sharing one identical item and one near-match."""
    shared = item("r.a.S", "shared", SparseVector({1: 1.0}))
    near_1 = item("r.b.S", "near one", SparseVector({2: 1.0, 3: 1.0}))
    near_2 = item("r.b.S", "near two", SparseVector({2: 1.0, 4: 1.0}))
    only_1 = item("r.c.S", "solo", SparseVector({9: 1.0}))
    only_2 = item("r.d.S", "other", SparseVector({8: 1.0}))
    tr1 = make_transaction("tr1", [shared, near_1, only_1])
    tr2 = make_transaction("tr2", [shared, near_2, only_2])
    return tr1, tr2


class TestGammaSharedItems:
    def test_identical_transactions_share_everything(self):
        tr1, _ = simple_transactions()
        config = SimilarityConfig(f=0.5, gamma=0.9)
        assert gamma_shared_items(tr1, tr1, config) == set(tr1.items)
        assert transaction_similarity(tr1, tr1, config) == pytest.approx(1.0)

    def test_shared_and_near_items_are_matched(self):
        tr1, tr2 = simple_transactions()
        config = SimilarityConfig(f=0.5, gamma=0.7)
        shared = gamma_shared_items(tr1, tr2, config)
        answers = {i.answer for i in shared}
        # the identical item and both near items match; the solo items do not
        assert "shared" in answers
        assert "near one" in answers and "near two" in answers
        assert "solo" not in answers and "other" not in answers

    def test_high_gamma_only_keeps_exact_matches(self):
        tr1, tr2 = simple_transactions()
        config = SimilarityConfig(f=0.5, gamma=0.99)
        shared = gamma_shared_items(tr1, tr2, config)
        assert {i.answer for i in shared} == {"shared"}

    def test_empty_transaction_shares_nothing(self):
        tr1, _ = simple_transactions()
        empty = make_transaction("empty", [])
        config = SimilarityConfig(f=0.5, gamma=0.5)
        assert gamma_shared_items(tr1, empty, config) == set()
        assert transaction_similarity(tr1, empty, config) == 0.0

    def test_engine_matches_stateless_wrappers(self):
        tr1, tr2 = simple_transactions()
        config = SimilarityConfig(f=0.5, gamma=0.7)
        engine = SimilarityEngine(config)
        assert engine.gamma_shared_items(tr1, tr2) == gamma_shared_items(tr1, tr2, config)
        assert engine.transaction_similarity(tr1, tr2) == pytest.approx(
            transaction_similarity(tr1, tr2, config)
        )

    def test_matrix_version_equals_directed_union(self):
        tr1, tr2 = simple_transactions()
        engine = SimilarityEngine(SimilarityConfig(f=0.4, gamma=0.6))
        combined = engine.gamma_shared_items(tr1, tr2)
        directed = engine.directed_gamma_match(tr1, tr2) | engine.directed_gamma_match(
            tr2, tr1
        )
        assert combined == directed


class TestTransactionSimilarity:
    def test_value_is_ratio_of_shared_to_union(self):
        tr1, tr2 = simple_transactions()
        config = SimilarityConfig(f=0.5, gamma=0.7)
        shared = gamma_shared_items(tr1, tr2, config)
        union = len(set(tr1.items) | set(tr2.items))
        assert transaction_similarity(tr1, tr2, config) == pytest.approx(
            len(shared) / union
        )

    def test_similarity_is_symmetric(self):
        tr1, tr2 = simple_transactions()
        config = SimilarityConfig(f=0.3, gamma=0.6)
        assert transaction_similarity(tr1, tr2, config) == pytest.approx(
            transaction_similarity(tr2, tr1, config)
        )

    def test_similarity_is_bounded(self):
        tr1, tr2 = simple_transactions()
        for gamma in (0.5, 0.7, 0.9):
            value = transaction_similarity(tr1, tr2, SimilarityConfig(f=0.5, gamma=gamma))
            assert 0.0 <= value <= 1.0

    def test_higher_gamma_never_increases_similarity(self):
        tr1, tr2 = simple_transactions()
        values = [
            transaction_similarity(tr1, tr2, SimilarityConfig(f=0.5, gamma=g))
            for g in (0.5, 0.7, 0.9, 0.99)
        ]
        assert all(earlier >= later for earlier, later in zip(values, values[1:]))

    def test_disjoint_transactions_have_zero_similarity(self):
        a = make_transaction("a", [item("x.p.S", "one", SparseVector({1: 1.0}))])
        b = make_transaction("b", [item("y.q.S", "two", SparseVector({2: 1.0}))])
        assert transaction_similarity(a, b, SimilarityConfig(f=0.5, gamma=0.8)) == 0.0

    def test_paper_example_transactions(self, paper_tree):
        # tr1 and tr2 differ only in the author item; with a permissive gamma
        # they are highly similar, and both are less similar to tr3
        dataset = build_dataset("paper", [paper_tree])
        tr1, tr2, tr3 = dataset.transactions
        config = SimilarityConfig(f=0.5, gamma=0.8)
        sim_12 = transaction_similarity(tr1, tr2, config)
        sim_13 = transaction_similarity(tr1, tr3, config)
        assert sim_12 > sim_13
        assert sim_12 > 0.5


class TestEngineHelpers:
    def test_nearest_representative_picks_most_similar(self):
        tr1, tr2 = simple_transactions()
        other = make_transaction("far", [item("z.z.S", "nothing", SparseVector({42: 1.0}))])
        engine = SimilarityEngine(SimilarityConfig(f=0.5, gamma=0.7))
        index, similarity = engine.nearest_representative(tr1, [other, tr2])
        assert index == 1
        assert similarity > 0.0

    def test_nearest_representative_with_no_candidates(self):
        tr1, _ = simple_transactions()
        engine = SimilarityEngine(SimilarityConfig())
        assert engine.nearest_representative(tr1, []) == (-1, 0.0)

    def test_similarity_matrix_is_symmetric_with_unit_diagonal(self):
        tr1, tr2 = simple_transactions()
        engine = SimilarityEngine(SimilarityConfig(f=0.5, gamma=0.7))
        matrix = engine.similarity_matrix([tr1, tr2])
        assert matrix[0][0] == pytest.approx(1.0)
        assert matrix[1][1] == pytest.approx(1.0)
        assert matrix[0][1] == pytest.approx(matrix[1][0])

    def test_shared_cache_is_reused(self):
        cache = TagPathSimilarityCache()
        engine = SimilarityEngine(SimilarityConfig(f=1.0, gamma=0.9), cache=cache)
        tr1, tr2 = simple_transactions()
        engine.transaction_similarity(tr1, tr2)
        assert len(cache) > 0
