"""Tests for the experiment drivers (tables, figures and ablations).

These tests run miniature versions of every experiment (tiny corpora, few
node counts, one f value) so the whole suite remains fast; the benchmark
harness runs the full-size versions.
"""

import pytest

from repro.core.partition import PartitioningScheme
from repro.datasets.registry import get_dataset
from repro.experiments.ablation import (
    collaborativeness_ablation,
    cost_model_check,
    gamma_sweep,
)
from repro.experiments.figure7 import Figure7Config, run_figure7
from repro.experiments.figure8 import Figure8Config, run_figure8
from repro.experiments.runner import (
    GOAL_F_VALUES,
    ExperimentSweep,
    aggregate_records,
    make_algorithm,
    pivot,
    run_configuration,
)
from repro.experiments.table1 import AccuracyTableConfig, run_table1
from repro.experiments.table2 import equal_vs_unequal_degradation, run_table2
from repro.network.costmodel import CostModel
from repro.core.config import ClusteringConfig
from repro.core.cxkmeans import CXKMeans
from repro.core.pkmeans import PKMeans
from repro.core.xkmeans import XKMeans

TINY_SCALE = 0.15
FAST_ITERATIONS = 3


@pytest.fixture(scope="module")
def tiny_dblp():
    return get_dataset("DBLP", scale=TINY_SCALE, seed=0)


class TestRunner:
    def test_goal_f_ranges_match_the_paper(self):
        assert all(0.0 <= f <= 0.3 for f in GOAL_F_VALUES["content"])
        assert all(0.4 <= f <= 0.6 for f in GOAL_F_VALUES["hybrid"])
        assert all(0.7 <= f <= 1.0 for f in GOAL_F_VALUES["structure"])

    def test_make_algorithm_dispatch(self):
        config = ClusteringConfig(k=2)
        assert isinstance(make_algorithm("cxk", config), CXKMeans)
        assert isinstance(make_algorithm("PK-means", config), PKMeans)
        assert isinstance(make_algorithm("centralized", config), XKMeans)
        with pytest.raises(ValueError):
            make_algorithm("mystery", config)

    def test_run_configuration_produces_a_complete_record(self, tiny_dblp):
        record = run_configuration(
            tiny_dblp,
            goal="hybrid",
            nodes=2,
            f=0.5,
            gamma=0.7,
            seed=0,
            max_iterations=FAST_ITERATIONS,
        )
        assert record.dataset == "DBLP"
        assert record.nodes == 2
        assert 0.0 <= record.f_measure <= 1.0
        assert record.simulated_seconds > 0
        assert record.k == 16

    def test_run_configuration_with_xk_algorithm(self, tiny_dblp):
        record = run_configuration(
            tiny_dblp,
            goal="content",
            nodes=1,
            f=0.2,
            gamma=0.7,
            seed=0,
            algorithm="xk",
            max_iterations=FAST_ITERATIONS,
        )
        assert record.algorithm == "XK-means"
        assert record.transferred_transactions == 0.0

    def test_aggregate_records_averages(self, tiny_dblp):
        records = [
            run_configuration(
                tiny_dblp, "hybrid", 2, f, 0.7, 0, max_iterations=FAST_ITERATIONS
            )
            for f in (0.4, 0.6)
        ]
        aggregate = aggregate_records(records)
        assert aggregate.runs == 2
        low = min(r.f_measure for r in records)
        high = max(r.f_measure for r in records)
        assert low <= aggregate.f_measure <= high

    def test_aggregate_requires_records(self):
        with pytest.raises(ValueError):
            aggregate_records([])

    def test_sweep_and_pivot(self):
        sweep = ExperimentSweep(
            datasets=("DBLP",),
            goal="hybrid",
            node_counts=(1, 2),
            scale=TINY_SCALE,
            f_values=(0.5,),
            max_iterations=FAST_ITERATIONS,
        )
        aggregates = sweep.run()
        assert len(aggregates) == 2
        table = pivot(aggregates, value="f_measure")
        assert set(table["DBLP"]) == {1, 2}


class TestFigure7:
    def test_runtime_curves_and_saturation(self):
        config = Figure7Config(
            datasets=("DBLP",),
            node_counts=(1, 2, 3),
            scales=(TINY_SCALE,),
            f_values=(0.5,),
            max_iterations=FAST_ITERATIONS,
        )
        result = run_figure7(config)
        series = result.curves["DBLP"][TINY_SCALE]
        assert set(series) == {1, 2, 3}
        assert all(value > 0 for value in series.values())
        assert result.saturation["DBLP"][TINY_SCALE] in (1, 2, 3)
        report = result.report()
        assert "Figure 7" in report and "DBLP" in report


class TestTables:
    def test_table1_structure_goal_layout(self):
        config = AccuracyTableConfig(
            goals=("structure",),
            node_counts=(1, 2),
            scale=TINY_SCALE,
            f_values=(0.9,),
            max_iterations=FAST_ITERATIONS,
            datasets=("DBLP",),
        )
        result = run_table1(config)
        assert result.scheme == "equal"
        assert set(result.tables["structure"]["DBLP"]) == {1, 2}
        assert result.cluster_counts["structure"]["DBLP"] == 4
        assert "Table 1" in result.report()

    def test_table1_rejects_unequal_scheme(self):
        config = AccuracyTableConfig(scheme=PartitioningScheme.UNEQUAL)
        with pytest.raises(ValueError):
            run_table1(config)

    def test_table2_uses_unequal_scheme_and_degradation_helper(self):
        base = dict(
            goals=("content",),
            node_counts=(1, 2),
            scale=TINY_SCALE,
            f_values=(0.2,),
            max_iterations=FAST_ITERATIONS,
            datasets=("DBLP",),
        )
        equal = run_table1(AccuracyTableConfig(**base))
        unequal = run_table2(AccuracyTableConfig(**base))
        assert unequal.scheme == "unequal"
        degradation = equal_vs_unequal_degradation(equal, unequal)
        assert set(degradation["content"]["DBLP"]) == {1, 2}

    def test_accuracy_loss_helper(self):
        config = AccuracyTableConfig(
            goals=("hybrid",),
            node_counts=(1, 3),
            scale=TINY_SCALE,
            f_values=(0.5,),
            max_iterations=FAST_ITERATIONS,
            datasets=("DBLP",),
        )
        result = run_table1(config)
        loss = result.accuracy_loss("hybrid", "DBLP", 3)
        assert isinstance(loss, float)


class TestFigure8:
    def test_comparison_produces_both_algorithms(self):
        config = Figure8Config(
            datasets=("DBLP",),
            node_counts=(2, 3),
            scale=TINY_SCALE,
            f_values=(0.5,),
            max_iterations=FAST_ITERATIONS,
        )
        result = run_figure8(config)
        assert set(result.runtime["DBLP"]) == {"CXK-means", "PK-means"}
        assert set(result.accuracy["DBLP"]["CXK-means"]) == {2, 3}
        assert isinstance(result.accuracy_advantage(), float)
        assert "Figure 8" in result.report()

    def test_pk_means_moves_more_data(self):
        config = Figure8Config(
            datasets=("DBLP",),
            node_counts=(3,),
            scale=TINY_SCALE,
            f_values=(0.5,),
            max_iterations=FAST_ITERATIONS,
        )
        result = run_figure8(config)
        cxk_traffic = result.traffic["DBLP"]["CXK-means"][3]
        pk_traffic = result.traffic["DBLP"]["PK-means"][3]
        assert pk_traffic > cxk_traffic


class TestAblations:
    def test_gamma_sweep_returns_scores_per_threshold(self, tiny_dblp):
        results = gamma_sweep(
            tiny_dblp, goal="hybrid", gammas=(0.6, 0.9), nodes=2, max_iterations=FAST_ITERATIONS
        )
        assert set(results) == {0.6, 0.9}
        assert all(0.0 <= value <= 1.0 for value in results.values())

    def test_collaborativeness_ablation(self, tiny_dblp):
        results = collaborativeness_ablation(
            tiny_dblp, goal="hybrid", nodes=(2,), max_iterations=FAST_ITERATIONS
        )
        assert set(results[2]) == {"collaborative", "non_collaborative"}

    def test_cost_model_check_compares_curves(self, tiny_dblp):
        check = cost_model_check(
            tiny_dblp,
            k=6,
            node_counts=(1, 2, 3),
            max_iterations=FAST_ITERATIONS,
            cost_model=CostModel(),
        )
        assert set(check.analytic_curve) == {1, 2, 3}
        assert set(check.empirical_curve) == {1, 2, 3}
        assert check.analytic_optimum > 0
        assert check.analytic_saturation in (1, 2, 3)
        assert check.empirical_saturation in (1, 2, 3)
