"""Tests for the XML tree model (repro.xmlmodel.tree)."""

import pytest

from repro.xmlmodel.errors import XMLTreeError
from repro.xmlmodel.tree import XMLNode, XMLTree, XMLTreeBuilder, tree_from_nested


def build_small_tree():
    builder = XMLTree.build("small")
    builder.start("root")
    builder.attribute("id", "r1")
    builder.start("child")
    builder.text("hello world")
    builder.end()
    builder.start("child")
    builder.text("second child")
    builder.end()
    builder.end()
    return builder.finish()


class TestBuilder:
    def test_node_ids_follow_document_order(self):
        tree = build_small_tree()
        labels = [(node.node_id, node.label) for node in tree.iter_nodes()]
        assert labels == [
            (1, "root"),
            (2, "@id"),
            (3, "child"),
            (4, "S"),
            (5, "child"),
            (6, "S"),
        ]

    def test_element_shortcut_builds_attribute_and_text(self):
        builder = XMLTreeBuilder("shortcut")
        builder.start("root")
        builder.element("title", "some text", lang="en")
        builder.end()
        tree = builder.finish()
        title = tree.node(2)
        assert title.label == "title"
        children = [(c.label, c.value) for c in title.children]
        assert ("@lang", "en") in children
        assert ("S", "some text") in children

    def test_unclosed_elements_are_rejected(self):
        builder = XMLTreeBuilder()
        builder.start("root")
        with pytest.raises(XMLTreeError, match="unclosed"):
            builder.finish()

    def test_end_without_start_is_rejected(self):
        builder = XMLTreeBuilder()
        with pytest.raises(XMLTreeError):
            builder.end()

    def test_second_root_is_rejected(self):
        builder = XMLTreeBuilder()
        builder.start("a")
        builder.end()
        with pytest.raises(XMLTreeError):
            builder.start("b")

    def test_attribute_outside_element_is_rejected(self):
        builder = XMLTreeBuilder()
        with pytest.raises(XMLTreeError):
            builder.attribute("id", "1")

    def test_text_outside_element_is_rejected(self):
        builder = XMLTreeBuilder()
        with pytest.raises(XMLTreeError):
            builder.text("orphan")

    def test_empty_builder_has_no_root(self):
        with pytest.raises(XMLTreeError):
            XMLTreeBuilder().finish()


class TestNodeClassification:
    def test_leaf_and_element_flags(self):
        tree = build_small_tree()
        root = tree.root
        assert root.is_element and not root.is_leaf
        attribute = tree.node(2)
        assert attribute.is_attribute and attribute.is_leaf
        text = tree.node(4)
        assert text.is_text and text.is_leaf

    def test_child_elements_excludes_leaves(self):
        tree = build_small_tree()
        assert [c.label for c in tree.root.child_elements()] == ["child", "child"]

    def test_depth_and_paths(self):
        tree = build_small_tree()
        text = tree.node(4)
        assert text.depth() == 2
        assert text.label_path() == ("root", "child", "S")
        assert [n.node_id for n in text.node_path()] == [1, 3, 4]

    def test_ancestors_iterates_to_root(self):
        tree = build_small_tree()
        assert [a.node_id for a in tree.node(4).ancestors()] == [3, 1]


class TestTreeAccessors:
    def test_counts(self, paper_tree):
        # Fig. 2: dblp + 2 inproceedings + 13 leaves of the first paper's
        # subtree region + ... => 27 nodes in total (n1..n27)
        assert paper_tree.node_count() == 27
        assert paper_tree.leaf_count() == 13

    def test_depth_of_paper_tree(self, paper_tree):
        # dblp.inproceedings.author.S has length 4
        assert paper_tree.depth() == 4

    def test_max_fanout(self, paper_tree):
        # the first inproceedings has key + 2 authors + title + year +
        # booktitle + pages = 7 children
        assert paper_tree.max_fanout() == 7

    def test_node_lookup_by_id(self, paper_tree):
        assert paper_tree.node(1).label == "dblp"
        with pytest.raises(KeyError):
            paper_tree.node(999)

    def test_leaves_are_in_document_order(self, paper_tree):
        leaves = paper_tree.leaves()
        assert leaves[0].label == "@key"
        assert leaves[0].value == "conf/kdd/ZakiA03"
        assert leaves[-1].value == "71-80"


class TestTreeTransformations:
    def test_copy_preserves_ids_and_equality(self):
        tree = build_small_tree()
        clone = tree.copy()
        assert clone == tree
        assert [n.node_id for n in clone.iter_nodes()] == [
            n.node_id for n in tree.iter_nodes()
        ]
        assert clone is not tree

    def test_restricted_to_drops_other_branches(self):
        tree = build_small_tree()
        restricted = tree.restricted_to({1, 3, 4})
        assert restricted.node_count() == 3
        assert [n.label for n in restricted.iter_nodes()] == ["root", "child", "S"]

    def test_restricted_to_requires_root(self):
        tree = build_small_tree()
        with pytest.raises(XMLTreeError):
            tree.restricted_to({3, 4})

    def test_map_values_transforms_leaves_only(self):
        tree = build_small_tree()
        upper = tree.map_values(str.upper)
        assert upper.node(4).value == "HELLO WORLD"
        assert tree.node(4).value == "hello world"

    def test_structure_signature_ignores_node_ids(self):
        first = tree_from_nested(["root", ["a", "x"], ["b", "y"]])
        second = tree_from_nested(["root", ["a", "x"], ["b", "y"]])
        assert first == second
        assert hash(first) == hash(second)

    def test_different_values_break_equality(self):
        first = tree_from_nested(["root", ["a", "x"]])
        second = tree_from_nested(["root", ["a", "z"]])
        assert first != second


class TestTreeValidation:
    def test_element_with_value_is_rejected(self):
        root = XMLNode(1, "root")
        root.value = "oops"
        with pytest.raises(XMLTreeError):
            XMLTree(root)

    def test_leaf_with_children_is_rejected(self):
        root = XMLNode(1, "root")
        text = XMLNode(2, "S", "x", root)
        root.children.append(text)
        bogus = XMLNode(3, "child", None, text)
        text.children.append(bogus)
        with pytest.raises(XMLTreeError):
            XMLTree(root)

    def test_leaf_without_value_is_rejected(self):
        root = XMLNode(1, "root")
        attr = XMLNode(2, "@id", None, root)
        root.children.append(attr)
        with pytest.raises(XMLTreeError):
            XMLTree(root)

    def test_root_with_parent_is_rejected(self):
        fake_parent = XMLNode(99, "x")
        root = XMLNode(1, "root", None, fake_parent)
        with pytest.raises(XMLTreeError):
            XMLTree(root)


class TestTreeFromNested:
    def test_nested_specification(self):
        tree = tree_from_nested(
            ["dblp", ["inproceedings", ("@key", "k1"), ["author", "M.J. Zaki"]]],
            doc_id="nested",
        )
        assert tree.doc_id == "nested"
        assert tree.node_count() == 5
        labels = [n.label for n in tree.iter_nodes()]
        assert labels == ["dblp", "inproceedings", "@key", "author", "S"]

    def test_invalid_attribute_spec_is_rejected(self):
        with pytest.raises(XMLTreeError):
            tree_from_nested(["root", ("id", "1")])

    def test_empty_spec_is_rejected(self):
        with pytest.raises(XMLTreeError):
            tree_from_nested([])

    def test_unsupported_child_type_is_rejected(self):
        with pytest.raises(XMLTreeError):
            tree_from_nested(["root", 42])
