"""Concurrency tests for the async multi-model server (``repro.serving``).

Pin the contracts that make the async server operable: parallel clients
against two routed models get **bit-exact** the verdicts a direct
:class:`~repro.core.model_store.ClusterModel` produces; a hot reload in
the middle of live traffic drops zero requests; a graceful drain
(`shutdown_threadsafe` in-process, SIGTERM against the real CLI
subprocess) finishes in-flight work and exits cleanly; and the routing /
stats / error surfaces answer what ``docs/SERVING.md`` documents.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from pathlib import Path

import pytest

pytest.importorskip("numpy")

from repro.core.config import ClusteringConfig
from repro.core.model_store import load_model, save_model
from repro.core.xkmeans import XKMeans
from repro.datasets.registry import get_corpus, get_dataset
from repro.experiments.runner import precompute_similarity
from repro.network.mpengine import clear_process_engines
from repro.serving import (
    AsyncModelServer,
    ModelRouter,
    clear_process_models,
    worker_classify,
    worker_classify_batch,
)
from repro.similarity.corpus_store import clear_store_cache
from repro.similarity.item import SimilarityConfig
from repro.store import RegistryError, model_fingerprint, open_registry
from repro.xmlmodel.serializer import serialize


def fetch_with_retry(url, data=None, method="GET", attempts=100):
    """GET/POST *url*, retrying while the server socket is not yet bound."""
    request = urllib.request.Request(url, data=data, method=method)
    for attempt in range(attempts):
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.URLError:
            if attempt == attempts - 1:
                raise
            time.sleep(0.05)


def free_port():
    """An ephemeral localhost port number."""
    import socket

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture(autouse=True)
def isolated_caches():
    """Start and end every test with empty engine/store/worker caches."""
    clear_process_engines()
    clear_store_cache()
    clear_process_models()
    yield
    clear_process_engines()
    clear_store_cache()
    clear_process_models()


def fit_and_save(directory, *, k, max_iterations=2):
    """Fit a small XK-means model on DBLP scale 0.2 and persist it."""
    clear_store_cache()
    dataset = get_dataset("DBLP", scale=0.2, seed=0)
    config = ClusteringConfig(
        k=k,
        similarity=SimilarityConfig(f=0.5, gamma=0.8),
        seed=0,
        max_iterations=max_iterations,
        backend="numpy",
    )
    algorithm = XKMeans(config)
    precompute_similarity(algorithm, dataset.transactions)
    result = algorithm.fit(dataset.transactions)
    save_model(
        directory, result, config, dataset=dataset, engine=algorithm.engine
    )
    return directory


@pytest.fixture(scope="module")
def registry_path(tmp_path_factory):
    """A registry cataloging two differently-shaped models (and a spare).

    ``spare`` is a third directory with different content, published as a
    new version of ``alpha`` by the hot-reload tests.
    """
    root = tmp_path_factory.mktemp("async-serving")
    fit_and_save(root / "alpha", k=4)
    fit_and_save(root / "beta", k=3)
    fit_and_save(root / "spare", k=5)
    registry = open_registry(root / "registry.db")
    registry.publish("alpha", root / "alpha")
    registry.publish("beta", root / "beta")
    return root / "registry.db"


@pytest.fixture(scope="module")
def documents():
    """Serialized corpus documents used as the query stream."""
    return [serialize(tree) for tree in get_corpus("DBLP", scale=0.2, seed=0).trees]


@contextmanager
def running_server(registry_path, **kwargs):
    """Run an :class:`AsyncModelServer` on a background thread."""
    port = free_port()
    server = AsyncModelServer(
        ModelRouter(registry=open_registry(registry_path)),
        port=port,
        **kwargs,
    )
    thread = threading.Thread(
        target=lambda: asyncio.run(server.run(install_signal_handlers=False)),
        daemon=True,
    )
    thread.start()
    assert server.started.wait(timeout=30)
    try:
        yield server, f"http://127.0.0.1:{port}"
    finally:
        server.shutdown_threadsafe()
        thread.join(timeout=30)
        assert not thread.is_alive()


class TestRouting:
    def test_parallel_clients_match_direct_classify_bit_exactly(
        self, registry_path, documents
    ):
        registry = open_registry(registry_path)
        expected = {}
        for name in ("alpha", "beta"):
            model = load_model(registry.active(name).directory)
            expected[name] = [
                model.classify(document).to_dict() for document in documents
            ]
            model.close()

        with running_server(registry_path) as (server, base):
            def query(task):
                name, index = task
                return name, index, fetch_with_retry(
                    f"{base}/models/{name}/classify",
                    data=documents[index].encode("utf-8"),
                    method="POST",
                )

            tasks = [
                (name, index)
                for name in ("alpha", "beta")
                for index in range(len(documents))
            ]
            with ThreadPoolExecutor(max_workers=8) as pool:
                responses = list(pool.map(query, tasks))

        assert len(responses) == len(tasks)
        for name, index, payload in responses:
            reference = expected[name][index]
            assert payload["model"] == name
            assert payload["cluster_id"] == reference["cluster_id"]
            assert payload["score"] == reference["score"]
            assert payload["assignments"] == reference["assignments"]

    def test_single_route_exposes_bare_classify(self, tmp_path, documents):
        fit_and_save(tmp_path / "solo", k=4)
        registry = open_registry(tmp_path / "solo.db")
        registry.publish("solo", tmp_path / "solo")
        with running_server(tmp_path / "solo.db") as (server, base):
            payload = fetch_with_retry(
                f"{base}/classify", data=documents[0].encode("utf-8"),
                method="POST",
            )
            assert payload["model"] == "solo"

    def test_unknown_model_answers_404_with_the_routes(self, registry_path):
        with running_server(registry_path) as (server, base):
            request = urllib.request.Request(
                f"{base}/models/ghost/classify", data=b"<a/>", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as failure:
                urllib.request.urlopen(request, timeout=10)
            assert failure.value.code == 404
            body = json.loads(failure.value.read())
            assert body["models"] == ["alpha", "beta"]

    def test_malformed_xml_answers_400_and_counts_an_error(
        self, registry_path
    ):
        with running_server(registry_path) as (server, base):
            request = urllib.request.Request(
                f"{base}/models/alpha/classify", data=b"<broken", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as failure:
                urllib.request.urlopen(request, timeout=10)
            assert failure.value.code == 400
            stats = fetch_with_retry(f"{base}/models/alpha/stats")
            assert stats["errors"] == 1
            assert stats["requests"] == 0

    def test_stats_report_counters_and_percentiles(
        self, registry_path, documents
    ):
        with running_server(registry_path) as (server, base):
            for index in range(3):
                fetch_with_retry(
                    f"{base}/models/beta/classify",
                    data=documents[index].encode("utf-8"),
                    method="POST",
                )
            stats = fetch_with_retry(f"{base}/models/beta/stats")
            assert stats["model"] == "beta"
            assert stats["requests"] == 3
            assert stats["errors"] == 0
            assert stats["version"] == 1
            assert stats["store"] in ("off", "cold", "hit")
            assert stats["latency_ms_p50"] > 0.0
            assert stats["latency_ms_p99"] >= stats["latency_ms_p50"]
            health = fetch_with_retry(f"{base}/healthz")
            assert health["status"] == "ok"
            assert set(health["models"]) == {"alpha", "beta"}

    def test_router_rejects_unknown_requested_names(self, registry_path):
        router = ModelRouter(
            registry=open_registry(registry_path), names=["alpha", "ghost"]
        )
        with pytest.raises(RegistryError, match="ghost"):
            router.targets()

    def test_static_router_serves_a_directory(self, tmp_path, documents):
        fit_and_save(tmp_path / "static-model", k=4)
        port = free_port()
        server = AsyncModelServer(
            ModelRouter(model_dirs={"static-model": str(tmp_path / "static-model")}),
            port=port,
        )
        thread = threading.Thread(
            target=lambda: asyncio.run(server.run(install_signal_handlers=False)),
            daemon=True,
        )
        thread.start()
        assert server.started.wait(timeout=30)
        try:
            payload = fetch_with_retry(
                f"http://127.0.0.1:{port}/models/static-model/classify",
                data=documents[0].encode("utf-8"),
                method="POST",
            )
            assert payload["model"] == "static-model"
        finally:
            server.shutdown_threadsafe()
            thread.join(timeout=30)

    def test_router_requires_exactly_one_source(self, registry_path):
        with pytest.raises(ValueError, match="exactly one source"):
            ModelRouter()
        with pytest.raises(ValueError, match="exactly one source"):
            ModelRouter(
                registry=open_registry(registry_path), model_dirs={"a": "b"}
            )


class TestHotReload:
    def test_reload_swaps_fingerprint_changed_models_mid_traffic(
        self, registry_path, documents
    ):
        """A publish + reload under live traffic drops zero requests."""
        registry = open_registry(registry_path)
        spare = Path(registry_path).parent / "spare"
        with running_server(registry_path) as (server, base):
            stop = threading.Event()
            outcomes = []

            def hammer():
                index = 0
                while not stop.is_set():
                    try:
                        payload = fetch_with_retry(
                            f"{base}/models/alpha/classify",
                            data=documents[index % len(documents)].encode("utf-8"),
                            method="POST",
                            attempts=1,
                        )
                        outcomes.append(("ok", payload["version"]))
                    except Exception as error:  # noqa: BLE001 - recorded
                        outcomes.append(("error", repr(error)))
                    index += 1

            clients = [threading.Thread(target=hammer) for _ in range(4)]
            for client in clients:
                client.start()
            time.sleep(0.3)
            registry.publish("alpha", spare)
            reloaded = fetch_with_retry(f"{base}/reload", data=b"", method="POST")
            assert reloaded["reloaded"]["swapped"] == ["alpha"]
            time.sleep(0.3)
            stop.set()
            for client in clients:
                client.join(timeout=30)

            dropped = [outcome for outcome in outcomes if outcome[0] == "error"]
            assert outcomes and not dropped
            versions = {version for _, version in outcomes}
            # traffic crossed the swap: both versions answered, none failed
            assert versions == {1, 2}
            stats = fetch_with_retry(f"{base}/models/alpha/stats")
            assert stats["version"] == 2
            assert stats["reloads"] == 1
            assert stats["requests"] == len(outcomes)
        # leave the registry as the other tests expect it
        registry.retire("alpha", 2)

    def test_identical_fingerprint_republish_swaps_nothing(self, registry_path):
        registry = open_registry(registry_path)
        with running_server(registry_path) as (server, base):
            registry.publish("beta", registry.active("beta").directory)
            reloaded = fetch_with_retry(f"{base}/reload", data=b"", method="POST")
            assert reloaded["reloaded"] == {
                "swapped": [], "added": [], "removed": []
            }

    def test_poll_interval_reloads_without_a_call(
        self, registry_path, documents
    ):
        registry = open_registry(registry_path)
        spare = Path(registry_path).parent / "spare"
        with running_server(registry_path, poll_interval=0.1) as (server, base):
            before = fetch_with_retry(f"{base}/models/alpha/stats")
            assert before["version"] == 1
            record = registry.publish("alpha", spare)
            deadline = time.time() + 10
            while time.time() < deadline:
                stats = fetch_with_retry(f"{base}/models/alpha/stats")
                if stats["version"] == record.version:
                    break
                time.sleep(0.05)
            assert stats["version"] == record.version
            assert stats["fingerprint"] == model_fingerprint(spare)
        registry.retire("alpha", record.version)


class TestDrain:
    def test_drain_finishes_inflight_and_refuses_new_work(
        self, registry_path, documents
    ):
        with running_server(registry_path) as (server, base):
            results = []

            def slow_burst():
                for index in range(5):
                    results.append(
                        fetch_with_retry(
                            f"{base}/models/alpha/classify",
                            data=documents[index].encode("utf-8"),
                            method="POST",
                        )
                    )

            burst = threading.Thread(target=slow_burst)
            burst.start()
            burst.join(timeout=30)
            server.shutdown_threadsafe()
            deadline = time.time() + 10
            while time.time() < deadline and not server._draining:
                time.sleep(0.01)
            # every request that was answered, was answered completely
            assert len(results) == 5
            assert all(payload["model"] == "alpha" for payload in results)
            with pytest.raises(urllib.error.URLError):
                request = urllib.request.Request(
                    f"{base}/models/alpha/classify",
                    data=documents[0].encode("utf-8"),
                    method="POST",
                )
                urllib.request.urlopen(request, timeout=2)

    def test_max_requests_drains_the_server(self, registry_path, documents):
        port = free_port()
        server = AsyncModelServer(
            ModelRouter(registry=open_registry(registry_path)),
            port=port,
            max_requests=2,
        )
        thread = threading.Thread(
            target=lambda: asyncio.run(server.run(install_signal_handlers=False)),
            daemon=True,
        )
        thread.start()
        assert server.started.wait(timeout=30)
        base = f"http://127.0.0.1:{port}"
        fetch_with_retry(f"{base}/healthz")
        fetch_with_retry(
            f"{base}/models/alpha/classify",
            data=documents[0].encode("utf-8"),
            method="POST",
        )
        thread.join(timeout=30)
        assert not thread.is_alive()

    def test_sigterm_drains_the_cli_server(self, registry_path, documents):
        """The real subprocess path: SIGTERM -> graceful drain -> exit 0."""
        port = free_port()
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--registry", str(registry_path),
                "--port", str(port), "--workers", "0",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            base = f"http://127.0.0.1:{port}"
            payload = fetch_with_retry(
                f"{base}/models/alpha/classify",
                data=documents[0].encode("utf-8"),
                method="POST",
                attempts=400,
            )
            assert payload["model"] == "alpha"
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=30)
        assert process.returncode == 0, output
        assert "async router" in output


class TestWorkerPool:
    def test_pool_classify_matches_direct_classify(
        self, registry_path, documents
    ):
        registry = open_registry(registry_path)
        record = registry.active("beta")
        model = load_model(record.directory)
        expected = [model.classify(doc).to_dict() for doc in documents[:5]]
        model.close()
        clear_store_cache()
        with running_server(registry_path, workers=1) as (server, base):
            for document, reference in zip(documents[:5], expected):
                payload = fetch_with_retry(
                    f"{base}/models/beta/classify",
                    data=document.encode("utf-8"),
                    method="POST",
                )
                assert payload["cluster_id"] == reference["cluster_id"]
                assert payload["assignments"] == reference["assignments"]
            stats = fetch_with_retry(f"{base}/models/beta/stats")
            assert stats["requests"] == 5

    def test_worker_entry_points_share_the_process_cache(
        self, registry_path, documents
    ):
        record = open_registry(registry_path).active("alpha")
        single = worker_classify(
            record.directory, record.fingerprint, None, documents[0]
        )
        batch = worker_classify_batch(
            record.directory, record.fingerprint, None, documents[:2]
        )
        assert single["cluster_id"] == batch[0]["cluster_id"]
        assert len(batch) == 2
        assert batch[0]["store"] in ("off", "cold", "hit")
