"""Sim-vs-real parity and fault injection for the TCP peer transport.

The parity tests run the same seeded CXK-means fit once on the simulated
network and once with every peer as a real process over localhost TCP, and
assert bit-identical clusterings -- the core guarantee of the transport
design (the driver keeps all algorithm state, so the two paths execute the
identical control flow).

The fault-injection tests replace the worker factory with
:class:`FaultyTransport`, a reusable helper whose fake "processes" misbehave
in controlled ways (never start, never connect, die or stall after the
handshake), and assert that every failure surfaces as a
:class:`RealNetworkError` with an actionable message within the configured
deadline -- the driver must never hang.
"""

from __future__ import annotations

import socket
import threading
import time
from types import SimpleNamespace

import pytest

from repro.core.config import ClusteringConfig
from repro.core.cxkmeans import CXKMeans
from repro.core.partition import partition_equally
from repro.core.representatives import representatives_equal
from repro.network.codec import FrameKind, encode_frame, encode_hello
from repro.network.message import MessageKind
from repro.network.peer import make_peers
from repro.network.realnet import RealNetwork, RealNetworkError
from repro.similarity.item import SimilarityConfig


# --------------------------------------------------------------------------- #
# FaultyTransport: a reusable worker-factory for failure testing
# --------------------------------------------------------------------------- #
class _FakeProcess:
    """Thread-backed stand-in for a worker ``multiprocessing.Process``.

    Implements exactly the surface :class:`RealNetwork` uses (``start`` /
    ``join`` / ``is_alive`` / ``terminate`` / ``kill``).  ``join`` and
    ``terminate`` both request the fault thread to stop, so a stalled fake
    never slows down ``RealNetwork.close()``.
    """

    def __init__(self, target, stop_event: threading.Event) -> None:
        self._stop = stop_event
        self._thread = threading.Thread(target=target, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def join(self, timeout=None) -> None:
        self._stop.set()
        self._thread.join(timeout)

    def is_alive(self) -> bool:
        return self._thread.is_alive()

    def terminate(self) -> None:
        self._stop.set()

    def kill(self) -> None:
        self._stop.set()


class FaultyTransport:
    """Worker factory injecting one failure mode into every peer worker.

    Modes
    -----
    ``"dead"``
        The worker exits immediately without ever connecting -- what a
        refused port or a startup crash looks like from the driver.
    ``"never-connect"``
        The worker stays alive but never opens the connection (a stalled
        startup).
    ``"die-after-hello"``
        The worker completes the HELLO handshake, then drops the connection
        (a peer dying mid-run).
    ``"stall-after-hello"``
        The worker completes the handshake, keeps the connection open and
        never answers (a stalled peer: the round deadline must fire).

    Use as ``RealNetwork(..., worker_factory=FaultyTransport("dead"))``.
    """

    def __init__(self, mode: str) -> None:
        self.mode = mode
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    def __call__(self, spec) -> _FakeProcess:
        return _FakeProcess(lambda: self._run(spec), self._stop)

    # -- fault bodies --------------------------------------------------- #
    def _run(self, spec) -> None:
        if self.mode == "dead":
            return
        if self.mode == "never-connect":
            self._stop.wait()
            return
        connection = socket.create_connection((spec.host, spec.port), timeout=10.0)
        try:
            connection.sendall(
                encode_frame(FrameKind.HELLO, encode_hello(spec.peer_id))
            )
            if self.mode == "die-after-hello":
                return
            if self.mode == "stall-after-hello":
                self._stop.wait()
                return
            raise AssertionError(f"unknown FaultyTransport mode: {self.mode}")
        finally:
            connection.close()


def _make_network(mini_dataset, mode: str, **kwargs) -> RealNetwork:
    parts = partition_equally(mini_dataset.transactions, 2, seed=0)
    peers = make_peers(parts, [[0], [1]])
    return RealNetwork(peers, worker_factory=FaultyTransport(mode), **kwargs)


# --------------------------------------------------------------------------- #
# Fault injection
# --------------------------------------------------------------------------- #
class TestFaultInjection:
    def test_dead_worker_fails_handshake_with_exit_hint(self, mini_dataset):
        network = _make_network(mini_dataset, "dead", connect_timeout=1.0)
        started = time.perf_counter()
        with pytest.raises(RealNetworkError) as excinfo:
            network.start()
        assert time.perf_counter() - started < 30.0
        assert "never completed the HELLO handshake" in str(excinfo.value)
        assert "already exited" in str(excinfo.value)

    def test_never_connecting_worker_fails_handshake(self, mini_dataset):
        network = _make_network(mini_dataset, "never-connect", connect_timeout=1.0)
        try:
            with pytest.raises(RealNetworkError) as excinfo:
                network.start()
            assert "never completed the HELLO handshake" in str(excinfo.value)
            assert "stalled" in str(excinfo.value)
        finally:
            network.close()

    def test_worker_death_mid_round_raises_not_hangs(self, mini_dataset):
        network = _make_network(
            mini_dataset, "die-after-hello", connect_timeout=10.0, round_timeout=5.0
        )
        try:
            network.start()
            started = time.perf_counter()
            with pytest.raises(RealNetworkError) as excinfo:
                with network.round():
                    network.broadcast(0, MessageKind.GLOBAL_REPRESENTATIVES, None)
                    network.broadcast(1, MessageKind.GLOBAL_REPRESENTATIVES, None)
                    network.run_local_phases(
                        [SimpleNamespace(peer_id=0), SimpleNamespace(peer_id=1)]
                    )
            assert time.perf_counter() - started < 30.0
            assert "peer" in str(excinfo.value)
        finally:
            network.close()

    def test_stalled_worker_hits_round_deadline(self, mini_dataset):
        network = _make_network(
            mini_dataset, "stall-after-hello", connect_timeout=10.0, round_timeout=1.0
        )
        try:
            network.start()
            started = time.perf_counter()
            with pytest.raises(RealNetworkError) as excinfo:
                with network.round():
                    network.broadcast(0, MessageKind.GLOBAL_REPRESENTATIVES, None)
                    network.run_local_phases(
                        [SimpleNamespace(peer_id=0), SimpleNamespace(peer_id=1)]
                    )
            assert time.perf_counter() - started < 30.0
            assert "did not deliver" in str(excinfo.value)
            assert "network_timeout" in str(excinfo.value)
        finally:
            network.close()

    def test_send_outside_round_is_a_programming_error(self, mini_dataset):
        network = _make_network(mini_dataset, "dead")
        with pytest.raises(RuntimeError, match="no open round"):
            network.broadcast(0, MessageKind.FLAG, {"state": "done"})

    def test_closed_network_refuses_restart(self, mini_dataset):
        network = _make_network(mini_dataset, "dead")
        network.close()
        with pytest.raises(RealNetworkError, match="already closed"):
            network.start()


# --------------------------------------------------------------------------- #
# Sim-vs-real parity
# --------------------------------------------------------------------------- #
def _fit_both(dataset, peers: int, backend: str):
    """Run the same seeded fit on both transports; returns (sim, real)."""
    parts = partition_equally(dataset.transactions, peers, seed=0)
    base = ClusteringConfig(
        k=4,
        similarity=SimilarityConfig(f=0.5, gamma=0.4),
        seed=0,
        max_iterations=5,
        backend=backend,
    )
    sim_result = CXKMeans(base).fit(parts)
    real_result = CXKMeans(base.with_network("real", 120.0)).fit(parts)
    return sim_result, real_result


def _assert_bit_identical(sim_result, real_result) -> None:
    assert real_result.iterations == sim_result.iterations
    assert real_result.converged == sim_result.converged
    assert real_result.assignments(include_trash=True) == sim_result.assignments(
        include_trash=True
    )
    assert real_result.partition(include_trash=True) == sim_result.partition(
        include_trash=True
    )
    for sim_cluster, real_cluster in zip(sim_result.clusters, real_result.clusters):
        assert representatives_equal(
            sim_cluster.representative, real_cluster.representative
        )
        assert [item.item_id for item in real_cluster.representative.items] == [
            item.item_id for item in sim_cluster.representative.items
        ]


class TestSimRealParity:
    @pytest.mark.parametrize(
        "peers,backend", [(2, "numpy"), (4, "numpy"), (3, "sharded:2")]
    )
    def test_identical_clusterings(self, mini_dataset, peers, backend):
        sim_result, real_result = _fit_both(mini_dataset, peers, backend)
        _assert_bit_identical(sim_result, real_result)

    def test_accounting_predictions_match_and_measurements_exist(self, mini_dataset):
        sim_result, real_result = _fit_both(mini_dataset, 3, "numpy")
        _assert_bit_identical(sim_result, real_result)
        sim_net, real_net = sim_result.network, real_result.network
        # the NetworkStats lane of the real summary is the *prediction* and
        # must match the simulated run exactly (identical message trace)
        for key in ("rounds", "messages", "transferred_transactions",
                    "transferred_items", "transferred_units"):
            assert real_net[key] == sim_net[key], key
        assert real_net["communication_seconds"] == sim_net["communication_seconds"]
        # the measured lane only exists on the real transport
        assert "wire_bytes" not in sim_net
        assert real_net["wire_bytes"] > 0
        assert real_net["control_bytes"] > 0
        assert real_net["measured_wall_seconds"] > 0
