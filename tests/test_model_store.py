"""Round-trip, validation and warm-query tests for the fitted-model store.

``repro/core/model_store.py`` persists a fitted clustering (representatives,
config, vocabulary + collection statistics, tag-path registry, corpus-store
linkage) and serves classification queries from the reloaded model.  These
tests pin its contract:

* ``fit -> save_model -> load_model -> assign_all`` is **bit-exact** against
  the in-memory model on the python / numpy / tiled / sharded backends;
* payload encoding round-trips values exactly (hypothesis property suite:
  ordered sparse vectors, items, transactions through JSON);
* a reload of a store-backed model is a store **hit** that performs zero
  corpus compile work through load *and* classify;
* tampered manifests (format version), missing/corrupt blocks and
  unwritable directories are rejected with ``ModelStoreError`` (the CLI and
  runner degrade instead of failing the run);
* the CXK local phase narrows store-attach failures to expected errors,
  reports them as ``store_fallback`` and never recompiles an attached
  corpus (``corpus_compile_count == 0`` on the store-backed worker path).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

pytest.importorskip("numpy")

from repro.core.config import ClusteringConfig
from repro.core.cxkmeans import CXKMeans, LocalPhaseInput, run_local_phase
from repro.core.model_store import (
    MODEL_FORMAT_VERSION,
    ClusterModel,
    ModelStoreError,
    item_from_payload,
    item_payload,
    load_model,
    save_model,
    transaction_from_payload,
    transaction_payload,
    vector_from_payload,
    vector_payload,
)
from repro.core.xkmeans import XKMeans
from repro.datasets.registry import get_corpus, get_dataset
from repro.experiments.runner import run_configuration
from repro.network.mpengine import clear_process_engines, store_process_engine
from repro.similarity.corpus_store import (
    clear_store_cache,
    prepare_engine_corpus,
)
from repro.similarity.item import SimilarityConfig
from repro.text.vector import SparseVector
from repro.transactions.items import TreeTupleItem
from repro.transactions.transaction import Transaction
from repro.xmlmodel.paths import XMLPath
from repro.xmlmodel.serializer import serialize


@pytest.fixture(autouse=True)
def isolated_caches():
    """Start and end every test with empty engine and store caches."""
    clear_process_engines()
    clear_store_cache()
    yield
    clear_process_engines()
    clear_store_cache()


@pytest.fixture(scope="module")
def dblp_small():
    return get_dataset("DBLP", scale=0.2, seed=0)


@pytest.fixture(scope="module")
def dblp_documents():
    """Serialized XML of the corpus the dataset was built from."""
    return [
        serialize(tree) for tree in get_corpus("DBLP", scale=0.2, seed=0).trees
    ]


SIMILARITY = SimilarityConfig(f=0.5, gamma=0.8)


def make_config(backend: str = "numpy", **overrides) -> ClusteringConfig:
    options = dict(
        k=4, similarity=SIMILARITY, seed=0, max_iterations=3, backend=backend
    )
    options.update(overrides)
    return ClusteringConfig(**options)


def fit_and_save(dataset, directory, backend="numpy", cache_dir=None, **overrides):
    """Fit XK-means, save the model, return (config, result, in-memory rows)."""
    config = make_config(
        backend, corpus_cache_dir=str(cache_dir) if cache_dir else None, **overrides
    )
    algorithm = XKMeans(config)
    prepare_engine_corpus(
        algorithm.engine, dataset.transactions, cache_dir=cache_dir
    )
    result = algorithm.fit(dataset.transactions)
    in_memory = algorithm.engine.assign_all(
        dataset.transactions, result.representatives()
    )
    save_model(directory, result, config, dataset=dataset, engine=algorithm.engine)
    backend_object = algorithm.engine._backend
    if hasattr(backend_object, "close"):
        backend_object.close()
    return config, result, in_memory


# --------------------------------------------------------------------------- #
# Payload encoding (hypothesis round trip)
# --------------------------------------------------------------------------- #
weights = st.floats(
    min_value=1e-9, max_value=1e9, allow_nan=False, allow_infinity=False
)
vectors = st.dictionaries(st.integers(0, 999), weights, max_size=6).map(SparseVector)
labels = st.sampled_from(["article", "author", "title", "year", "venue"])
paths = st.lists(labels, min_size=1, max_size=3).map(
    lambda steps: XMLPath(tuple(steps))
)
answers = st.text(
    alphabet="abcdefghij XML&<>'\"0123456789", min_size=0, max_size=20
)
items = st.builds(
    TreeTupleItem,
    item_id=st.integers(-1, 500),
    path=paths,
    answer=answers,
    terms=st.lists(
        st.text(alphabet="abcdefg", min_size=1, max_size=6), max_size=4
    ).map(tuple),
    vector=vectors,
)
transactions = st.builds(
    Transaction,
    transaction_id=st.text(alphabet="abc#0123-", min_size=1, max_size=12),
    items=st.lists(items, max_size=5).map(tuple),
    doc_id=st.text(alphabet="abc-", max_size=8),
    tuple_id=st.text(alphabet="abc#-", max_size=8),
)


class TestPayloadRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(vector=vectors)
    def test_vector_payload_round_trips_exactly(self, vector):
        decoded = vector_from_payload(
            json.loads(json.dumps(vector_payload(vector)))
        )
        # identical values AND identical iteration order: dot products
        # accumulate in insertion order on the reference backend
        assert list(decoded.items()) == list(vector.items())

    @settings(max_examples=50, deadline=None)
    @given(item=items)
    def test_item_payload_round_trips_exactly(self, item):
        decoded = item_from_payload(json.loads(json.dumps(item_payload(item))))
        assert decoded == item
        assert decoded.terms == item.terms
        assert list(decoded.vector.items()) == list(item.vector.items())

    @settings(max_examples=50, deadline=None)
    @given(transaction=transactions)
    def test_transaction_payload_round_trips_exactly(self, transaction):
        decoded = transaction_from_payload(
            json.loads(json.dumps(transaction_payload(transaction)))
        )
        assert decoded == transaction
        assert decoded.items == transaction.items
        assert decoded.doc_id == transaction.doc_id
        assert decoded.tuple_id == transaction.tuple_id
        for ours, theirs in zip(decoded.items, transaction.items):
            assert list(ours.vector.items()) == list(theirs.vector.items())


# --------------------------------------------------------------------------- #
# fit -> save -> load -> assign_all bit-exactness (acceptance)
# --------------------------------------------------------------------------- #
class TestRoundTrip:
    @pytest.mark.parametrize(
        "backend", ["python", "numpy", "numpy:block=64", "sharded:2"]
    )
    def test_reloaded_model_assigns_bit_exactly(
        self, dblp_small, tmp_path, backend
    ):
        config, result, in_memory = fit_and_save(
            dblp_small, tmp_path / "model", backend=backend
        )
        model = load_model(tmp_path / "model")
        try:
            assert model.assign_all(dblp_small.transactions) == in_memory
            assert model.representatives == result.representatives()
        finally:
            model.close()

    def test_manifest_round_trips_the_config(self, dblp_small, tmp_path):
        config, _, _ = fit_and_save(
            dblp_small,
            tmp_path / "model",
            backend="numpy",
            batch_block_items=64,
            refine_workers=2,
            max_representative_items=11,
        )
        model = load_model(tmp_path / "model")
        loaded = model.config
        assert loaded.k == config.k
        assert loaded.similarity == config.similarity
        assert loaded.seed == config.seed
        assert loaded.max_iterations == config.max_iterations
        assert loaded.max_representative_items == 11
        assert loaded.backend == config.backend
        assert loaded.batch_block_items == 64
        assert loaded.refine_workers == 2
        assert loaded.effective_backend == config.effective_backend

    def test_backend_override_serves_bit_exactly(self, dblp_small, tmp_path):
        _, _, in_memory = fit_and_save(dblp_small, tmp_path / "model")
        model = load_model(tmp_path / "model", backend="python")
        assert model.engine.backend_name == "python"
        assert model.assign_all(dblp_small.transactions) == in_memory

    def test_save_without_dataset_still_assigns_exactly(
        self, dblp_small, tmp_path
    ):
        # representatives + config alone are enough for assign_all parity;
        # the vocabulary block only powers content-aware classify
        config = make_config("numpy")
        algorithm = XKMeans(config)
        algorithm.engine.backend.compile_corpus(dblp_small.transactions)
        result = algorithm.fit(dblp_small.transactions)
        in_memory = algorithm.engine.assign_all(
            dblp_small.transactions, result.representatives()
        )
        save_model(tmp_path / "bare", result, config)
        model = load_model(tmp_path / "bare")
        assert model.assign_all(dblp_small.transactions) == in_memory
        assert model.stats()["vocabulary"] == 0


# --------------------------------------------------------------------------- #
# Warm store path: zero compile work through load and classify
# --------------------------------------------------------------------------- #
class TestWarmStorePath:
    def test_store_hit_load_and_classify_compile_nothing(
        self, dblp_small, dblp_documents, tmp_path
    ):
        _, _, in_memory = fit_and_save(
            dblp_small, tmp_path / "model", cache_dir=tmp_path / "cache"
        )
        clear_store_cache()
        model = load_model(tmp_path / "model")
        assert model.store_status == "hit"
        assert model.assign_all(dblp_small.transactions) == in_memory
        for document in dblp_documents[:5]:
            model.classify(document)
        stats = model.stats()
        assert stats["corpus_compile_count"] == 0
        assert stats["queries"] == 5

    def test_missing_store_degrades_to_cold_with_exact_assignments(
        self, dblp_small, tmp_path
    ):
        _, _, in_memory = fit_and_save(
            dblp_small, tmp_path / "model", cache_dir=tmp_path / "cache"
        )
        clear_store_cache()
        manifest = json.loads((tmp_path / "model" / "model.json").read_text())
        store_dir = Path(manifest["corpus"]["store_dir"])
        (store_dir / "manifest.json").unlink()
        model = load_model(tmp_path / "model")
        assert model.store_status == "cold"
        assert model.assign_all(dblp_small.transactions) == in_memory

    def test_classify_parity_python_vs_numpy(
        self, dblp_small, dblp_documents, tmp_path
    ):
        fit_and_save(dblp_small, tmp_path / "model")
        reference = load_model(tmp_path / "model", backend="python")
        vectorised = load_model(tmp_path / "model", backend="numpy")
        for document in dblp_documents[:8]:
            ours = vectorised.classify(document)
            theirs = reference.classify(document)
            assert (ours.cluster_id, ours.score) == (
                theirs.cluster_id,
                theirs.score,
            )
            assert ours.assignments == theirs.assignments

    def test_classify_of_unknown_vocabulary_is_robust(
        self, dblp_small, tmp_path
    ):
        fit_and_save(dblp_small, tmp_path / "model")
        model = load_model(tmp_path / "model")
        unknown = "<dblp><article><zzz>qqqq wwww</zzz></article></dblp>"
        outcome = model.classify(unknown, doc_id="query")
        assert outcome.doc_id == "query"
        assert outcome.transactions >= 1
        assert outcome.cluster_id >= -1
        # deterministic across repeated queries
        again = model.classify(unknown, doc_id="query")
        assert (again.cluster_id, again.score) == (
            outcome.cluster_id,
            outcome.score,
        )


# --------------------------------------------------------------------------- #
# Validation: version, corruption, unwritable directories
# --------------------------------------------------------------------------- #
class TestValidation:
    def test_bumped_format_version_is_rejected(self, dblp_small, tmp_path):
        fit_and_save(dblp_small, tmp_path / "model")
        manifest_path = tmp_path / "model" / "model.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = MODEL_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ModelStoreError, match="format version"):
            load_model(tmp_path / "model")

    def test_missing_manifest_marks_a_crash_truncated_save(
        self, dblp_small, tmp_path
    ):
        fit_and_save(dblp_small, tmp_path / "model")
        (tmp_path / "model" / "model.json").unlink()
        with pytest.raises(ModelStoreError, match="missing"):
            load_model(tmp_path / "model")

    @pytest.mark.parametrize(
        "victim", ["representatives.json", "vocabulary.json", "registries.json"]
    )
    def test_missing_data_file_is_rejected(self, dblp_small, tmp_path, victim):
        fit_and_save(dblp_small, tmp_path / "model")
        (tmp_path / "model" / victim).unlink()
        with pytest.raises(ModelStoreError, match="missing"):
            load_model(tmp_path / "model")

    def test_corrupted_representatives_block_is_rejected(
        self, dblp_small, tmp_path
    ):
        fit_and_save(dblp_small, tmp_path / "model")
        (tmp_path / "model" / "representatives.json").write_text("{ truncated")
        with pytest.raises(ModelStoreError, match="representatives.json"):
            load_model(tmp_path / "model")

    def test_corrupted_vocabulary_block_is_rejected(self, dblp_small, tmp_path):
        fit_and_save(dblp_small, tmp_path / "model")
        (tmp_path / "model" / "vocabulary.json").write_text(
            json.dumps({"terms": ["a"], "total_tcus": "not-a-number"})
        )
        with pytest.raises(ModelStoreError, match="vocabulary"):
            load_model(tmp_path / "model")

    def test_recovery_by_resaving_over_a_corrupt_directory(
        self, dblp_small, tmp_path
    ):
        config, result, in_memory = fit_and_save(dblp_small, tmp_path / "model")
        (tmp_path / "model" / "representatives.json").write_text("{ truncated")
        save_model(tmp_path / "model", result, config, dataset=dblp_small)
        model = load_model(tmp_path / "model")
        assert model.assign_all(dblp_small.transactions) == in_memory

    def test_unwritable_directory_raises_model_store_error(
        self, dblp_small, tmp_path
    ):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file in the way", encoding="utf-8")
        config = make_config()
        algorithm = XKMeans(config)
        algorithm.engine.backend.compile_corpus(dblp_small.transactions)
        result = algorithm.fit(dblp_small.transactions)
        with pytest.raises(ModelStoreError, match="cannot save"):
            save_model(blocker / "model", result, config, dataset=dblp_small)


# --------------------------------------------------------------------------- #
# Runner integration: auto-save + store/store_fallback run-record fields
# --------------------------------------------------------------------------- #
class TestRunnerAutoSave:
    def test_run_configuration_saves_a_servable_model(
        self, dblp_small, tmp_path
    ):
        record = run_configuration(
            dblp_small,
            goal="hybrid",
            nodes=1,
            f=0.5,
            gamma=0.8,
            seed=0,
            algorithm="xk",
            max_iterations=2,
            backend="numpy",
            save_model_dir=str(tmp_path / "model"),
        )
        assert record.model["model"] == "saved"
        assert record.store == "off"
        assert record.store_fallback == 0
        model = load_model(tmp_path / "model")
        assert isinstance(model, ClusterModel)
        assert len(model.assignment_representatives) == record.k

    def test_run_configuration_degrades_on_unwritable_model_dir(
        self, dblp_small, tmp_path
    ):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file in the way", encoding="utf-8")
        record = run_configuration(
            dblp_small,
            goal="hybrid",
            nodes=1,
            f=0.5,
            gamma=0.8,
            seed=0,
            algorithm="xk",
            max_iterations=2,
            backend="numpy",
            save_model_dir=str(blocker / "model"),
        )
        assert record.model["model"] == "error"
        assert "error" in record.model
        # the clustering itself succeeded regardless
        assert record.iterations >= 1


# --------------------------------------------------------------------------- #
# CXK store-fallback accounting + no-recompile on the worker path
# --------------------------------------------------------------------------- #
def make_phase_input(dataset, store_dir=None, backend="numpy"):
    transactions = dataset.transactions
    return LocalPhaseInput(
        peer_id=0,
        transactions=list(transactions),
        global_representatives=list(transactions[:3]),
        config=make_config(backend),
        store_dir=str(store_dir) if store_dir is not None else None,
    )


class TestStoreFallback:
    def test_poisoned_store_dir_counts_a_fallback_and_still_clusters(
        self, dblp_small, tmp_path
    ):
        engine = XKMeans(make_config()).engine
        status = prepare_engine_corpus(
            engine, dblp_small.transactions, cache_dir=tmp_path
        )
        store_dir = Path(status["directory"])
        (store_dir / "manifest.json").write_text("{ truncated")
        clear_store_cache()
        clear_process_engines()

        clean = run_local_phase(make_phase_input(dblp_small, store_dir=None))
        poisoned = run_local_phase(
            make_phase_input(dblp_small, store_dir=store_dir)
        )
        assert poisoned.store_fallback == 1
        assert clean.store_fallback == 0
        assert poisoned.assignment == clean.assignment
        assert poisoned.local_representatives == clean.local_representatives

    def test_unexpected_attach_errors_propagate(
        self, dblp_small, tmp_path, monkeypatch
    ):
        import repro.core.cxkmeans as cxkmeans_module

        def explode(*args, **kwargs):
            raise RuntimeError("not a store problem")

        monkeypatch.setattr(cxkmeans_module, "store_process_engine", explode)
        with pytest.raises(RuntimeError, match="not a store problem"):
            run_local_phase(make_phase_input(dblp_small, store_dir=tmp_path))

    def test_store_backed_worker_phase_compiles_nothing(
        self, dblp_small, tmp_path
    ):
        engine = XKMeans(make_config()).engine
        status = prepare_engine_corpus(
            engine, dblp_small.transactions, cache_dir=tmp_path
        )
        store_dir = status["directory"]
        clear_store_cache()
        clear_process_engines()

        output = run_local_phase(make_phase_input(dblp_small, store_dir=store_dir))
        assert output.store_fallback == 0
        worker_engine = store_process_engine(SIMILARITY, "numpy", store_dir)
        assert worker_engine.backend.attached_store is not None
        assert worker_engine.backend.corpus_compile_count == 0

    def test_cxk_fit_metadata_reports_zero_fallbacks_on_a_healthy_run(
        self, dblp_small
    ):
        from repro.core.partition import PartitioningScheme, partition

        parts = partition(
            dblp_small.transactions, 2, PartitioningScheme.EQUAL, seed=0
        )
        result = CXKMeans(make_config(max_iterations=2)).fit(parts)
        assert result.metadata["store_fallback"] == 0
