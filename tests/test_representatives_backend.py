"""Parity suite for the batch representative-scoring backend entry points.

The CXK-means summarisation machinery (``rank_items`` /
``generate_tree_tuple`` / ``compute_local_representative`` /
``compute_global_representative``) runs on the pluggable similarity
backend's ``rank_items_batch`` and ``score_candidates`` since the
representative-scoring extension.  Like the ``assign_all`` suite in
``test_similarity_backend.py``, these tests assert *bit-exact* (``==``)
equality between the ``python`` reference loops and the vectorized
``numpy`` engine -- blended ranks, tie-broken orderings, candidate-chain
scores, whole refinement trajectories and the final representatives --
across hand-built pools, hypothesis-generated random clusters and the
synthetic generator corpora.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.representatives import (
    RankedItem,
    compute_global_representative,
    compute_local_representative,
    generate_tree_tuple,
    rank_items,
    reference_item_ranks,
    refinement_candidates,
)
from repro.datasets.registry import get_dataset
from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.item import SimilarityConfig
from repro.similarity.transaction import SimilarityEngine
from repro.text.vector import SparseVector
from repro.transactions.items import make_synthetic_item
from repro.transactions.transaction import make_transaction
from repro.xmlmodel.paths import XMLPath

numpy = pytest.importorskip("numpy")


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def item(path: str, answer: str, vector=None):
    return make_synthetic_item(XMLPath.parse(path), answer, vector=vector)


def engines(f: float = 0.5, gamma: float = 0.8):
    """One python and one numpy engine sharing nothing but the config."""
    config = SimilarityConfig(f=f, gamma=gamma)
    return (
        SimilarityEngine(config, cache=TagPathSimilarityCache(), backend="python"),
        SimilarityEngine(config, cache=TagPathSimilarityCache(), backend="numpy"),
    )


#: Small alphabet so random items overlap structurally and textually.
_TAGS = ["a", "b", "c"]
_TERMS = [1, 2, 3, 4]


@st.composite
def items_strategy(draw):
    """One random item: random path, vector or empty TCU, shared answers."""
    depth = draw(st.integers(min_value=1, max_value=3))
    steps = [draw(st.sampled_from(_TAGS)) for _ in range(depth)] + ["S"]
    if draw(st.booleans()):
        weights = {
            term: draw(st.floats(min_value=0.25, max_value=2.0))
            for term in draw(st.sets(st.sampled_from(_TERMS), min_size=1, max_size=3))
        }
        vector = SparseVector(weights)
    else:
        vector = None  # empty TCU: content falls back to answer equality
    answer = draw(st.sampled_from(["alpha", "beta", "gamma delta", "42"]))
    return make_synthetic_item(XMLPath(tuple(steps)), answer, vector=vector)


@st.composite
def transactions_strategy(draw, min_items: int = 0, max_items: int = 5):
    count = draw(st.integers(min_value=min_items, max_value=max_items))
    items = [draw(items_strategy()) for _ in range(count)]
    return make_transaction(f"tr{draw(st.integers(0, 10_000))}", items)


_CONFIGS = st.tuples(
    st.sampled_from([0.0, 0.2, 0.5, 0.8, 1.0]),
    st.sampled_from([0.0, 0.5, 0.8, 1.0]),
)


# --------------------------------------------------------------------------- #
# Ranking parity
# --------------------------------------------------------------------------- #
class TestRankParity:
    @settings(max_examples=40, deadline=None)
    @given(pool=st.lists(items_strategy(), max_size=12), config=_CONFIGS)
    def test_rank_items_batch_is_bit_exact(self, pool, config):
        f, gamma = config
        python_engine, numpy_engine = engines(f=f, gamma=gamma)
        assert numpy_engine.rank_items_batch(pool) == python_engine.rank_items_batch(
            pool
        )

    @settings(max_examples=25, deadline=None)
    @given(pool=st.lists(items_strategy(), max_size=10), config=_CONFIGS)
    def test_rank_items_ordering_and_tie_breaks_coincide(self, pool, config):
        """Full RankedItem lists (rank, sort order, tie-breaks) coincide."""
        f, gamma = config
        python_engine, numpy_engine = engines(f=f, gamma=gamma)
        assert rank_items(pool, numpy_engine) == rank_items(pool, python_engine)

    @settings(max_examples=15, deadline=None)
    @given(
        pool=st.lists(items_strategy(), min_size=1, max_size=8),
        weight_values=st.lists(
            st.floats(min_value=0.5, max_value=20.0), min_size=8, max_size=8
        ),
        config=_CONFIGS,
    )
    def test_weighted_ranks_coincide(self, pool, weight_values, config):
        """The global-representative weighting path is bit-exact as well."""
        f, gamma = config
        python_engine, numpy_engine = engines(f=f, gamma=gamma)
        weights = dict(zip(pool, weight_values))
        assert rank_items(pool, numpy_engine, weights=weights) == rank_items(
            pool, python_engine, weights=weights
        )

    def test_python_backend_delegates_to_the_reference_loops(self):
        python_engine, _ = engines()
        pool = [item("r.a.S", "x", SparseVector({1: 1.0})), item("r.b.S", "y")]
        assert python_engine.rank_items_batch(pool) == reference_item_ranks(
            pool, python_engine
        )

    def test_empty_pool(self):
        python_engine, numpy_engine = engines()
        assert python_engine.rank_items_batch([]) == []
        assert numpy_engine.rank_items_batch([]) == []


# --------------------------------------------------------------------------- #
# Candidate scoring parity
# --------------------------------------------------------------------------- #
class TestScoreCandidatesParity:
    @settings(max_examples=30, deadline=None)
    @given(
        cluster=st.lists(transactions_strategy(), max_size=5),
        candidates=st.lists(transactions_strategy(), max_size=4),
        config=_CONFIGS,
    )
    def test_score_candidates_is_bit_exact(self, cluster, candidates, config):
        f, gamma = config
        python_engine, numpy_engine = engines(f=f, gamma=gamma)
        python_scores = python_engine.score_candidates(cluster, candidates)
        numpy_scores = numpy_engine.score_candidates(cluster, candidates)
        assert numpy_scores == python_scores

    def test_empty_candidate_list(self):
        python_engine, numpy_engine = engines()
        cluster = [make_transaction("t", [item("r.a.S", "x")])]
        assert python_engine.score_candidates(cluster, []) == []
        assert numpy_engine.score_candidates(cluster, []) == []

    def test_empty_cluster_scores_zero(self):
        python_engine, numpy_engine = engines()
        candidates = [make_transaction("c", [item("r.a.S", "x")])]
        assert numpy_engine.score_candidates([], candidates) == [0.0]
        # the reference generator-sum starts from int 0; values still compare
        assert python_engine.score_candidates([], candidates) == [0.0]


# --------------------------------------------------------------------------- #
# Refinement-trajectory and representative parity
# --------------------------------------------------------------------------- #
class TestRefinementParity:
    @settings(max_examples=25, deadline=None)
    @given(
        cluster=st.lists(
            transactions_strategy(min_items=1), min_size=1, max_size=5
        ),
        config=_CONFIGS,
    )
    def test_refinement_trajectories_are_identical(self, cluster, config):
        """Chain, per-step scores and final representative all coincide."""
        f, gamma = config
        python_engine, numpy_engine = engines(f=f, gamma=gamma)
        pool = [entry for transaction in cluster for entry in transaction.items]
        ranked_python = rank_items(pool, python_engine)
        ranked_numpy = rank_items(pool, numpy_engine)
        assert ranked_numpy == ranked_python

        max_length = max(len(transaction) for transaction in cluster)
        chain = refinement_candidates(ranked_python, max_length)
        candidates = [make_transaction("rep", items) for items in chain]
        assert numpy_engine.score_candidates(
            cluster, candidates
        ) == python_engine.score_candidates(cluster, candidates)

        rep_python = generate_tree_tuple(ranked_python, cluster, python_engine)
        rep_numpy = generate_tree_tuple(ranked_numpy, cluster, numpy_engine)
        assert rep_numpy.items == rep_python.items

    @settings(max_examples=20, deadline=None)
    @given(
        cluster=st.lists(transactions_strategy(), max_size=5),
        config=_CONFIGS,
        max_items=st.sampled_from([None, 1, 2]),
    )
    def test_local_representative_parity(self, cluster, config, max_items):
        f, gamma = config
        python_engine, numpy_engine = engines(f=f, gamma=gamma)
        rep_python = compute_local_representative(
            cluster, python_engine, max_items=max_items
        )
        rep_numpy = compute_local_representative(
            cluster, numpy_engine, max_items=max_items
        )
        assert rep_numpy.items == rep_python.items

    @settings(max_examples=20, deadline=None)
    @given(
        locals_=st.lists(
            st.tuples(
                transactions_strategy(),
                st.integers(min_value=0, max_value=50),
            ),
            min_size=1,
            max_size=4,
        ),
        config=_CONFIGS,
    )
    def test_global_representative_parity(self, locals_, config):
        f, gamma = config
        python_engine, numpy_engine = engines(f=f, gamma=gamma)
        rep_python = compute_global_representative(locals_, python_engine)
        rep_numpy = compute_global_representative(locals_, numpy_engine)
        assert rep_numpy.items == rep_python.items


# --------------------------------------------------------------------------- #
# Corpus-level parity (generator corpora) and seeded refinement runs
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def dblp_small():
    return get_dataset("DBLP", scale=0.2, seed=0)


class TestCorpusRepresentativeParity:
    @pytest.mark.parametrize("f,gamma", [(0.0, 0.5), (0.5, 0.8), (1.0, 0.9)])
    def test_cluster_representatives_on_generator_corpus(self, dblp_small, f, gamma):
        python_engine, numpy_engine = engines(f=f, gamma=gamma)
        transactions = dblp_small.transactions
        numpy_engine.backend.compile_corpus(transactions)
        for start in (0, 10, 20):
            cluster = transactions[start : start + 10]
            rep_python = compute_local_representative(cluster, python_engine)
            rep_numpy = compute_local_representative(cluster, numpy_engine)
            assert rep_numpy.items == rep_python.items

    def test_global_merge_on_generator_corpus(self, dblp_small):
        python_engine, numpy_engine = engines(f=0.5, gamma=0.8)
        transactions = dblp_small.transactions
        weighted = []
        for peer in range(3):
            share = transactions[peer::3]
            weighted.append(
                (compute_local_representative(share, python_engine), len(share))
            )
        rep_python = compute_global_representative(weighted, python_engine)
        rep_numpy = compute_global_representative(weighted, numpy_engine)
        assert rep_numpy.items == rep_python.items

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seeded_refinement_trajectories_across_random_clusters(
        self, dblp_small, seed
    ):
        """Different random partitions of the corpus (per seed) refine to
        bit-identical representatives under both backends."""
        import random

        rng = random.Random(seed)
        transactions = list(dblp_small.transactions)
        rng.shuffle(transactions)
        python_engine, numpy_engine = engines(f=0.4, gamma=0.8)
        cluster = transactions[:12]
        pool = [entry for transaction in cluster for entry in transaction.items]
        assert numpy_engine.rank_items_batch(pool) == python_engine.rank_items_batch(
            pool
        )
        rep_python = compute_local_representative(cluster, python_engine)
        rep_numpy = compute_local_representative(cluster, numpy_engine)
        assert rep_numpy.items == rep_python.items


# --------------------------------------------------------------------------- #
# Behaviour of the new entry points
# --------------------------------------------------------------------------- #
class TestEntryPointBehaviour:
    def test_generate_tree_tuple_scores_in_progressive_blocks(self):
        """The refinement scores its chain through engine.score_candidates in
        blocks, never one candidate at a time per call."""
        engine, _ = engines(f=1.0, gamma=0.5)
        pool = [item(f"r.p{i}.S", f"v{i}") for i in range(6)]
        cluster = [make_transaction("t", pool)]
        calls = []
        original = engine.score_candidates

        def recording(cluster_arg, candidates):
            calls.append(len(candidates))
            return original(cluster_arg, candidates)

        engine.score_candidates = recording  # type: ignore[method-assign]
        generate_tree_tuple(rank_items(pool, engine), cluster, engine)
        assert calls  # went through the batched entry point
        assert sum(calls) >= 1 and all(size >= 1 for size in calls)

    def test_scripted_tie_keeps_first_best_on_both_backends(self):
        """First-best-wins is backend-independent: scripted equal scores make
        both backends return the first candidate of the chain."""
        for backend in ("python", "numpy"):
            engine = SimilarityEngine(
                SimilarityConfig(f=1.0, gamma=0.9), backend=backend
            )
            x = item("r.a.S", "alpha")
            y = item("r.b.S", "beta")
            members = [
                make_transaction("m1", [x, x]),
                make_transaction("m2", [y, y]),
            ]
            ranked = [RankedItem(item=x, rank=2.0), RankedItem(item=y, rank=1.0)]
            rep = generate_tree_tuple(ranked, members, engine)
            assert [(str(i.path), i.answer) for i in rep.items] == [
                ("r.a.S", "alpha")
            ]
