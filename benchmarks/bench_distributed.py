"""Benchmark D1 -- the real TCP transport vs. the simulated network.

Runs the same seeded CXK-means fit twice -- once on the simulated network
(sequential peers, cost-model timing) and once with every peer as a real
process over localhost TCP -- and reports:

* wall-clock of both fits (the real transport pays process spawn and wire
  serialisation; it buys genuinely parallel local phases),
* bit-exact parity of the two clusterings (the transport's core guarantee),
* the measured wire traffic (``wire_bytes`` / ``control_bytes``) next to
  the cost model's *predicted* communication seconds for the identical
  message trace.

Usage::

    PYTHONPATH=src python benchmarks/bench_distributed.py --quick --json out.json
    PYTHONPATH=src python benchmarks/bench_distributed.py --peers 5 --scale 0.5
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

# script-local sibling module (benchmarks/ is sys.path[0] when a bench
# script runs standalone): the shared --json report writer
from benchjson import BenchReport

from repro.core.config import ClusteringConfig
from repro.core.cxkmeans import CXKMeans
from repro.core.partition import partition_equally
from repro.datasets.registry import cluster_count, get_dataset
from repro.evaluation.reporting import format_table
from repro.similarity.item import SimilarityConfig


def _fit(config: ClusteringConfig, parts) -> tuple:
    """Fit CXK-means on *parts*; returns (result, wall seconds)."""
    started = time.perf_counter()
    result = CXKMeans(config).fit(parts)
    return result, time.perf_counter() - started


def _parity(sim_result, real_result) -> bool:
    """Bit-exact parity of the two clusterings."""
    if sim_result.assignments(include_trash=True) != real_result.assignments(
        include_trash=True
    ):
        return False
    sim_reps = [
        [item.item_id for item in cluster.representative.items]
        for cluster in sim_result.clusters
    ]
    real_reps = [
        [item.item_id for item in cluster.representative.items]
        for cluster in real_result.clusters
    ]
    return sim_reps == real_reps


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--corpus", default="DBLP", help="synthetic corpus name")
    parser.add_argument("--scale", type=float, default=0.5, help="corpus scale factor")
    parser.add_argument("--peers", type=int, default=3, help="number of peers")
    parser.add_argument("--backend", default="numpy", help="similarity backend spec")
    parser.add_argument("--f", type=float, default=0.5, help="structure/content blend")
    parser.add_argument("--gamma", type=float, default=0.4, help="gamma threshold")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--max-iterations", type=int, default=4, help="maximum collaborative rounds"
    )
    parser.add_argument(
        "--network-timeout",
        type=float,
        default=120.0,
        help="per-round deadline of the real transport (seconds)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller corpus and fewer iterations",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write a machine-readable report (benchjson schema) to PATH",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.scale = min(args.scale, 0.3)
        args.max_iterations = min(args.max_iterations, 3)

    dataset = get_dataset(args.corpus, scale=args.scale, seed=args.seed)
    k = cluster_count(args.corpus, "hybrid")
    parts = partition_equally(dataset.transactions, args.peers, seed=args.seed)
    base = ClusteringConfig(
        k=k,
        similarity=SimilarityConfig(f=args.f, gamma=args.gamma),
        seed=args.seed,
        max_iterations=args.max_iterations,
        backend=args.backend,
    )

    sim_result, sim_seconds = _fit(base, parts)
    real_result, real_seconds = _fit(
        base.with_network("real", args.network_timeout), parts
    )
    parity = _parity(sim_result, real_result)
    real_net = real_result.network

    report = BenchReport(
        "bench_distributed",
        corpus=args.corpus,
        scale=args.scale,
        peers=args.peers,
        k=k,
        transactions=len(dataset.transactions),
        seed=args.seed,
        max_iterations=args.max_iterations,
        quick=args.quick,
    )
    report.record(
        backend=args.backend,
        op="fit_sim",
        size=len(dataset.transactions),
        seconds=sim_seconds,
        parity=None,
        peers=args.peers,
        iterations=sim_result.iterations,
        predicted_seconds=sim_result.network["simulated_seconds"],
    )
    report.record(
        backend=args.backend,
        op="fit_real",
        size=len(dataset.transactions),
        seconds=real_seconds,
        parity=parity,
        peers=args.peers,
        iterations=real_result.iterations,
        wire_bytes=real_net["wire_bytes"],
        control_bytes=real_net["control_bytes"],
        measured_wall_seconds=real_net["measured_wall_seconds"],
        predicted_seconds=real_net["simulated_seconds"],
        predicted_communication_seconds=real_net["communication_seconds"],
    )

    print()
    print(
        format_table(
            ["transport", "wall s", "iterations", "wire bytes", "parity"],
            [
                ["sim", f"{sim_seconds:.3f}", sim_result.iterations, "-", "-"],
                [
                    "real",
                    f"{real_seconds:.3f}",
                    real_result.iterations,
                    int(real_net["wire_bytes"]),
                    parity,
                ],
            ],
            title=(
                f"Distributed transport -- {args.corpus} scale={args.scale}, "
                f"{args.peers} peers, k={k} ({args.backend})"
            ),
        )
    )
    print(
        "predicted communication: "
        f"{real_net['communication_seconds']:.4f}s over "
        f"{int(real_net['messages'])} messages; measured wire: "
        f"{int(real_net['wire_bytes'])} B algorithm + "
        f"{int(real_net['control_bytes'])} B control in "
        f"{real_net['measured_wall_seconds']:.3f}s of round wall-clock"
    )
    if args.json:
        report.write(args.json)
    if not parity:
        print("PARITY FAILURE: sim and real clusterings differ", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
