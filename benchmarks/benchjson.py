"""Shared machine-readable benchmark report writer (``--json`` support).

Every standalone ``bench_*.py`` script emits the same stable schema through
:class:`BenchReport`, so CI jobs, the ``BENCH_*.json`` trajectory and any
downstream tooling consume one artifact format instead of scraping the
human-readable stdout tables.  The schema is deliberately small and
forward-compatible:

.. code-block:: json

    {
      "schema": "repro-bench/1",
      "script": "bench_backend",
      "metadata": {"corpus": "DBLP", "scale": 0.35, "quick": true, ...},
      "records": [
        {
          "backend": "numpy",          // backend spec the row measured
          "op": "assign_all",          // operation / benchmark section
          "size": 83,                  // problem size (rows, clusters, ...)
          "seconds": 0.0123,           // best wall-clock seconds
          "speedup": 9.9,              // over the measured python reference
                                       // backend; null for the python row
                                       // itself AND whenever python was not
                                       // benchmarked (never a ratio against
                                       // some other backend -- an absent
                                       // baseline is an explicit null, not
                                       // a misleading number).  Rows whose
                                       // op documents another baseline
                                       // (e.g. refinement_sharded vs. its
                                       // serial twin) are the exception.
          "parity": true               // verified identical results (null
                                       // when no parity check applies)
        }
      ]
    }

Consumers must ignore unknown keys (records may carry extras such as
``workers``); the six core record fields are stable.  Run this module as a
script to validate artifacts -- a file may hold either one report object
or a JSON array of them (the committed ``BENCH_*.json`` trajectory
format, one entry appended per recorded run)::

    python benchmarks/benchjson.py out1.json BENCH_backend.json
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List, Optional

#: Schema identifier embedded in (and required of) every report.
SCHEMA = "repro-bench/1"

#: The stable core fields every record carries.
RECORD_FIELDS = ("backend", "op", "size", "seconds", "speedup", "parity")


class BenchReport:
    """Collects benchmark records and writes the shared JSON schema.

    Parameters
    ----------
    script:
        Name of the emitting benchmark (e.g. ``"bench_backend"``).
    **metadata:
        Arbitrary JSON-serialisable run context (corpus, scale, flags ...)
        stored once at the top level instead of per record.
    """

    def __init__(self, script: str, **metadata: Any) -> None:
        self.script = script
        self.metadata: Dict[str, Any] = dict(metadata)
        self.records: List[Dict[str, Any]] = []

    def record(
        self,
        *,
        backend: str,
        op: str,
        size: int,
        seconds: float,
        speedup: Optional[float] = None,
        parity: Optional[bool] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        """Append one measurement row and return it.

        The six core fields are keyword-only so call sites stay readable;
        ``extra`` keys (e.g. ``workers=4``) ride along for consumers that
        know them and are ignored by those that don't.
        """
        row: Dict[str, Any] = {
            "backend": backend,
            "op": op,
            "size": int(size),
            "seconds": float(seconds),
            "speedup": None if speedup is None else float(speedup),
            "parity": parity,
        }
        row.update(extra)
        self.records.append(row)
        return row

    def as_dict(self) -> Dict[str, Any]:
        """The complete report as a JSON-serialisable dictionary."""
        return {
            "schema": SCHEMA,
            "script": self.script,
            "metadata": self.metadata,
            "records": self.records,
        }

    def write(self, path: str) -> None:
        """Write the report to *path* (pretty-printed, trailing newline)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"bench json: wrote {len(self.records)} records to {path}")


def reference_speedup(
    seconds_by_backend: Dict[str, float],
    backend: str,
    reference: str = "python",
) -> Optional[float]:
    """Speedup of *backend* over the measured *reference*, or ``None``.

    The single speedup-baseline policy of every bench script's JSON
    records: a ratio is reported only when the reference backend was
    actually benchmarked in the same run.  ``None`` (an explicit null in
    the artifact) is returned for the reference row itself, when the
    reference was excluded via ``--backends`` (no baseline exists -- a
    ratio against whatever backend happened to run first would be
    misleading), and for degenerate zero timings.
    """
    baseline = seconds_by_backend.get(reference)
    own = seconds_by_backend.get(backend)
    if backend == reference or baseline is None or own is None or not own:
        return None
    return baseline / own


def validate_report(data: Any) -> List[str]:
    """Return every schema violation in *data* (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(data, dict):
        return [f"report must be a JSON object, got {type(data).__name__}"]
    if data.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {data.get('schema')!r}")
    if not isinstance(data.get("script"), str) or not data.get("script"):
        errors.append("script must be a non-empty string")
    if not isinstance(data.get("metadata"), dict):
        errors.append("metadata must be an object")
    records = data.get("records")
    if not isinstance(records, list) or not records:
        return errors + ["records must be a non-empty array"]
    for index, row in enumerate(records):
        where = f"records[{index}]"
        if not isinstance(row, dict):
            errors.append(f"{where} must be an object")
            continue
        for field in RECORD_FIELDS:
            if field not in row:
                errors.append(f"{where} is missing {field!r}")
        for field in ("backend", "op"):
            if field in row and (
                not isinstance(row[field], str) or not row[field]
            ):
                errors.append(f"{where}.{field} must be a non-empty string")
        if "size" in row and (
            isinstance(row["size"], bool)
            or not isinstance(row["size"], int)
            or row["size"] < 0
        ):
            errors.append(f"{where}.size must be a non-negative integer")
        if "seconds" in row and (
            not isinstance(row["seconds"], (int, float))
            or isinstance(row["seconds"], bool)
            or row["seconds"] < 0
        ):
            errors.append(f"{where}.seconds must be a non-negative number")
        if "speedup" in row and row["speedup"] is not None and (
            not isinstance(row["speedup"], (int, float))
            or isinstance(row["speedup"], bool)
            or row["speedup"] <= 0
        ):
            errors.append(f"{where}.speedup must be null or a positive number")
        if "parity" in row and not (
            row["parity"] is None or isinstance(row["parity"], bool)
        ):
            errors.append(f"{where}.parity must be null or a boolean")
    return errors


def validate_trajectory(data: Any) -> List[str]:
    """Validate a trajectory array (the committed ``BENCH_*.json`` format).

    A trajectory is a JSON array of report objects, one appended per
    recorded run; an empty array is valid (the trajectory simply has no
    entries yet).  Returns every violation across all entries, prefixed
    with the entry index.
    """
    if not isinstance(data, list):
        return [f"trajectory must be a JSON array, got {type(data).__name__}"]
    errors: List[str] = []
    for index, entry in enumerate(data):
        errors.extend(
            f"entry[{index}]: {error}" for error in validate_report(entry)
        )
    return errors


def validate_file(path: str) -> List[str]:
    """Validate one JSON artifact on disk, returning its violations.

    The file may hold a single report object or a trajectory array of
    report objects; the two shapes are distinguished by the top-level
    JSON type.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"cannot read {path}: {error}"]
    if isinstance(data, list):
        return validate_trajectory(data)
    return validate_report(data)


def append_report(report_path: str, trajectory_path: str) -> List[str]:
    """Validate *report_path* and append it to the trajectory file.

    The single supported way of growing a committed ``BENCH_*.json``
    trajectory: the report is schema-validated first, the trajectory (an
    array of report objects; a missing file counts as an empty trajectory)
    is validated before and after the append, and nothing is written
    unless every check passes.  Returns the violations found (empty list =
    appended successfully).
    """
    try:
        with open(report_path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"cannot read {report_path}: {error}"]
    errors = [f"{report_path}: {e}" for e in validate_report(report)]
    if errors:
        return errors
    try:
        with open(trajectory_path, "r", encoding="utf-8") as handle:
            trajectory = json.load(handle)
    except FileNotFoundError:
        trajectory = []
    except (OSError, ValueError) as error:
        return [f"cannot read {trajectory_path}: {error}"]
    errors = [f"{trajectory_path}: {e}" for e in validate_trajectory(trajectory)]
    if errors:
        return errors
    trajectory.append(report)
    with open(trajectory_path, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return []


def main(argv: Optional[List[str]] = None) -> int:
    """Validate (or ``append``) the artifacts named on the command line.

    ``benchjson.py REPORT.json [...]`` validates each artifact (CI gate);
    ``benchjson.py append REPORT.json TRAJECTORY.json`` validates the
    report and appends it to the trajectory array.  Exit codes: 0 = ok,
    1 = validation failure, 2 = usage error.
    """
    paths = list(sys.argv[1:] if argv is None else argv)
    if paths and paths[0] == "append":
        if len(paths) != 3:
            print(
                "usage: python benchmarks/benchjson.py append "
                "REPORT.json TRAJECTORY.json"
            )
            return 2
        errors = append_report(paths[1], paths[2])
        if errors:
            for error in errors:
                print(f"INVALID: {error}")
            return 1
        print(f"appended {paths[1]} to {paths[2]}")
        return 0
    if not paths:
        print("usage: python benchmarks/benchjson.py REPORT.json [...]")
        return 2
    status = 0
    for path in paths:
        errors = validate_file(path)
        if errors:
            status = 1
            for error in errors:
                print(f"{path}: INVALID: {error}")
        else:
            print(f"{path}: ok ({SCHEMA})")
    return status


if __name__ == "__main__":
    sys.exit(main())
