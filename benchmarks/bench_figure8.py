"""Benchmarks E8-E9 -- Figure 8: CXK-means vs. PK-means.

Regenerates the runtime comparison between the collaborative CXK-means and
the adapted non-collaborative PK-means baseline on DBLP and IEEE, plus the
accuracy comparison discussed in Sec. 5.5.3, and checks the paper's claims:

* PK-means exchanges more data per iteration, so its runtime degrades on
  larger networks while CXK-means stays flat or keeps improving;
* the accuracies of the two algorithms are essentially comparable, with
  CXK-means slightly ahead on average (+0.03 in the paper).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.figure8 import Figure8Config, run_figure8


@pytest.mark.benchmark(group="figure8")
def test_figure8_cxk_vs_pk(benchmark, bench_profile):
    config = Figure8Config(
        datasets=("DBLP", "IEEE"),
        node_counts=bench_profile["node_counts"],
        scale=bench_profile["scale"],
        f_values=(0.5,),
        gamma=bench_profile["gamma"],
        max_iterations=bench_profile["max_iterations"],
        cost_model=bench_profile["cost_model"],
    )
    result = run_once(benchmark, run_figure8, config)
    print()
    print(result.report())

    largest = max(bench_profile["node_counts"])
    for dataset in ("DBLP", "IEEE"):
        cxk_traffic = result.traffic[dataset]["CXK-means"]
        pk_traffic = result.traffic[dataset]["PK-means"]
        # Fig. 8 driver: the non-collaborative baseline moves more
        # representatives on every network size larger than one peer.
        for nodes in cxk_traffic:
            if nodes <= 1:
                continue
            assert pk_traffic[nodes] > cxk_traffic[nodes], (
                f"{dataset}, {nodes} nodes: PK-means should exchange more data"
            )
        # On the largest network the traffic gap is substantial (the paper
        # reports a clearly larger runtime for PK-means from ~11 nodes on).
        assert pk_traffic[largest] >= 1.5 * cxk_traffic[largest]

    # Sec. 5.5.3: accuracy is comparable, CXK-means not worse on average.
    advantage = result.accuracy_advantage()
    assert advantage >= -0.05, f"CXK-means should not lose accuracy (got {advantage:+.3f})"
