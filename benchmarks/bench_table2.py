"""Benchmarks E5-E7 -- Tables 2(a)-(c): accuracy vs. nodes, unequal partitioning.

Regenerates the unequal-distribution accuracy tables and checks the paper's
claim that the additional degradation with respect to the equal distribution
stays small (the paper reports deltas between roughly 0.01 and 0.10).
"""

from __future__ import annotations

import statistics

import pytest

from benchmarks.conftest import run_once
from repro.core.partition import PartitioningScheme
from repro.experiments.table1 import AccuracyTableConfig, run_table1
from repro.experiments.table2 import equal_vs_unequal_degradation, run_table2


#: One representative f value per clustering goal (see bench_table1).
GOAL_BENCH_F = {"content": (0.2,), "hybrid": (0.5,), "structure": (0.9,)}


def _config(goal: str, bench_profile, scheme=PartitioningScheme.EQUAL):
    return AccuracyTableConfig(
        goals=(goal,),
        node_counts=bench_profile["node_counts"],
        gamma=bench_profile["gamma"],
        scale=bench_profile["scale"],
        max_iterations=bench_profile["max_iterations"],
        scheme=scheme,
        cost_model=bench_profile["cost_model"],
        f_values=GOAL_BENCH_F[goal],
    )


def _run_pair(goal: str, bench_profile):
    equal = run_table1(_config(goal, bench_profile))
    unequal = run_table2(_config(goal, bench_profile))
    return equal, unequal


def _check(goal: str, equal, unequal) -> None:
    degradation = equal_vs_unequal_degradation(equal, unequal)
    deltas = [
        delta
        for per_dataset in degradation[goal].values()
        for nodes, delta in per_dataset.items()
        if nodes > 1
    ]
    assert deltas, "no distributed configurations were compared"
    # Paper claim: the unequal distribution costs little accuracy on average
    # (0.01-0.10); allow a slightly wider band at reduced scale but require
    # the mean degradation to stay clearly bounded.
    assert statistics.fmean(deltas) <= 0.2, f"{goal}: unequal distribution degraded too much"
    for dataset, series in unequal.tables[goal].items():
        assert min(series.values()) > 0.1, f"{goal}/{dataset}: accuracy collapsed"


@pytest.mark.benchmark(group="table2")
def test_table2a_content_driven_unequal(benchmark, bench_profile):
    equal, unequal = run_once(benchmark, _run_pair, "content", bench_profile)
    print()
    print(unequal.report(table_number=2))
    _check("content", equal, unequal)


@pytest.mark.benchmark(group="table2")
def test_table2b_structure_content_driven_unequal(benchmark, bench_profile):
    equal, unequal = run_once(benchmark, _run_pair, "hybrid", bench_profile)
    print()
    print(unequal.report(table_number=2))
    _check("hybrid", equal, unequal)


@pytest.mark.benchmark(group="table2")
def test_table2c_structure_driven_unequal(benchmark, bench_profile):
    equal, unequal = run_once(benchmark, _run_pair, "structure", bench_profile)
    print()
    print(unequal.report(table_number=2))
    _check("structure", equal, unequal)
