"""Benchmark B2 -- backend and sharding speedups on representative refinement.

Measures the CXK-means summarisation machinery (``rank_items`` plus the
``GenerateTreeTuple`` candidate-chain scoring inside
``compute_local_representative``) on clusters of a synthetic generator
corpus, once per benchmarked backend (``--backends``, default
``python numpy``; ``torch`` works too when installed), and reports the
speedup of each backend over the reference (the first ``--backends``
entry).  All backends are verified to produce *identical* representatives
-- item for item -- before any timing is trusted (mirroring
``bench_backend.py``).  ``--json PATH`` additionally writes the shared
machine-readable report (see ``benchmarks/benchjson.py``).

A second section measures *cluster-sharded refinement*
(:func:`repro.network.mpengine.refine_clusters`): the same per-cluster
refinement dispatched one cluster per worker process instead of serially,
again parity-checked item for item before timing.

Run standalone (no pytest machinery needed)::

    PYTHONPATH=src python benchmarks/bench_representatives.py            # full run
    PYTHONPATH=src python benchmarks/bench_representatives.py --quick    # CI smoke

The full run uses the DBLP generator corpus at scale 1.0 and fails with a
non-zero exit status unless the numpy backend is at least ``--min-speedup``
(default 3.0) times faster on the refinement step and -- on hosts with at
least two CPUs -- the cluster-sharded refinement is at least
``--min-shard-speedup`` (default 2.0) times faster than the serial loop at
k >= 4 with ``--refine-workers`` workers; the quick run shrinks the corpus
and only reports.
"""

from __future__ import annotations

import argparse
import multiprocessing
import random
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

# script-local sibling module (benchmarks/ is sys.path[0] when a bench
# script runs standalone): the shared --json report writer
from benchjson import BenchReport, reference_speedup

from repro.core.representatives import compute_local_representative, rank_items
from repro.core.seeding import select_seed_transactions
from repro.datasets.registry import get_dataset
from repro.network.mpengine import (
    RefinementShard,
    clear_shard_executors,
    refine_clusters,
)
from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.item import SimilarityConfig
from repro.similarity.transaction import SimilarityEngine
from repro.transactions.transaction import Transaction


def _time_best(function, repeats: int) -> Tuple[float, object]:
    """Return (best wall-clock seconds, last result) over *repeats* calls."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def make_clusters(
    dataset, k: int, f: float, gamma: float, seed: int
) -> List[List[Transaction]]:
    """Assign the corpus to ``k`` seed representatives to form real clusters.

    Uses the python reference engine so the benchmarked backends both start
    from the exact same cluster memberships.
    """
    engine = SimilarityEngine(
        SimilarityConfig(f=f, gamma=gamma), cache=TagPathSimilarityCache()
    )
    transactions = dataset.transactions
    representatives = select_seed_transactions(transactions, k, random.Random(seed))
    clusters: List[List[Transaction]] = [[] for _ in range(k)]
    for transaction, (index, similarity) in zip(
        transactions, engine.assign_all(transactions, representatives)
    ):
        if similarity > 0.0:
            clusters[index].append(transaction)
    return [cluster for cluster in clusters if cluster]


def prepared_engine(
    clusters: Sequence[Sequence[Transaction]], backend: str, f: float, gamma: float
) -> SimilarityEngine:
    """Engine prepared the way the experiment driver does it: tag-path
    cache precomputed over the cluster members, corpus compiled.  Shared by
    both benchmark sections so their serial baselines stay comparable."""
    engine = SimilarityEngine(
        SimilarityConfig(f=f, gamma=gamma),
        cache=TagPathSimilarityCache(),
        backend=backend,
    )
    members = [transaction for cluster in clusters for transaction in cluster]
    engine.cache.precompute(
        {item.tag_path for transaction in members for item in transaction.items}
    )
    engine.backend.compile_corpus(members)
    return engine


def bench_refinement(
    clusters: Sequence[Sequence[Transaction]],
    backend: str,
    f: float,
    gamma: float,
    repeats: int,
) -> Tuple[float, float, List[list], List[Transaction]]:
    """Time ranking and full refinement over every cluster for one backend.

    Returns (best ranking seconds, best refinement seconds, per-cluster
    rankings, representatives) -- rankings and representatives are each
    compared across backends before any timing is trusted, so the two
    benchmark sections report parity of the outputs they actually measure.
    """
    engine = prepared_engine(clusters, backend, f, gamma)
    pools = [
        [item for transaction in cluster for item in transaction.items]
        for cluster in clusters
    ]

    def run_ranking():
        return [rank_items(pool, engine) for pool in pools]

    def run_refinement():
        return [
            compute_local_representative(cluster, engine, representative_id=f"rep:{i}")
            for i, cluster in enumerate(clusters)
        ]

    # warm-up outside the timed region (content memo, transient compiles)
    run_ranking()
    run_refinement()
    rank_seconds, rankings = _time_best(run_ranking, repeats)
    refine_seconds, representatives = _time_best(run_refinement, repeats)
    if hasattr(engine.backend, "close"):
        engine.backend.close()  # release sharded worker pools
    return rank_seconds, refine_seconds, rankings, representatives


def bench_sharded_refinement(
    clusters: Sequence[Sequence[Transaction]],
    backend: str,
    f: float,
    gamma: float,
    repeats: int,
    workers: int,
) -> Tuple[float, float, List[Transaction], List[Transaction]]:
    """Time serial vs. cluster-sharded refinement on the same backend.

    Both paths run through :func:`repro.network.mpengine.refine_clusters`
    -- the serial one with ``workers=1`` on a shared in-process engine, the
    sharded one dispatching one cluster per worker process.  The worker
    pool and the per-worker compiled corpora are warmed up outside the
    timed region (they persist across collaborative rounds in production).
    Returns (serial seconds, sharded seconds, serial representatives,
    sharded representatives).
    """
    engine = prepared_engine(clusters, backend, f, gamma)
    similarity = engine.config

    def shards() -> List[RefinementShard]:
        return [
            RefinementShard(
                cluster_index=index,
                members=list(cluster),
                similarity=similarity,
                backend=backend,
                representative_id=f"rep:{index}",
            )
            for index, cluster in enumerate(clusters)
        ]

    def run_serial():
        refined = refine_clusters(shards(), engine, workers=1)
        return [refined[index] for index in sorted(refined)]

    def run_sharded():
        refined = refine_clusters(shards(), engine, workers=workers)
        return [refined[index] for index in sorted(refined)]

    run_serial()
    run_sharded()  # warm-up: spawns the pool, compiles per-worker corpora
    serial_seconds, serial_reps = _time_best(run_serial, repeats)
    sharded_seconds, sharded_reps = _time_best(run_sharded, repeats)
    return serial_seconds, sharded_seconds, serial_reps, sharded_reps


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--corpus", default="DBLP", help="synthetic corpus name")
    parser.add_argument("--scale", type=float, default=1.0, help="corpus scale factor")
    parser.add_argument("--k", type=int, default=8, help="number of clusters")
    parser.add_argument("--f", type=float, default=0.5, help="structure/content blend")
    parser.add_argument("--gamma", type=float, default=0.8, help="gamma threshold")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--repeats", type=int, default=3, help="timed repetitions")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="required numpy-over-python speedup on the refinement step",
    )
    parser.add_argument(
        "--refine-workers",
        type=int,
        default=4,
        help="worker processes for the cluster-sharded refinement section",
    )
    parser.add_argument(
        "--shard-backend",
        default="python",
        help="in-process backend the sharded refinement section runs on",
    )
    parser.add_argument(
        "--min-shard-speedup",
        type=float,
        default=2.0,
        help="required sharded-over-serial refinement speedup at k >= 4 "
        "(enforced only on hosts with >= 2 CPUs)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small corpus, no speedup requirement",
    )
    parser.add_argument(
        "--backends",
        nargs="+",
        default=["python", "numpy"],
        help="backend specs to benchmark (first one is the reference)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write a machine-readable report (benchjson schema) to PATH",
    )
    args = parser.parse_args(argv)

    scale = 0.35 if args.quick else args.scale
    repeats = 1 if args.quick else args.repeats
    dataset = get_dataset(args.corpus, scale=scale, seed=args.seed)
    clusters = make_clusters(dataset, args.k, args.f, args.gamma, args.seed)
    print(
        f"corpus={args.corpus} scale={scale} "
        f"transactions={len(dataset.transactions)} clusters={len(clusters)} "
        f"f={args.f} gamma={args.gamma}"
    )
    if not clusters:
        print("error: the seed assignment produced no non-empty clusters")
        return 2

    backends = list(args.backends)
    reference = backends[0]
    rank_times: Dict[str, float] = {}
    refine_times: Dict[str, float] = {}
    rankings: Dict[str, List[list]] = {}
    representatives: Dict[str, List[Transaction]] = {}
    for backend in backends:
        (
            rank_times[backend],
            refine_times[backend],
            rankings[backend],
            representatives[backend],
        ) = bench_refinement(clusters, backend, args.f, args.gamma, repeats)

    # parity of each measured output: the rankings themselves for the
    # rank_items section, item-for-item representatives for refinement
    rank_parity = {
        backend: rankings[backend] == rankings[reference]
        for backend in backends[1:]
    }
    mismatches = {
        backend: [
            index
            for index, (rep_reference, rep_backend) in enumerate(
                zip(representatives[reference], representatives[backend])
            )
            if rep_reference.items != rep_backend.items
        ]
        for backend in backends[1:]
    }

    # --- cluster-sharded refinement (one cluster per worker process) ------ #
    workers = args.refine_workers
    cpus = multiprocessing.cpu_count()
    try:
        serial_s, sharded_s, serial_reps, sharded_reps = bench_sharded_refinement(
            clusters, args.shard_backend, args.f, args.gamma, repeats, workers
        )
    finally:
        clear_shard_executors()
    shard_mismatch = [
        index
        for index, (rep_serial, rep_sharded) in enumerate(
            zip(serial_reps, sharded_reps)
        )
        if rep_serial.items != rep_sharded.items
    ]
    shard_speedup = serial_s / sharded_s if sharded_s else float("inf")

    # the JSON artifact is written before any parity gate fires, so CI
    # uploads a report (with parity=false rows) even for failing runs
    if args.json:
        report = BenchReport(
            "bench_representatives",
            corpus=args.corpus,
            scale=scale,
            transactions=len(dataset.transactions),
            clusters=len(clusters),
            f=args.f,
            gamma=args.gamma,
            seed=args.seed,
            quick=args.quick,
            reference=reference,
            speedup_baseline="python",
            shard_backend=args.shard_backend,
        )
        for backend in backends:
            is_reference = backend == reference
            # speedups are over the measured python reference backend; an
            # explicit null when python was excluded via --backends (no
            # baseline exists), never a ratio against another backend
            report.record(
                backend=backend,
                op="rank_items",
                size=len(clusters),
                seconds=rank_times[backend],
                speedup=reference_speedup(rank_times, backend),
                parity=None if is_reference else rank_parity[backend],
            )
            report.record(
                backend=backend,
                op="refinement",
                size=len(clusters),
                seconds=refine_times[backend],
                speedup=reference_speedup(refine_times, backend),
                parity=None if is_reference else not mismatches[backend],
            )
        report.record(
            backend=args.shard_backend,
            op="refinement_serial",
            size=len(clusters),
            seconds=serial_s,
            workers=1,
        )
        report.record(
            backend=args.shard_backend,
            op="refinement_sharded",
            size=len(clusters),
            seconds=sharded_s,
            speedup=None if not sharded_s else serial_s / sharded_s,
            parity=not shard_mismatch,
            workers=workers,
        )
        report.write(args.json)

    for backend in backends[1:]:
        if not rank_parity[backend]:
            print(
                f"FAIL: {backend} disagrees with {reference} on the "
                "cluster item rankings"
            )
            return 1
        if mismatches[backend]:
            print(
                f"FAIL: {backend} disagrees with {reference} on the "
                f"representatives of clusters {mismatches[backend]}"
            )
            return 1
    print("parity    : identical rankings and representatives for every cluster")

    print(f"{'step':<12}" + "".join(f"{backend:>16}" for backend in backends))
    print(
        f"{'rank_items':<12}"
        + "".join(f"{rank_times[backend]:>15.4f}s" for backend in backends)
    )
    print(
        f"{'refinement':<12}"
        + "".join(f"{refine_times[backend]:>15.4f}s" for backend in backends)
    )
    for backend in backends[1:]:
        print(
            f"speedup over {reference} ({backend}): "
            f"rank_items {rank_times[reference] / rank_times[backend]:.1f}x, "
            f"refinement {refine_times[reference] / refine_times[backend]:.1f}x"
        )

    if not args.quick:
        if {"python", "numpy"} <= set(backends):
            refine_speedup = refine_times["python"] / refine_times["numpy"]
            if refine_speedup < args.min_speedup:
                print(
                    f"FAIL: numpy backend only {refine_speedup:.1f}x faster on the "
                    f"refinement step (required: {args.min_speedup:.1f}x)"
                )
                return 1
        else:
            print(
                "note: min-speedup gate skipped "
                "(requires both python and numpy in --backends)"
            )

    if shard_mismatch:
        print(
            "FAIL: serial and sharded refinement disagree on the "
            f"representatives of clusters {shard_mismatch}"
        )
        return 1
    print(
        f"\nsharded refinement parity: identical representatives "
        f"(backend={args.shard_backend}, workers={workers}, cpus={cpus})"
    )
    print(f"{'step':<12}{'serial':>12}{'sharded':>12}{'speedup':>10}")
    print(
        f"{'refinement':<12}{serial_s:>11.4f}s{sharded_s:>11.4f}s"
        f"{shard_speedup:>9.1f}x"
    )
    gate_applies = (
        not args.quick and workers >= 2 and cpus >= 2 and len(clusters) >= 4
    )
    if gate_applies and shard_speedup < args.min_shard_speedup:
        print(
            f"FAIL: cluster-sharded refinement only {shard_speedup:.1f}x faster "
            f"than serial (required: {args.min_shard_speedup:.1f}x at "
            f"k={len(clusters)} with {workers} workers)"
        )
        return 1
    if not gate_applies and not args.quick:
        print(
            "note: sharded-refinement speedup gate skipped "
            f"(workers={workers}, cpus={cpus}, k={len(clusters)}; the gate "
            "needs >= 2 workers, >= 2 CPUs and k >= 4)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
