"""Benchmark E10 -- analytic cost model vs. measured runtime curve.

Compares the saturation behaviour predicted by the Sec. 4.3.4 cost model
``f(m)`` with the empirical simulated-runtime curve of CXK-means on DBLP,
checking that both curves identify a saturation region (the analytic optimum
is a real, finite node count) and that the empirical saturation point falls
within the swept range, as observed in Sec. 5.5.1.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.datasets.registry import cluster_count, get_dataset
from repro.evaluation.reporting import format_series
from repro.experiments.ablation import cost_model_check


@pytest.mark.benchmark(group="costmodel")
def test_cost_model_saturation_point(benchmark, bench_profile):
    dataset = get_dataset("DBLP", scale=bench_profile["scale"], seed=0)
    k = cluster_count("DBLP", "hybrid")
    node_counts = bench_profile["node_counts"]

    check = run_once(
        benchmark,
        cost_model_check,
        dataset,
        k=k,
        node_counts=node_counts,
        gamma=bench_profile["gamma"],
        max_iterations=bench_profile["max_iterations"],
        cost_model=bench_profile["cost_model"],
    )
    print()
    print(format_series(check.analytic_curve, y_label="f(m) [s]", title="Analytic cost model f(m)"))
    print()
    print(format_series(check.empirical_curve, y_label="seconds", title="Measured simulated runtime"))
    print(
        f"\nanalytic optimum m* = {check.analytic_optimum:.2f}, "
        f"analytic saturation = {check.analytic_saturation}, "
        f"empirical saturation = {check.empirical_saturation}"
    )

    # the analytic optimum is a finite positive node count
    assert check.analytic_optimum > 0
    # both curves identify a saturation point inside the swept range
    assert check.analytic_saturation in node_counts
    assert check.empirical_saturation in node_counts
    # the key Fig. 7 / Sec. 5.5.1 claim: distributing the data over a few
    # peers beats the centralized configuration on the measured curve
    assert min(check.empirical_curve.values()) < check.empirical_curve[1]
    # both curves are positive and finite everywhere in the swept range
    assert all(value > 0 for value in check.analytic_curve.values())
    assert all(value > 0 for value in check.empirical_curve.values())
