"""Benchmarks A1-A2 -- ablations on the design choices called out in DESIGN.md.

* A1: sensitivity of clustering accuracy to the gamma matching threshold
  (the paper reports best settings above 0.85; at the harness' reduced scale
  the optimum may shift, so the check is on boundedness and on the fact that
  mid-range thresholds do not collapse).
* A2: value of the iterative collaboration -- CXK-means with collaboration
  cut after one exchange must not beat the fully collaborative algorithm by
  more than noise.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.datasets.registry import get_dataset
from repro.evaluation.reporting import format_table
from repro.experiments.ablation import collaborativeness_ablation, gamma_sweep


@pytest.fixture(scope="module")
def dblp(bench_profile):
    return get_dataset("DBLP", scale=bench_profile["scale"], seed=0)


@pytest.mark.benchmark(group="ablation")
def test_ablation_gamma_sweep(benchmark, bench_profile, dblp):
    gammas = (0.5, 0.6, 0.7, 0.8, 0.9)
    results = run_once(
        benchmark,
        gamma_sweep,
        dblp,
        goal="hybrid",
        gammas=gammas,
        nodes=3,
        max_iterations=bench_profile["max_iterations"],
    )
    print()
    print(
        format_table(
            ["gamma", "F-measure"],
            [[g, results[g]] for g in gammas],
            title="Ablation A1 -- gamma threshold sweep (DBLP, 3 peers, hybrid)",
        )
    )
    assert all(0.0 <= value <= 1.0 for value in results.values())
    # the sweep must not be flat-zero anywhere in the paper's useful range
    assert max(results.values()) > 0.3
    # extremely permissive matching should not beat the best threshold by a
    # wide margin (otherwise the gamma mechanism would be useless)
    assert results[0.5] <= max(results.values()) + 0.05


@pytest.mark.benchmark(group="ablation")
def test_ablation_collaborativeness(benchmark, bench_profile, dblp):
    results = run_once(
        benchmark,
        collaborativeness_ablation,
        dblp,
        goal="hybrid",
        nodes=(3, 5),
        max_iterations=bench_profile["max_iterations"],
    )
    rows = [
        [nodes, scores["collaborative"], scores["non_collaborative"],
         scores["collaborative"] - scores["non_collaborative"]]
        for nodes, scores in sorted(results.items())
    ]
    print()
    print(
        format_table(
            ["nodes", "collaborative F", "non-collaborative F", "delta"],
            rows,
            title="Ablation A2 -- value of iterative collaboration (DBLP, hybrid)",
        )
    )
    for nodes, scores in results.items():
        # the collaborative algorithm is never much worse than the frozen
        # variant; on average the paper's claim is that collaboration helps
        assert scores["collaborative"] >= scores["non_collaborative"] - 0.1
