"""Benchmarks E2-E4 -- Tables 1(a)-(c): accuracy vs. nodes, equal partitioning.

Regenerates the three accuracy sub-tables (content-, structure/content- and
structure-driven clustering) for the four synthetic corpora and checks the
paper's qualitative claims: the centralized case is the best configuration,
accuracy decreases (on average) as peers are added, and the loss at the
saturation-point node counts stays bounded.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.table1 import AccuracyTableConfig, run_table1

#: Paper-reported F-measure at the centralized case (Table 1), used in the
#: printed paper-vs-measured comparison (not asserted: our corpora are
#: synthetic re-creations, so only the ordering/shape is checked).
PAPER_CENTRALIZED_F = {
    "content": {"DBLP": 0.795, "IEEE": 0.629, "Shakespeare": 0.964, "Wikipedia": 0.834},
    "hybrid": {"DBLP": 0.803, "IEEE": 0.598, "Shakespeare": 0.772},
    "structure": {"DBLP": 0.991, "IEEE": 0.655, "Shakespeare": 0.681},
}


#: One representative f value per clustering goal (the paper averages over
#: the whole range; a single mid-range value keeps the harness fast while the
#: full grid remains available through AccuracyTableConfig.f_values).
GOAL_BENCH_F = {"content": (0.2,), "hybrid": (0.5,), "structure": (0.9,)}


def _run_goal(goal: str, bench_profile) -> AccuracyTableConfig:
    return AccuracyTableConfig(
        goals=(goal,),
        node_counts=bench_profile["node_counts"],
        gamma=bench_profile["gamma"],
        scale=bench_profile["scale"],
        max_iterations=bench_profile["max_iterations"],
        cost_model=bench_profile["cost_model"],
        f_values=GOAL_BENCH_F[goal],
    )


def _check_shapes(result, goal: str) -> None:
    for dataset, series in result.tables[goal].items():
        nodes = sorted(series)
        centralized = series[1]
        distributed_best = max(series[m] for m in nodes if m > 1)
        distributed_worst = min(series[m] for m in nodes if m > 1)
        # centralized is (close to) the upper bound
        assert centralized >= distributed_worst - 0.05, (
            f"{goal}/{dataset}: centralized case should be near the upper bound"
        )
        # accuracy never collapses to zero in the paper's node range
        assert distributed_worst > 0.15, f"{goal}/{dataset}: accuracy collapsed"
        # overall downward trend: the largest network is not better than the
        # centralized case by more than noise
        assert series[nodes[-1]] <= centralized + 0.1


@pytest.mark.benchmark(group="table1")
def test_table1a_content_driven(benchmark, bench_profile):
    result = run_once(benchmark, run_table1, _run_goal("content", bench_profile))
    print()
    print(result.report(table_number=1))
    _check_shapes(result, "content")


@pytest.mark.benchmark(group="table1")
def test_table1b_structure_content_driven(benchmark, bench_profile):
    result = run_once(benchmark, run_table1, _run_goal("hybrid", bench_profile))
    print()
    print(result.report(table_number=1))
    _check_shapes(result, "hybrid")


@pytest.mark.benchmark(group="table1")
def test_table1c_structure_driven(benchmark, bench_profile):
    result = run_once(benchmark, run_table1, _run_goal("structure", bench_profile))
    print()
    print(result.report(table_number=1))
    _check_shapes(result, "structure")
    # paper: structure-driven DBLP is the easiest setting (F ~ 0.99 at m=1);
    # the synthetic corpus keeps the four record layouts well separated, so
    # the centralized F must be high.
    assert result.tables["structure"]["DBLP"][1] >= 0.7
