"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Because the
full sweeps take minutes, the default *benchmark profile* runs a reduced but
faithful version (smaller corpus scale, the paper's node counts up to 9, a
single f value per goal, a bounded number of collaborative rounds); the
environment variables below let users dial fidelity up or down:

* ``REPRO_BENCH_SCALE``    -- corpus scale factor (default 0.35)
* ``REPRO_BENCH_MAX_NODES``-- largest node count in the sweeps (default 9)
* ``REPRO_BENCH_ITERATIONS`` -- collaborative-round cap (default 4)

Each benchmark prints the reproduced table / series to stdout (run pytest
with ``-s`` to see them) and asserts the qualitative *shape* reported by the
paper; absolute numbers are hardware- and scale-dependent by design.
"""

from __future__ import annotations

import os
from typing import List

import pytest

from repro.network.costmodel import CostModel

#: Corpus scale used by the benchmarks.
BENCH_SCALE: float = float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))
#: Largest node count in the node sweeps.
BENCH_MAX_NODES: int = int(os.environ.get("REPRO_BENCH_MAX_NODES", "9"))
#: Cap on collaborative rounds.
BENCH_ITERATIONS: int = int(os.environ.get("REPRO_BENCH_ITERATIONS", "4"))
#: Gamma threshold used across the harness (the paper's best settings are
#: around 0.85; the reduced-scale corpora behave better at 0.8).
BENCH_GAMMA: float = float(os.environ.get("REPRO_BENCH_GAMMA", "0.8"))


def node_sweep() -> List[int]:
    """Return the node counts swept by the benchmarks (1, 3, 5, ... max)."""
    return [n for n in range(1, BENCH_MAX_NODES + 1, 2)]


def bench_cost_model() -> CostModel:
    """Cost model used by the simulated network during the benchmarks.

    The per-transaction transfer cost is scaled so the ratio between the
    (pure-Python) computation speed and the modelled GigaBit network mirrors
    the paper's testbed: compute dominates for few peers, communication
    becomes visible near the saturation point.
    """
    return CostModel(t_comm=1.5e-3, unit_comm=1.0e-5)


@pytest.fixture(scope="session")
def bench_profile() -> dict:
    """Expose the benchmark profile to the individual benchmarks."""
    return {
        "scale": BENCH_SCALE,
        "node_counts": tuple(node_sweep()),
        "max_iterations": BENCH_ITERATIONS,
        "gamma": BENCH_GAMMA,
        "cost_model": bench_cost_model(),
    }


def run_once(benchmark, function, *args, **kwargs):
    """Run *function* exactly once under pytest-benchmark.

    The experiment sweeps are long-running and deterministic, so a single
    round is both sufficient and necessary to keep the harness usable.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
