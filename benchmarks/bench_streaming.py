"""Benchmark B-stream -- streaming out-of-core ingestion vs batch clustering.

Exercises :mod:`repro.core.streaming` end to end and gates the three
properties the streaming path promises:

**Replay parity.**  A streamed replay of the corpus with
``chunk_size=None`` (everything in one chunk, i.e. ``chunk_size=inf``)
must be **bit-exact** with batch XK-means: the bootstrap IS a batch fit
and :meth:`StreamingClusterer.finalize` returns that result object
untouched when nothing streamed after it.  Finite chunk sizes are
inherently approximate -- the bootstrap seeds from the first chunk only
and later chunks are assigned against drifting representatives -- so
they gate on an overall F-measure against the batch partition (trash
included on both sides) of at least ``--min-parity``.  The default
tolerance of **0.7** is documented from measurement: DBLP at scale 1.0
agrees at ~0.80 for chunk sizes 32/64/128.  Each chunk size also
reports streamed throughput in docs/sec.

**Delta-only compile.**  Appending a block to a chain a warm backend is
attached to must compile only the new transactions: after a zero-copy
attach the base corpus compiles for free (``corpus_compile_count == 0``)
and :meth:`extend_corpus` over the appended chunk raises the counter by
exactly the chunk size, never the corpus size.

**Bounded RSS.**  Per scale in ``--scales`` the driver spools the corpus
to per-chunk pickles, then probes two fresh subprocesses (``ru_maxrss``
is monotonic per process, so each measurement needs its own): *batch*
loads the entire spool and fits; *streamed* loads one chunk at a time
into an out-of-core block chain (``keep_members=False``).  The gate
(full mode only -- small quick scales are noise): batch peak RSS must
grow from the smallest to the largest scale, while streamed peak RSS
stays flat within ``--rss-flat-factor``.

Run standalone (no pytest machinery needed)::

    PYTHONPATH=src python benchmarks/bench_streaming.py           # full run
    PYTHONPATH=src python benchmarks/bench_streaming.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_streaming.py --json out.json
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import shutil
import subprocess
import sys
import tempfile
import time
from typing import List, Optional, Sequence, Tuple

# script-local sibling module (benchmarks/ is sys.path[0] when a bench
# script runs standalone): the shared --json report writer
from benchjson import BenchReport

from repro.core.config import ClusteringConfig
from repro.core.streaming import StreamingClusterer, stream_chunks
from repro.core.xkmeans import XKMeans
from repro.datasets.registry import get_dataset
from repro.evaluation.fmeasure import overall_f_measure
from repro.similarity.corpus_store import BlockCorpusStore, load_store
from repro.similarity.item import SimilarityConfig
from repro.similarity.transaction import SimilarityEngine


def _config(args: argparse.Namespace, chunk_size: Optional[int] = None) -> ClusteringConfig:
    """The clustering configuration shared by every section."""
    base = ClusteringConfig(
        k=args.k,
        similarity=SimilarityConfig(f=args.f, gamma=args.gamma),
        seed=args.seed,
        max_iterations=args.max_iterations,
        backend="numpy",
    )
    return base.with_streaming(chunk_size=chunk_size)


def _canonical(partition: Sequence[Sequence[str]]) -> List[Tuple[str, ...]]:
    """Order-independent canonical form of a partition (for equality)."""
    return sorted(tuple(sorted(cluster)) for cluster in partition)


def _reference(partition: Sequence[Sequence[str]]):
    """The batch partition as an ``id -> label`` reference mapping."""
    return {
        transaction_id: f"c{index}"
        for index, cluster in enumerate(partition)
        for transaction_id in cluster
    }


def _stream(transactions, config: ClusteringConfig, chunk_size: Optional[int]):
    """One timed streamed replay; returns (clusterer, result, seconds)."""
    clusterer = StreamingClusterer(config)
    start = time.perf_counter()
    for chunk in stream_chunks(transactions, chunk_size):
        clusterer.ingest(chunk)
    result = clusterer.finalize()
    return clusterer, result, time.perf_counter() - start


# --------------------------------------------------------------------------- #
# Section 1: replay parity + throughput
# --------------------------------------------------------------------------- #
def bench_replay(args: argparse.Namespace, report: BenchReport) -> List[str]:
    """Streamed replays vs one batch fit; returns gate failures."""
    failures: List[str] = []
    dataset = get_dataset(args.corpus, scale=args.scale, seed=args.seed)
    transactions = dataset.transactions
    size = len(transactions)

    batch_config = _config(args)
    start = time.perf_counter()
    batch = XKMeans(batch_config).fit(transactions)
    batch_seconds = time.perf_counter() - start
    batch_partition = batch.partition(include_trash=True)
    reference = _reference(batch_partition)
    report.record(
        backend="numpy",
        op="batch-fit",
        size=size,
        seconds=batch_seconds,
        docs_per_sec=size / batch_seconds if batch_seconds else None,
    )

    # chunk_size=inf replay: MUST be bit-exact with the batch fit
    clusterer, result, seconds = _stream(transactions, _config(args), None)
    streamed_partition = clusterer.partition(include_trash=True)
    bit_exact = _canonical(streamed_partition) == _canonical(batch_partition)
    parity = overall_f_measure(streamed_partition, reference)
    report.record(
        backend="numpy",
        op="stream-replay",
        size=size,
        seconds=seconds,
        parity=bit_exact,
        f_measure=parity,
        chunk_size=None,
        bit_exact=bit_exact,
        docs_per_sec=size / seconds if seconds else None,
        re_refinements=result.metadata.get("streaming", {}).get("re_refinements", 0),
    )
    print(
        f"replay chunk=inf : parity={parity:.3f} bit_exact={bit_exact} "
        f"({size / seconds:.1f} docs/sec)"
    )
    if not bit_exact:
        failures.append("chunk_size=inf streamed replay is not bit-exact with batch")

    for chunk_size in args.chunk_sizes:
        clusterer, result, seconds = _stream(
            transactions, _config(args, chunk_size), chunk_size
        )
        streamed_partition = clusterer.partition(include_trash=True)
        parity = overall_f_measure(streamed_partition, reference)
        stats = result.metadata.get("streaming", {})
        report.record(
            backend="numpy",
            op="stream-replay",
            size=size,
            seconds=seconds,
            parity=parity >= args.min_parity,
            f_measure=parity,
            chunk_size=chunk_size,
            bit_exact=False,
            docs_per_sec=size / seconds if seconds else None,
            re_refinements=stats.get("re_refinements", 0),
        )
        print(
            f"replay chunk={chunk_size:<4d}: parity={parity:.3f} "
            f"re_refinements={stats.get('re_refinements', 0)} "
            f"({size / seconds:.1f} docs/sec)"
        )
        if parity < args.min_parity:
            failures.append(
                f"chunk_size={chunk_size} parity {parity:.3f} "
                f"below tolerance {args.min_parity}"
            )
    return failures


# --------------------------------------------------------------------------- #
# Section 2: delta-only compile on a warm chain
# --------------------------------------------------------------------------- #
def bench_delta_compile(args: argparse.Namespace, report: BenchReport) -> List[str]:
    """Warm block-append must compile only the appended transactions."""
    failures: List[str] = []
    dataset = get_dataset(args.corpus, scale=args.scale, seed=args.seed)
    transactions = dataset.transactions
    split = (2 * len(transactions)) // 3
    base, delta = transactions[:split], transactions[split:]
    config = _config(args)

    work_dir = tempfile.mkdtemp(prefix="bench-stream-chain-")
    try:
        writer = SimilarityEngine(config.similarity, backend="numpy")
        chain = BlockCorpusStore.create(os.path.join(work_dir, "chain"), config.similarity)
        chain.append_block(base, writer.cache)

        # fresh engine, warm zero-copy attach: the base corpus is free
        engine = SimilarityEngine(config.similarity, backend="numpy")
        store = load_store(chain.directory)
        store.bind_transactions(base)
        if not store.attach(engine.backend):
            failures.append("warm chain attach was rejected by a pristine backend")
            return failures
        engine.backend.compile_corpus(base)
        base_compiled = engine.backend.corpus_compile_count
        if base_compiled != 0:
            failures.append(
                f"warm attach recompiled {base_compiled} base transactions "
                "(expected 0)"
            )

        start = time.perf_counter()
        extended = engine.backend.extend_corpus(delta)
        seconds = time.perf_counter() - start
        total = engine.backend.corpus_compile_count
        if extended != len(delta) or total != len(delta):
            failures.append(
                f"extend_corpus compiled {extended} / counter {total} "
                f"(expected exactly the {len(delta)}-transaction delta)"
            )
        report.record(
            backend="numpy",
            op="delta-compile",
            size=len(delta),
            seconds=seconds,
            base_size=len(base),
            base_compiled=base_compiled,
            compiled=extended,
        )
        print(
            f"delta compile    : base={len(base)} compiled={base_compiled}, "
            f"append={len(delta)} compiled={extended}"
        )
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)
    return failures


# --------------------------------------------------------------------------- #
# Section 3: bounded RSS via fresh-subprocess probes over a chunk spool
# --------------------------------------------------------------------------- #
def _peak_rss_kb() -> int:
    """This process' peak resident set size in KB (ru_maxrss)."""
    import resource

    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KB on Linux but bytes on macOS
    return usage // 1024 if sys.platform == "darwin" else usage


def build_spool(args: argparse.Namespace, scale: float, spool_dir: str) -> int:
    """Write the corpus at *scale* as per-chunk pickles; returns its size."""
    dataset = get_dataset(args.corpus, scale=scale, seed=args.seed)
    transactions = dataset.transactions
    for index, chunk in enumerate(stream_chunks(transactions, args.chunk_sizes[0])):
        path = os.path.join(spool_dir, f"chunk-{index:05d}.pkl")
        with open(path, "wb") as handle:
            pickle.dump(chunk, handle)
    return len(transactions)


def run_rss_probe(args: argparse.Namespace) -> int:
    """``--rss-probe`` mode: one clustering run in this fresh process.

    ``batch`` loads every spooled chunk up front and batch-fits the
    whole corpus; ``stream`` loads one chunk at a time and ingests it
    into an out-of-core block chain, so no more than a chunk of parsed
    transactions is ever needed in memory.  Prints one JSON line.
    """
    baseline = _peak_rss_kb()
    spool = sorted(
        os.path.join(args.spool, name)
        for name in os.listdir(args.spool)
        if name.startswith("chunk-") and name.endswith(".pkl")
    )
    chunk_size = args.chunk_sizes[0]
    count = 0
    start = time.perf_counter()
    if args.rss_probe == "batch":
        transactions = []
        for path in spool:
            with open(path, "rb") as handle:
                transactions.extend(pickle.load(handle))
        count = len(transactions)
        XKMeans(_config(args)).fit(transactions)
    else:
        chain_dir = os.path.join(args.spool, "chain")
        shutil.rmtree(chain_dir, ignore_errors=True)
        config = _config(args, chunk_size)
        store = BlockCorpusStore.create(chain_dir, config.similarity)
        clusterer = StreamingClusterer(config, store=store, keep_members=False)
        for path in spool:
            with open(path, "rb") as handle:
                chunk = pickle.load(handle)
            count += len(chunk)
            clusterer.ingest(chunk)
        clusterer.finalize()
    seconds = time.perf_counter() - start
    peak = _peak_rss_kb()
    print(
        json.dumps(
            {
                "mode": args.rss_probe,
                "transactions": count,
                "seconds": seconds,
                "peak_rss_kb": peak,
                "delta_rss_kb": peak - baseline,
            }
        )
    )
    return 0


def probe_peak_rss(args: argparse.Namespace, spool_dir: str, mode: str):
    """Measure *mode* over *spool_dir* in a fresh subprocess."""
    command = [
        sys.executable,
        os.path.abspath(__file__),
        "--corpus",
        args.corpus,
        "--k",
        str(args.k),
        "--f",
        str(args.f),
        "--gamma",
        str(args.gamma),
        "--seed",
        str(args.seed),
        "--max-iterations",
        str(args.max_iterations),
        "--chunk-sizes",
        str(args.chunk_sizes[0]),
        "--rss-probe",
        mode,
        "--spool",
        spool_dir,
    ]
    try:
        completed = subprocess.run(
            command, capture_output=True, text=True, timeout=900, check=True
        )
        return json.loads(completed.stdout.strip().splitlines()[-1])
    except (subprocess.SubprocessError, ValueError, IndexError, OSError):
        return None


def bench_rss(args: argparse.Namespace, report: BenchReport) -> List[str]:
    """Probe peak RSS per scale; gate flatness of the streamed path."""
    failures: List[str] = []
    rows = []
    for scale in args.scales:
        spool_dir = tempfile.mkdtemp(prefix=f"bench-stream-spool-{scale}-")
        try:
            size = build_spool(args, scale, spool_dir)
            row = {"scale": scale, "size": size}
            for mode in ("stream", "batch"):
                probe = probe_peak_rss(args, spool_dir, mode)
                if probe is None:
                    failures.append(f"{mode} RSS probe failed at scale {scale}")
                    continue
                row[mode] = probe
                report.record(
                    backend="numpy",
                    op=f"{mode}-rss",
                    size=size,
                    seconds=probe["seconds"],
                    scale=scale,
                    peak_rss_kb=probe["peak_rss_kb"],
                    delta_rss_kb=probe["delta_rss_kb"],
                )
                print(
                    f"rss scale={scale:<4}: {mode:>6} peak={probe['peak_rss_kb']}K "
                    f"(+{probe['delta_rss_kb']}K over baseline, "
                    f"{probe['seconds']:.1f}s)"
                )
            rows.append(row)
        finally:
            shutil.rmtree(spool_dir, ignore_errors=True)

    if args.quick:
        print("note: bounded-RSS gate skipped in --quick (scales too small)")
        return failures
    complete = [row for row in rows if "stream" in row and "batch" in row]
    if len(complete) < 2:
        failures.append("bounded-RSS gate needs at least two probed scales")
        return failures
    first, last = complete[0], complete[-1]
    batch_growth = last["batch"]["peak_rss_kb"] - first["batch"]["peak_rss_kb"]
    stream_ratio = last["stream"]["peak_rss_kb"] / max(
        first["stream"]["peak_rss_kb"], 1
    )
    print(
        f"rss gate         : batch +{batch_growth}K from scale "
        f"{first['scale']} -> {last['scale']}, streamed x{stream_ratio:.2f}"
    )
    if batch_growth <= 0:
        failures.append(
            "batch peak RSS did not grow across scales -- probe cannot "
            "distinguish the streamed path"
        )
    if stream_ratio > args.rss_flat_factor:
        failures.append(
            f"streamed peak RSS grew x{stream_ratio:.2f} from scale "
            f"{first['scale']} to {last['scale']} "
            f"(flatness bound x{args.rss_flat_factor})"
        )
    return failures


# --------------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------------- #
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--corpus", default="DBLP", help="synthetic corpus name")
    parser.add_argument("--scale", type=float, default=1.0, help="parity corpus scale")
    parser.add_argument("--k", type=int, default=4, help="number of representatives")
    parser.add_argument("--f", type=float, default=0.5, help="structure/content blend")
    parser.add_argument("--gamma", type=float, default=0.85, help="gamma threshold")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--max-iterations", type=int, default=6)
    parser.add_argument(
        "--chunk-sizes",
        type=int,
        nargs="+",
        default=[32, 64, 128],
        help="streamed chunk sizes; the first also drives the RSS spool",
    )
    parser.add_argument(
        "--scales",
        type=float,
        nargs="+",
        default=[1.0, 5.0],
        help="corpus scales probed by the bounded-RSS section",
    )
    parser.add_argument(
        "--min-parity",
        type=float,
        default=0.7,
        help="documented streamed-vs-batch F-measure tolerance",
    )
    parser.add_argument(
        "--rss-flat-factor",
        type=float,
        default=1.35,
        help="streamed peak RSS may grow at most this factor across --scales",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: small corpus, small scales, RSS gate reports only",
    )
    parser.add_argument("--json", default=None, help="write a benchjson report here")
    parser.add_argument(
        "--rss-probe",
        choices=("stream", "batch"),
        default=None,
        help=argparse.SUPPRESS,  # internal: fresh-process peak-RSS probe
    )
    parser.add_argument(
        "--spool",
        default=None,
        help=argparse.SUPPRESS,  # internal: chunk-pickle spool directory
    )
    args = parser.parse_args(argv)

    if args.rss_probe is not None:
        if not args.spool:
            parser.error("--rss-probe requires --spool")
        return run_rss_probe(args)

    if args.quick:
        args.scale = min(args.scale, 0.5)
        args.chunk_sizes = args.chunk_sizes[:1] or [16]
        args.chunk_sizes = [min(args.chunk_sizes[0], 16)]
        args.scales = [0.25, 0.5]

    report = BenchReport(
        "bench_streaming.py",
        corpus=args.corpus,
        scale=args.scale,
        k=args.k,
        f=args.f,
        gamma=args.gamma,
        seed=args.seed,
        chunk_sizes=args.chunk_sizes,
        scales=args.scales,
        min_parity=args.min_parity,
        rss_flat_factor=args.rss_flat_factor,
        quick=args.quick,
    )
    failures: List[str] = []
    failures += bench_replay(args, report)
    failures += bench_delta_compile(args, report)
    failures += bench_rss(args, report)

    if args.json:
        report.write(args.json)
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print("all streaming gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
