"""Benchmark E1 -- Figure 7: CXK-means runtime vs. number of nodes.

Regenerates the four runtime-vs-nodes curves (full and halved datasets,
structure/content-driven setting, equal partitioning) and checks the shape
reported by the paper: a clear runtime reduction from the centralized case to
the saturation region, with the halved dataset saturating at (or before) the
full dataset's point.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.figure7 import Figure7Config, run_figure7
from repro.network.costmodel import speedup_curve


@pytest.mark.benchmark(group="figure7")
def test_figure7_runtime_vs_nodes(benchmark, bench_profile):
    config = Figure7Config(
        datasets=("DBLP", "IEEE", "Shakespeare", "Wikipedia"),
        node_counts=bench_profile["node_counts"],
        scales=(bench_profile["scale"], bench_profile["scale"] / 2.0),
        f_values=(0.5,),
        gamma=bench_profile["gamma"],
        max_iterations=bench_profile["max_iterations"],
        cost_model=bench_profile["cost_model"],
        # the IEEE profile produces fewer documents per scale unit than the
        # other corpora; keep its transaction count comparable so the
        # parallelisable work is not swamped by per-round overheads
        dataset_scale_multipliers={"IEEE": 2.0},
    )
    result = run_once(benchmark, run_figure7, config)
    print()
    print(result.report())

    full_scale = bench_profile["scale"]
    half_scale = bench_profile["scale"] / 2.0
    for dataset, per_scale in result.curves.items():
        full_curve = per_scale[full_scale]
        half_curve = per_scale[half_scale]
        # Paper shape 1: distributing the data beats the centralized case --
        # the best distributed configuration is faster than one node.
        best_distributed = min(v for m, v in full_curve.items() if m > 1)
        assert best_distributed < full_curve[1], (
            f"{dataset}: no distributed speed-up over the centralized case"
        )
        # Paper shape 2: the gain is substantial (Fig. 7 shows 2x-4x at the
        # saturation point); require at least 1.2x at reduced scale.
        speedups = speedup_curve(full_curve)
        assert max(speedups.values()) >= 1.2, f"{dataset}: speed-up too small"
        # Paper shape 3: the halved dataset is cheaper to cluster than the
        # full dataset in the centralized configuration (the dataset-size
        # effect that moves the saturation point left in the paper).
        # Shakespeare is excluded: its seven plays scale through per-play
        # length with a floor of one speech per scene, so at harness scale
        # the "half" corpus can coincide with the full one.
        if dataset != "Shakespeare":
            assert half_curve[1] < full_curve[1], (
                f"{dataset}: halving the dataset should reduce the centralized runtime"
            )
