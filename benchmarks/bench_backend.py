"""Benchmark B1 -- python vs. numpy similarity backend on the hot path.

Measures the assignment step (``SimilarityEngine.assign_all``: every
transaction against every cluster representative, the inner loop of
XK-means / PK-means / CXK-means) and a full XK-means ``fit`` on a synthetic
generator corpus, once per benchmarked backend (``--backends``, default
``python numpy``; ``sharded[:workers]`` works too), and reports the speedup
of each backend over the pure-Python reference.  All backends are verified
to produce *identical* assignments before any timing is trusted.

Run standalone (no pytest machinery needed)::

    PYTHONPATH=src python benchmarks/bench_backend.py            # full run
    PYTHONPATH=src python benchmarks/bench_backend.py --quick    # CI smoke

The full run uses the DBLP generator corpus at scale 1.0 (>= 200
transactions, k >= 5) and fails with a non-zero exit status unless the
numpy backend is at least ``--min-speedup`` (default 3.0) times faster on
the assignment step; the quick run shrinks the corpus and only reports.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import List, Optional, Tuple

# script-local sibling module (benchmarks/ is sys.path[0] when a bench
# script runs standalone): the shared --json report writer
from benchjson import BenchReport

from repro.core.config import ClusteringConfig
from repro.core.seeding import select_seed_transactions
from repro.core.xkmeans import XKMeans
from repro.datasets.registry import get_dataset
from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.item import SimilarityConfig
from repro.similarity.transaction import SimilarityEngine


def _time_best(function, repeats: int) -> Tuple[float, object]:
    """Return (best wall-clock seconds, last result) over *repeats* calls."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_assign(
    dataset,
    backend: str,
    k: int,
    f: float,
    gamma: float,
    seed: int,
    repeats: int,
) -> Tuple[float, List[Tuple[int, float]]]:
    """Time the bulk assignment step for one backend (warm measurements).

    The engine is prepared the way the experiment driver does it: tag-path
    cache precomputed, corpus compiled.  Returns the best time and the
    assignment itself (for cross-backend verification).
    """
    engine = SimilarityEngine(
        SimilarityConfig(f=f, gamma=gamma),
        cache=TagPathSimilarityCache(),
        backend=backend,
    )
    transactions = dataset.transactions
    engine.cache.precompute(
        {item.tag_path for transaction in transactions for item in transaction.items}
    )
    engine.backend.compile_corpus(transactions)
    representatives = select_seed_transactions(transactions, k, random.Random(seed))
    # warm-up outside the timed region (content memo, transient compiles)
    engine.assign_all(transactions, representatives)
    best, result = _time_best(
        lambda: engine.assign_all(transactions, representatives), repeats
    )
    if hasattr(engine.backend, "close"):
        engine.backend.close()  # release sharded worker pools
    return best, result


def bench_fit(dataset, backend: str, k: int, f: float, gamma: float, seed: int):
    """Time one full XK-means fit for one backend."""
    config = ClusteringConfig(
        k=k,
        similarity=SimilarityConfig(f=f, gamma=gamma),
        seed=seed,
        max_iterations=6,
        backend=backend,
    )
    algorithm = XKMeans(config)
    start = time.perf_counter()
    result = algorithm.fit(dataset.transactions)
    elapsed = time.perf_counter() - start
    if hasattr(algorithm.engine.backend, "close"):
        algorithm.engine.backend.close()  # release sharded worker pools
    return elapsed, result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--corpus", default="DBLP", help="synthetic corpus name")
    parser.add_argument("--scale", type=float, default=1.0, help="corpus scale factor")
    parser.add_argument("--k", type=int, default=8, help="number of representatives")
    parser.add_argument("--f", type=float, default=0.5, help="structure/content blend")
    parser.add_argument("--gamma", type=float, default=0.8, help="gamma threshold")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--repeats", type=int, default=3, help="timed repetitions")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="required numpy-over-python speedup on the assignment step",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small corpus, no speedup requirement",
    )
    parser.add_argument(
        "--backends",
        nargs="+",
        default=["python", "numpy"],
        help="backend specs to benchmark (first one is the reference)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write a machine-readable report (benchjson schema) to PATH",
    )
    args = parser.parse_args(argv)

    scale = 0.35 if args.quick else args.scale
    repeats = 1 if args.quick else args.repeats
    dataset = get_dataset(args.corpus, scale=scale, seed=args.seed)
    transactions = len(dataset.transactions)
    print(
        f"corpus={args.corpus} scale={scale} transactions={transactions} "
        f"k={args.k} f={args.f} gamma={args.gamma}"
    )
    if not args.quick and (transactions < 200 or args.k < 5):
        print("error: the full benchmark requires >= 200 transactions and k >= 5")
        return 2

    backends = list(args.backends)
    reference = backends[0]
    assign_times = {}
    assignments = {}
    fit_times = {}
    fit_results = {}
    for backend in backends:
        assign_times[backend], assignments[backend] = bench_assign(
            dataset, backend, args.k, args.f, args.gamma, args.seed, repeats
        )
        fit_times[backend], fit_results[backend] = bench_fit(
            dataset, backend, args.k, args.f, args.gamma, args.seed
        )

    assign_parity = {
        backend: assignments[backend] == assignments[reference]
        for backend in backends[1:]
    }
    fit_parity = {
        backend: fit_results[backend].partition()
        == fit_results[reference].partition()
        for backend in backends[1:]
    }

    # the JSON artifact is written before any parity gate fires, so CI
    # uploads a report (with parity=false rows) even for failing runs
    if args.json:
        report = BenchReport(
            "bench_backend",
            corpus=args.corpus,
            scale=scale,
            transactions=transactions,
            k=args.k,
            f=args.f,
            gamma=args.gamma,
            seed=args.seed,
            quick=args.quick,
            reference=reference,
        )
        for backend in backends:
            is_reference = backend == reference
            report.record(
                backend=backend,
                op="assign_all",
                size=transactions,
                seconds=assign_times[backend],
                speedup=None
                if is_reference
                else assign_times[reference] / assign_times[backend],
                parity=None if is_reference else assign_parity[backend],
            )
            report.record(
                backend=backend,
                op="fit",
                size=transactions,
                seconds=fit_times[backend],
                speedup=None
                if is_reference
                else fit_times[reference] / fit_times[backend],
                parity=None if is_reference else fit_parity[backend],
            )
        report.write(args.json)

    for backend in backends[1:]:
        if not assign_parity[backend]:
            print(f"FAIL: {backend} disagrees with {reference} on the assignment step")
            return 1
        if not fit_parity[backend]:
            print(f"FAIL: {backend} disagrees with {reference} on the fitted clustering")
            return 1
    print("parity    : identical assignments and identical fitted clusterings")

    print(f"{'step':<12}" + "".join(f"{backend:>16}" for backend in backends))
    print(
        f"{'assign_all':<12}"
        + "".join(f"{assign_times[backend]:>15.4f}s" for backend in backends)
    )
    print(
        f"{'fit':<12}"
        + "".join(f"{fit_times[backend]:>15.4f}s" for backend in backends)
    )
    for backend in backends[1:]:
        print(
            f"speedup over {reference} ({backend}): "
            f"assign_all {assign_times[reference] / assign_times[backend]:.1f}x, "
            f"fit {fit_times[reference] / fit_times[backend]:.1f}x"
        )

    if not args.quick:
        if {"python", "numpy"} <= set(backends):
            assign_speedup = assign_times["python"] / assign_times["numpy"]
            if assign_speedup < args.min_speedup:
                print(
                    f"FAIL: numpy backend only {assign_speedup:.1f}x faster on assign_all "
                    f"(required: {args.min_speedup:.1f}x)"
                )
                return 1
        else:
            print(
                "note: min-speedup gate skipped "
                "(requires both python and numpy in --backends)"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
