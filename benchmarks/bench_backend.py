"""Benchmark B1 -- python vs. numpy similarity backend on the hot path.

Measures the assignment step (``SimilarityEngine.assign_all``: every
transaction against every cluster representative, the inner loop of
XK-means / PK-means / CXK-means) and a full XK-means ``fit`` on a synthetic
generator corpus, once per benchmarked backend (``--backends``, default
``python numpy``; ``sharded[:workers]`` and tiled specs like
``numpy:block=64`` work too), and reports the speedup of each backend over
the pure-Python reference.  All backends are verified to produce
*identical* assignments before any timing is trusted.

A second section sweeps the batch-kernel **tile budget**
(``--tile-sizes``, items per tile side; 0 = unbounded/untiled): per tile
size it times ``assign_all`` on ``numpy:block=N``, asserts bit-exact
parity with the untiled path, reads the backend's peak scratch-block size
(``peak_scratch_entries``) and -- in a fresh subprocess per tile size, so
the measurement is not polluted by earlier allocations -- the process'
peak RSS, demonstrating that peak memory is bounded by the configured
tile size regardless of corpus scale.  All of it lands in the ``--json``
report as per-tile-size records.

A third mode, ``--size-sweep``, benchmarks across the named corpus scales
of :data:`repro.datasets.registry.SIZE_SWEEP_SCALES` (``scale-1`` /
``scale-5`` / ``scale-20``): per (backend, size) it times the assignment
step, reports where the python -> numpy -> sharded -> torch crossovers
fall (one ``crossover`` record per size names the fastest measured
backend), and times the persistent compiled-corpus store
(:mod:`repro.similarity.corpus_store`) -- cold compile + export vs warm
zero-copy mmap attach, with the corpus fingerprint computed once outside
both timed regions.  The full sweep fails unless the warm attach beats the
cold compile by ``--min-store-speedup`` (default 5x) on the largest swept
size.

Run standalone (no pytest machinery needed)::

    PYTHONPATH=src python benchmarks/bench_backend.py            # full run
    PYTHONPATH=src python benchmarks/bench_backend.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_backend.py --size-sweep

The full run uses the DBLP generator corpus at scale 1.0 (>= 200
transactions, k >= 5) and fails with a non-zero exit status unless the
numpy backend is at least ``--min-speedup`` (default 3.0) times faster on
the assignment step; the quick run shrinks the corpus and only reports.
"""

from __future__ import annotations

import argparse
import json
import random
import subprocess
import sys
import time
from typing import Dict, List, Optional, Tuple

# script-local sibling module (benchmarks/ is sys.path[0] when a bench
# script runs standalone): the shared --json report writer
from benchjson import BenchReport, reference_speedup

from repro.core.config import ClusteringConfig
from repro.core.seeding import select_seed_transactions
from repro.similarity.backend import BackendUnavailableError
from repro.core.xkmeans import XKMeans
from repro.datasets.registry import get_dataset
from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.item import SimilarityConfig
from repro.similarity.transaction import SimilarityEngine


def _time_best(function, repeats: int) -> Tuple[float, object]:
    """Return (best wall-clock seconds, last result) over *repeats* calls."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_assign(
    dataset,
    backend: str,
    k: int,
    f: float,
    gamma: float,
    seed: int,
    repeats: int,
) -> Tuple[float, List[Tuple[int, float]]]:
    """Time the bulk assignment step for one backend (warm measurements).

    The engine is prepared the way the experiment driver does it: tag-path
    cache precomputed, corpus compiled.  Returns the best time and the
    assignment itself (for cross-backend verification).
    """
    engine = SimilarityEngine(
        SimilarityConfig(f=f, gamma=gamma),
        cache=TagPathSimilarityCache(),
        backend=backend,
    )
    transactions = dataset.transactions
    engine.cache.precompute(
        {item.tag_path for transaction in transactions for item in transaction.items}
    )
    engine.backend.compile_corpus(transactions)
    representatives = select_seed_transactions(transactions, k, random.Random(seed))
    # warm-up outside the timed region (content memo, transient compiles)
    engine.assign_all(transactions, representatives)
    best, result = _time_best(
        lambda: engine.assign_all(transactions, representatives), repeats
    )
    if hasattr(engine.backend, "close"):
        engine.backend.close()  # release sharded worker pools
    return best, result


def bench_fit(dataset, backend: str, k: int, f: float, gamma: float, seed: int):
    """Time one full XK-means fit for one backend."""
    config = ClusteringConfig(
        k=k,
        similarity=SimilarityConfig(f=f, gamma=gamma),
        seed=seed,
        max_iterations=6,
        backend=backend,
    )
    algorithm = XKMeans(config)
    start = time.perf_counter()
    result = algorithm.fit(dataset.transactions)
    elapsed = time.perf_counter() - start
    if hasattr(algorithm.engine.backend, "close"):
        algorithm.engine.backend.close()  # release sharded worker pools
    return elapsed, result


def bench_tile(
    dataset,
    block: int,
    k: int,
    f: float,
    gamma: float,
    seed: int,
    repeats: int,
) -> Tuple[float, List[Tuple[int, float]], int]:
    """Time the assignment step on ``numpy:block=<block>`` (warm).

    Returns ``(best seconds, assignment, peak_scratch_entries)``; the
    scratch high-water mark is reset after warm-up so it reflects the
    steady-state assignment kernel alone.
    """
    engine = SimilarityEngine(
        SimilarityConfig(f=f, gamma=gamma),
        cache=TagPathSimilarityCache(),
        backend=f"numpy:block={block}",
    )
    transactions = dataset.transactions
    engine.cache.precompute(
        {item.tag_path for transaction in transactions for item in transaction.items}
    )
    engine.backend.compile_corpus(transactions)
    representatives = select_seed_transactions(transactions, k, random.Random(seed))
    engine.assign_all(transactions, representatives)  # warm-up
    engine.backend.peak_scratch_entries = 0
    best, result = _time_best(
        lambda: engine.assign_all(transactions, representatives), repeats
    )
    return best, result, engine.backend.peak_scratch_entries


def bench_store(dataset, k, f, gamma, seed, cache_dir) -> Tuple[float, float, bool]:
    """Cold-compile vs warm-attach timings of the compiled-corpus store.

    Cold: a fresh numpy engine precomputes the tag-path cache, compiles the
    corpus and exports it to *cache_dir*.  Warm: another fresh engine (with
    the in-process store handle cache cleared, so the timing pays the real
    manifest load + ``np.load(mmap_mode="r")`` attach) prepares the same
    corpus again.  The corpus fingerprint is computed once *outside* both
    timed regions, so the two numbers compare exactly compile+save against
    load+attach.  Returns ``(cold_seconds, warm_seconds, ok)`` where *ok*
    asserts the store semantics: cold was a miss, warm was a hit, the warm
    engine compiled **zero** transactions, and both engines produce
    identical assignments.
    """
    from repro.similarity.corpus_store import (
        clear_store_cache,
        corpus_fingerprint,
        prepare_engine_corpus,
    )

    similarity = SimilarityConfig(f=f, gamma=gamma)
    transactions = dataset.transactions
    fingerprint = corpus_fingerprint(transactions, similarity)

    def fresh_engine():
        return SimilarityEngine(
            similarity, cache=TagPathSimilarityCache(), backend="numpy"
        )

    cold_engine = fresh_engine()
    start = time.perf_counter()
    cold_status = prepare_engine_corpus(
        cold_engine, transactions, cache_dir=cache_dir, fingerprint=fingerprint
    )
    cold = time.perf_counter() - start

    # drop the in-process store handle so the warm timing measures a real
    # attach (manifest read + mmap), not a dictionary lookup
    clear_store_cache()
    warm_engine = fresh_engine()
    start = time.perf_counter()
    warm_status = prepare_engine_corpus(
        warm_engine, transactions, cache_dir=cache_dir, fingerprint=fingerprint
    )
    warm = time.perf_counter() - start

    representatives = select_seed_transactions(transactions, k, random.Random(seed))
    parity = warm_engine.assign_all(
        transactions, representatives
    ) == cold_engine.assign_all(transactions, representatives)
    ok = (
        cold_status.get("store") == "miss"
        and warm_status.get("store") == "hit"
        and getattr(warm_engine.backend, "corpus_compile_count", None) == 0
        and parity
    )
    return cold, warm, ok


def run_size_sweep(args: argparse.Namespace) -> int:
    """``--size-sweep`` mode: backends and the store across corpus scales."""
    import os
    import tempfile

    from repro.datasets.registry import SIZE_SWEEP_SCALES

    labels = args.sweep_scales
    if labels is None:
        labels = ["scale-1"] if args.quick else list(SIZE_SWEEP_SCALES)
    unknown = [label for label in labels if label not in SIZE_SWEEP_SCALES]
    if unknown:
        print(
            f"error: unknown sweep scales {unknown}; "
            f"available: {', '.join(SIZE_SWEEP_SCALES)}"
        )
        return 2
    labels = sorted(dict.fromkeys(labels), key=lambda label: SIZE_SWEEP_SCALES[label])
    repeats = 1 if args.quick else args.repeats

    report = BenchReport(
        "bench_backend",
        mode="size_sweep",
        corpus=args.corpus,
        k=args.k,
        f=args.f,
        gamma=args.gamma,
        seed=args.seed,
        quick=args.quick,
        sweep_scales={label: SIZE_SWEEP_SCALES[label] for label in labels},
        speedup_baseline="python",
    )
    failures: List[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as cache_root:
        for label in labels:
            scale = SIZE_SWEEP_SCALES[label]
            dataset = get_dataset(args.corpus, scale=scale, seed=args.seed)
            size = len(dataset.transactions)
            print(f"[{label}] scale={scale} transactions={size} k={args.k}")

            # --- persistent store: cold compile vs warm mmap attach -------- #
            cold, warm, store_ok = bench_store(
                dataset,
                args.k,
                args.f,
                args.gamma,
                args.seed,
                os.path.join(cache_root, label),
            )
            ratio = (cold / warm) if warm > 0 else None
            print(
                f"[{label}] store: cold-compile {cold:.4f}s, "
                f"warm-attach {warm:.4f}s"
                + (f" ({ratio:.1f}x)" if ratio is not None else "")
            )
            report.record(
                backend="numpy",
                op="store_cold_compile",
                size=size,
                seconds=cold,
                speedup=None,
                parity=None,
                label=label,
            )
            report.record(
                backend="numpy",
                op="store_warm_attach",
                size=size,
                seconds=warm,
                speedup=ratio,
                parity=store_ok,
                label=label,
            )
            if not store_ok:
                failures.append(
                    f"{label}: warm store attach broke parity, was not a "
                    "store hit, or did not skip compilation"
                )
            if (
                label == labels[-1]
                and not args.quick
                and ratio is not None
                and ratio < args.min_store_speedup
            ):
                failures.append(
                    f"{label}: warm attach only {ratio:.1f}x faster than "
                    f"cold compile (required {args.min_store_speedup:.1f}x)"
                )

            # --- per-backend assignment timings + crossover ---------------- #
            timings: Dict[str, float] = {}
            reference_assignment = None
            for backend in args.sweep_backends:
                if (
                    backend == "python"
                    and size > args.python_max_transactions
                ):
                    print(
                        f"[{label}] note: python assign skipped at {size} "
                        "transactions (over --python-max-transactions "
                        f"{args.python_max_transactions}); its speedup "
                        "column is null at this size"
                    )
                    continue
                try:
                    seconds, assignment = bench_assign(
                        dataset, backend, args.k, args.f, args.gamma,
                        args.seed, repeats,
                    )
                except BackendUnavailableError as error:
                    print(f"[{label}] note: {backend} skipped ({error})")
                    continue
                first = not timings
                if first:
                    reference_assignment = assignment
                parity = None if first else assignment == reference_assignment
                if parity is False:
                    failures.append(
                        f"{label}: {backend} assignment disagrees with the "
                        "sweep baseline"
                    )
                timings[backend] = seconds
                report.record(
                    backend=backend,
                    op="assign_all",
                    size=size,
                    seconds=seconds,
                    speedup=reference_speedup(timings, backend),
                    parity=parity,
                    label=label,
                )
            for backend, seconds in timings.items():
                print(f"[{label}] assign_all {backend:<12} {seconds:>10.4f}s")
            if timings:
                winner = min(timings, key=timings.get)
                print(f"[{label}] crossover winner: {winner}")
                report.record(
                    backend=winner,
                    op="crossover",
                    size=size,
                    seconds=timings[winner],
                    speedup=reference_speedup(timings, winner),
                    parity=None,
                    label=label,
                    contenders=timings,
                )

    if args.json:
        report.write(args.json)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


def _peak_rss_kb() -> int:
    """This process' peak resident set size in KB (ru_maxrss)."""
    import resource

    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KB on Linux but bytes on macOS
    return usage // 1024 if sys.platform == "darwin" else usage


def run_rss_probe(args: argparse.Namespace) -> int:
    """``--rss-probe`` mode: one tiled assignment in this fresh process.

    Prints a single JSON line with the timing, the kernel's scratch
    high-water mark and this process' peak RSS.  Launched once per tile
    size by :func:`probe_peak_rss`, so every measurement starts from a
    clean high-water mark instead of inheriting the largest earlier
    allocation (``ru_maxrss`` is monotonic within a process).
    """
    dataset = get_dataset(args.corpus, scale=args.scale, seed=args.seed)
    seconds, _, scratch = bench_tile(
        dataset, args.rss_probe, args.k, args.f, args.gamma, args.seed, repeats=1
    )
    print(
        json.dumps(
            {
                "seconds": seconds,
                "scratch_entries": scratch,
                "peak_rss_kb": _peak_rss_kb(),
            }
        )
    )
    return 0


def probe_peak_rss(
    args: argparse.Namespace, scale: float, block: int
) -> Optional[int]:
    """Peak RSS (KB) of one tiled assignment, measured in a fresh process.

    Returns ``None`` when the probe subprocess cannot run (e.g. sandboxed
    environments); the caller records an explicit null instead of a bogus
    number.
    """
    command = [
        sys.executable,
        __file__,
        "--corpus", args.corpus,
        "--scale", str(scale),
        "--k", str(args.k),
        "--f", str(args.f),
        "--gamma", str(args.gamma),
        "--seed", str(args.seed),
        "--rss-probe", str(block),
    ]
    try:
        completed = subprocess.run(
            command, capture_output=True, text=True, timeout=900, check=True
        )
        probe = json.loads(completed.stdout.strip().splitlines()[-1])
        return int(probe["peak_rss_kb"])
    except Exception:
        return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--corpus", default="DBLP", help="synthetic corpus name")
    parser.add_argument("--scale", type=float, default=1.0, help="corpus scale factor")
    parser.add_argument("--k", type=int, default=8, help="number of representatives")
    parser.add_argument("--f", type=float, default=0.5, help="structure/content blend")
    parser.add_argument("--gamma", type=float, default=0.8, help="gamma threshold")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--repeats", type=int, default=3, help="timed repetitions")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="required numpy-over-python speedup on the assignment step",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small corpus, no speedup requirement",
    )
    parser.add_argument(
        "--backends",
        nargs="+",
        default=["python", "numpy"],
        help="backend specs to benchmark (first one is the reference)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write a machine-readable report (benchjson schema) to PATH",
    )
    parser.add_argument(
        "--tile-sizes",
        type=int,
        nargs="+",
        default=[64, 1024, 0],
        metavar="N",
        help="tile budgets (items per side) for the tiled-kernel section; "
        "0 = unbounded/untiled (always measured as the parity baseline)",
    )
    parser.add_argument(
        "--rss-probe",
        type=int,
        default=None,
        help=argparse.SUPPRESS,  # internal: fresh-process peak-RSS probe
    )
    parser.add_argument(
        "--size-sweep",
        action="store_true",
        help="run the corpus-size sweep instead of the standard benchmark: "
        "per named scale, backend assignment crossovers plus cold-compile "
        "vs warm-attach timings of the compiled-corpus store",
    )
    parser.add_argument(
        "--sweep-scales",
        nargs="+",
        default=None,
        metavar="NAME",
        help="named corpus scales to sweep (repro.datasets.registry."
        "SIZE_SWEEP_SCALES; default: all of them, or scale-1 under --quick)",
    )
    parser.add_argument(
        "--sweep-backends",
        nargs="+",
        default=["python", "numpy", "sharded:2", "torch"],
        metavar="SPEC",
        help="backend specs timed per sweep size (unavailable backends are "
        "skipped with a note; the first measured one is the parity baseline)",
    )
    parser.add_argument(
        "--min-store-speedup",
        type=float,
        default=5.0,
        help="required warm-attach-over-cold-compile speedup of the "
        "compiled-corpus store on the largest swept size (full sweep only)",
    )
    parser.add_argument(
        "--python-max-transactions",
        type=int,
        default=2000,
        metavar="N",
        help="skip the python reference in the size sweep above this corpus "
        "size (its speedup columns become null rather than waiting minutes)",
    )
    args = parser.parse_args(argv)
    if args.rss_probe is not None:
        return run_rss_probe(args)
    if args.size_sweep:
        return run_size_sweep(args)

    scale = 0.35 if args.quick else args.scale
    repeats = 1 if args.quick else args.repeats
    dataset = get_dataset(args.corpus, scale=scale, seed=args.seed)
    transactions = len(dataset.transactions)
    print(
        f"corpus={args.corpus} scale={scale} transactions={transactions} "
        f"k={args.k} f={args.f} gamma={args.gamma}"
    )
    if not args.quick and (transactions < 200 or args.k < 5):
        print("error: the full benchmark requires >= 200 transactions and k >= 5")
        return 2
    if any(size < 0 for size in args.tile_sizes):
        print("error: --tile-sizes must be >= 0 (0 = unbounded/untiled)")
        return 2

    backends = list(args.backends)
    reference = backends[0]
    assign_times = {}
    assignments = {}
    fit_times = {}
    fit_results = {}
    for backend in backends:
        assign_times[backend], assignments[backend] = bench_assign(
            dataset, backend, args.k, args.f, args.gamma, args.seed, repeats
        )
        fit_times[backend], fit_results[backend] = bench_fit(
            dataset, backend, args.k, args.f, args.gamma, args.seed
        )

    assign_parity = {
        backend: assignments[backend] == assignments[reference]
        for backend in backends[1:]
    }
    fit_parity = {
        backend: fit_results[backend].partition()
        == fit_results[reference].partition()
        for backend in backends[1:]
    }

    # --- tiled kernels: per-tile-size timing, parity, peak memory --------- #
    # the untiled path (block=0) is always measured first as the parity
    # baseline; every other budget must reproduce its assignment bit for
    # bit, and the per-tile scratch high-water mark plus a fresh-process
    # peak-RSS probe demonstrate the memory bound of the tile size
    tile_sizes = [0] + [size for size in dict.fromkeys(args.tile_sizes) if size != 0]
    tile_rows: List[Dict[str, object]] = []
    untiled_assignment = None
    try:
        # only a missing numpy skips the section; any other failure (a
        # kernel crash, a malformed tile size) must propagate so the CI
        # smoke fails instead of silently dropping the tiling gate
        for block in tile_sizes:
            seconds, assignment, scratch = bench_tile(
                dataset, block, args.k, args.f, args.gamma, args.seed, repeats
            )
            if untiled_assignment is None:
                untiled_assignment = assignment
            spec = f"numpy:block={block}"
            tile_rows.append(
                {
                    "backend": spec,
                    "block": block,
                    "seconds": seconds,
                    "parity": assignment == untiled_assignment,
                    "scratch_entries": scratch,
                    "peak_rss_kb": probe_peak_rss(args, scale, block),
                    "speedup": reference_speedup(
                        {**assign_times, spec: seconds}, spec
                    ),
                }
            )
    except BackendUnavailableError as error:  # pragma: no cover - numpy in CI
        print(f"note: tiled-kernel section skipped ({error})")
        tile_rows = []

    # the JSON artifact is written before any parity gate fires, so CI
    # uploads a report (with parity=false rows) even for failing runs
    if args.json:
        report = BenchReport(
            "bench_backend",
            corpus=args.corpus,
            scale=scale,
            transactions=transactions,
            k=args.k,
            f=args.f,
            gamma=args.gamma,
            seed=args.seed,
            quick=args.quick,
            reference=reference,
            speedup_baseline="python",
        )
        for backend in backends:
            is_reference = backend == reference
            report.record(
                backend=backend,
                op="assign_all",
                size=transactions,
                seconds=assign_times[backend],
                speedup=reference_speedup(assign_times, backend),
                parity=None if is_reference else assign_parity[backend],
            )
            report.record(
                backend=backend,
                op="fit",
                size=transactions,
                seconds=fit_times[backend],
                speedup=reference_speedup(fit_times, backend),
                parity=None if is_reference else fit_parity[backend],
            )
        for row in tile_rows:
            report.record(
                backend=row["backend"],
                op="assign_all_tiled",
                size=transactions,
                seconds=row["seconds"],
                speedup=row["speedup"],
                parity=row["parity"],
                block=row["block"],
                scratch_entries=row["scratch_entries"],
                peak_rss_kb=row["peak_rss_kb"],
            )
        report.write(args.json)

    for backend in backends[1:]:
        if not assign_parity[backend]:
            print(f"FAIL: {backend} disagrees with {reference} on the assignment step")
            return 1
        if not fit_parity[backend]:
            print(f"FAIL: {backend} disagrees with {reference} on the fitted clustering")
            return 1
    print("parity    : identical assignments and identical fitted clusterings")

    tile_mismatches = [row["block"] for row in tile_rows if not row["parity"]]
    if tile_mismatches:
        print(
            "FAIL: tiled kernels disagree with the untiled path at "
            f"tile sizes {tile_mismatches}"
        )
        return 1
    if tile_rows:
        print(
            "tiled     : bit-exact with the untiled path at every tile size"
        )
        print(
            f"{'tile size':>10}{'seconds':>12}{'scratch':>12}{'peak RSS':>12}"
        )
        for row in tile_rows:
            label = "unbounded" if row["block"] == 0 else str(row["block"])
            rss = (
                f"{row['peak_rss_kb']}K"
                if row["peak_rss_kb"] is not None
                else "n/a"
            )
            print(
                f"{label:>10}{row['seconds']:>11.4f}s"
                f"{row['scratch_entries']:>12}{rss:>12}"
            )

    print(f"{'step':<12}" + "".join(f"{backend:>16}" for backend in backends))
    print(
        f"{'assign_all':<12}"
        + "".join(f"{assign_times[backend]:>15.4f}s" for backend in backends)
    )
    print(
        f"{'fit':<12}"
        + "".join(f"{fit_times[backend]:>15.4f}s" for backend in backends)
    )
    for backend in backends[1:]:
        print(
            f"speedup over {reference} ({backend}): "
            f"assign_all {assign_times[reference] / assign_times[backend]:.1f}x, "
            f"fit {fit_times[reference] / fit_times[backend]:.1f}x"
        )

    if not args.quick:
        if {"python", "numpy"} <= set(backends):
            assign_speedup = assign_times["python"] / assign_times["numpy"]
            if assign_speedup < args.min_speedup:
                print(
                    f"FAIL: numpy backend only {assign_speedup:.1f}x faster on assign_all "
                    f"(required: {args.min_speedup:.1f}x)"
                )
                return 1
        else:
            print(
                "note: min-speedup gate skipped "
                "(requires both python and numpy in --backends)"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
