"""Benchmark B4 -- warm-model serving throughput (queries/sec + latency).

Measures the full serving path of :mod:`repro.core.model_store`: fit a
clustering on a synthetic corpus, persist it with ``save_model`` (the
compiled-corpus store attached, so reloads are warm), then time

- ``load_model`` per benchmarked backend (cold JSON decode + store attach;
  the record carries the resulting store status), and
- ``ClusterModel.classify`` over a query stream of serialized corpus
  documents -- reported as queries/sec with a latency histogram
  (p50/p90/p99 and fixed millisecond buckets), one record per backend.

Classify parity is checked across backends before any timing is trusted:
every backend must assign every query document to the same cluster as the
pure-Python reference.  A store-hit load must also do zero corpus compile
work (``corpus_compile_count == 0``) or the run fails.

With ``--workers N`` the run adds a multi-process stage: the saved model
is served by a pool of N worker processes (the same
:func:`repro.serving.worker_classify_batch` entry point the async server
dispatches to), the query stream is split into per-worker batches, and
the record reports the **aggregate** queries/sec next to the
single-process number.  Parity still gates the stage: the pooled
assignments must match the single-process reference bit-exactly.  On a
multi-core host the aggregate must beat the single-process rate (the
gate is skipped on one CPU, where a pool can only add overhead).

Run standalone (no pytest machinery needed)::

    PYTHONPATH=src python benchmarks/bench_serving.py            # full run
    PYTHONPATH=src python benchmarks/bench_serving.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_serving.py --workers 2
    PYTHONPATH=src python benchmarks/bench_serving.py --json bench-serving.json
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional

from benchjson import BenchReport, reference_speedup

from repro.core.config import ClusteringConfig
from repro.core.model_store import load_model, save_model
from repro.core.xkmeans import XKMeans
from repro.datasets.registry import get_corpus, get_dataset
from repro.similarity.backend import BackendUnavailableError
from repro.similarity.corpus_store import clear_store_cache, prepare_engine_corpus
from repro.similarity.item import SimilarityConfig
from repro.xmlmodel.serializer import serialize

#: Latency histogram bucket upper bounds in milliseconds (the last bucket
#: is open-ended).
LATENCY_BUCKETS_MS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted non-empty list."""
    index = min(
        len(sorted_values) - 1, max(0, round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def latency_histogram(latencies_ms: List[float]) -> Dict[str, int]:
    """Bucket latencies into the fixed :data:`LATENCY_BUCKETS_MS` bins."""
    histogram: Dict[str, int] = {}
    previous = 0.0
    counts = [0] * (len(LATENCY_BUCKETS_MS) + 1)
    for value in latencies_ms:
        for index, bound in enumerate(LATENCY_BUCKETS_MS):
            if value <= bound:
                counts[index] += 1
                break
        else:
            counts[-1] += 1
    for index, bound in enumerate(LATENCY_BUCKETS_MS):
        histogram[f"le_{bound:g}ms"] = counts[index]
        previous = bound
    histogram[f"gt_{previous:g}ms"] = counts[-1]
    return histogram


def _split_batches(documents: List[str], batches: int) -> List[List[str]]:
    """Split *documents* into *batches* near-equal contiguous slices."""
    size, remainder = divmod(len(documents), batches)
    slices: List[List[str]] = []
    start = 0
    for index in range(batches):
        stop = start + size + (1 if index < remainder else 0)
        slices.append(documents[start:stop])
        start = stop
    return [part for part in slices if part]


def run_worker_stage(
    report: BenchReport,
    model_dir: Path,
    backend: str,
    query_documents: List[str],
    reference_assignments: Optional[List[int]],
    single_qps: Optional[float],
    workers: int,
    failures: List[str],
) -> None:
    """Benchmark classify on a pool of *workers* processes.

    Each worker keeps its own warm model (the server's
    :func:`~repro.serving.process_model` cache); one warm-up batch per
    worker pays the model load outside the timed window, then the query
    stream is dispatched as per-worker batches and timed end to end.
    Appends an ``op="classify_pool"`` record; gates on bit-exact parity
    with *reference_assignments* and -- only when the host actually has
    more than one CPU -- on the aggregate rate beating *single_qps*.
    """
    from repro.serving import worker_classify_batch
    from repro.store.registry import model_fingerprint

    fingerprint = model_fingerprint(model_dir)
    batches = _split_batches(query_documents, workers)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        warmup = [
            pool.submit(
                worker_classify_batch, str(model_dir), fingerprint, backend,
                query_documents[:1],
            )
            for _ in range(workers)
        ]
        for future in warmup:
            future.result()
        start = time.perf_counter()
        futures = [
            pool.submit(
                worker_classify_batch, str(model_dir), fingerprint, backend, batch
            )
            for batch in batches
        ]
        payloads = [payload for future in futures for payload in future.result()]
        total = time.perf_counter() - start

    assignments = [payload["cluster_id"] for payload in payloads]
    latencies = sorted(payload["latency_ms"] for payload in payloads)
    parity: Optional[bool] = None
    if reference_assignments is not None:
        parity = assignments == reference_assignments
        if not parity:
            failures.append(
                f"workers={workers}: pooled assignments diverge from the "
                "single-process reference"
            )
    qps = len(payloads) / total if total else 0.0
    cpus = os.cpu_count() or 1
    if single_qps is not None and cpus > 1 and qps <= single_qps:
        failures.append(
            f"workers={workers}: aggregate {qps:.1f} q/s did not beat the "
            f"single-process {single_qps:.1f} q/s on a {cpus}-CPU host"
        )
    report.record(
        backend=backend,
        op="classify_pool",
        size=len(payloads),
        seconds=total,
        speedup=(qps / single_qps) if single_qps else None,
        parity=parity,
        qps=qps,
        workers=workers,
        cpus=cpus,
        store=payloads[-1].get("store") if payloads else None,
        single_process_qps=single_qps,
        latency_ms_p50=percentile(latencies, 0.50),
        latency_ms_p90=percentile(latencies, 0.90),
        latency_ms_p99=percentile(latencies, 0.99),
        latency_histogram=latency_histogram(latencies),
    )
    print(
        f"{'pool x' + str(workers):>14}: {qps:8.1f} q/s aggregate "
        f"({cpus} CPUs, single-process {single_qps or 0.0:.1f} q/s), "
        f"p50 {percentile(latencies, 0.50):.2f}ms "
        f"p99 {percentile(latencies, 0.99):.2f}ms"
    )


def run_benchmark(args: argparse.Namespace) -> int:
    """Fit + save once, then benchmark load and classify per backend."""
    scale = 0.2 if args.quick else args.scale
    queries = 30 if args.quick else args.queries
    report = BenchReport(
        "bench_serving",
        corpus=args.corpus,
        scale=scale,
        queries=queries,
        quick=args.quick,
        fit_backend=args.fit_backend,
    )

    corpus = get_corpus(args.corpus, scale=scale, seed=args.seed)
    documents = [serialize(tree) for tree in corpus.trees]
    dataset = get_dataset(args.corpus, scale=scale, seed=args.seed)
    config = ClusteringConfig(
        k=args.k,
        similarity=SimilarityConfig(f=0.5, gamma=0.8),
        seed=args.seed,
        max_iterations=args.max_iterations,
        backend=args.fit_backend,
    )

    with tempfile.TemporaryDirectory(prefix="bench-serving-") as tmp:
        cache_dir = Path(tmp) / "corpus-cache"
        model_dir = Path(tmp) / "model"
        algorithm = XKMeans(config)
        prepare_engine_corpus(
            algorithm.engine, dataset.transactions, cache_dir=cache_dir
        )
        fit_start = time.perf_counter()
        result = algorithm.fit(dataset.transactions)
        fit_seconds = time.perf_counter() - fit_start
        save_model(model_dir, result, config, dataset=dataset, engine=algorithm.engine)
        print(
            f"fitted {args.corpus} scale={scale} "
            f"({len(dataset.transactions)} transactions, k={config.k}) "
            f"in {fit_seconds:.2f}s; model saved"
        )

        reference_assignments: Optional[List[int]] = None
        classify_seconds: Dict[str, float] = {}
        failures: List[str] = []
        for backend in args.backends:
            clear_store_cache()
            try:
                load_start = time.perf_counter()
                model = load_model(model_dir, backend=backend)
                load_seconds = time.perf_counter() - load_start
            except BackendUnavailableError as error:
                print(f"[skip] {backend}: {error}")
                continue
            stats = model.stats()
            report.record(
                backend=backend,
                op="load",
                size=len(dataset.transactions),
                seconds=load_seconds,
                parity=None,
                store=stats["store"],
                corpus_compile_count=stats["corpus_compile_count"],
            )
            if stats["store"] == "hit" and stats["corpus_compile_count"] != 0:
                failures.append(
                    f"{backend}: store-hit load compiled "
                    f"{stats['corpus_compile_count']} transactions (expected 0)"
                )

            assignments: List[int] = []
            latencies: List[float] = []
            start = time.perf_counter()
            for index in range(queries):
                document = documents[index % len(documents)]
                query_start = time.perf_counter()
                outcome = model.classify(document)
                latencies.append((time.perf_counter() - query_start) * 1000.0)
                assignments.append(outcome.cluster_id)
            total = time.perf_counter() - start
            classify_seconds[backend] = total

            parity: Optional[bool] = None
            if backend == "python":
                reference_assignments = assignments
            elif reference_assignments is not None:
                parity = assignments == reference_assignments
                if not parity:
                    failures.append(
                        f"{backend}: classify assignments diverge from python"
                    )
            ordered = sorted(latencies)
            stats = model.stats()
            qps = queries / total if total else 0.0
            report.record(
                backend=backend,
                op="classify",
                size=queries,
                seconds=total,
                speedup=reference_speedup(classify_seconds, backend),
                parity=parity,
                qps=qps,
                store=stats["store"],
                corpus_compile_count=stats["corpus_compile_count"],
                latency_ms_p50=percentile(ordered, 0.50),
                latency_ms_p90=percentile(ordered, 0.90),
                latency_ms_p99=percentile(ordered, 0.99),
                latency_histogram=latency_histogram(latencies),
            )
            if stats["corpus_compile_count"] != 0 and stats["store"] == "hit":
                failures.append(
                    f"{backend}: classify compiled corpus transactions on a "
                    "store hit"
                )
            print(
                f"{backend:>14}: load {load_seconds * 1000.0:7.1f}ms "
                f"(store {stats['store']}), {qps:8.1f} q/s, "
                f"p50 {percentile(ordered, 0.50):.2f}ms "
                f"p99 {percentile(ordered, 0.99):.2f}ms"
            )
            model.close()

        if args.workers:
            pool_backend = args.fit_backend
            single_qps = (
                queries / classify_seconds[pool_backend]
                if classify_seconds.get(pool_backend)
                else None
            )
            run_worker_stage(
                report,
                model_dir,
                pool_backend,
                [documents[index % len(documents)] for index in range(queries)],
                reference_assignments,
                single_qps,
                args.workers,
                failures,
            )

    if args.json:
        report.write(args.json)
    for failure in failures:
        print(f"FAILED: {failure}")
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and run the serving benchmark."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizing")
    parser.add_argument("--corpus", default="DBLP", help="synthetic corpus name")
    parser.add_argument("--scale", type=float, default=0.5, help="corpus scale")
    parser.add_argument("--seed", type=int, default=0, help="corpus seed")
    parser.add_argument("--k", type=int, default=8, help="cluster count")
    parser.add_argument(
        "--max-iterations", type=int, default=4, help="fit iteration cap"
    )
    parser.add_argument(
        "--queries", type=int, default=300, help="classify calls per backend"
    )
    parser.add_argument(
        "--fit-backend", default="numpy", help="backend spec used for the fit"
    )
    parser.add_argument(
        "--backends",
        nargs="+",
        default=["python", "numpy"],
        help="backend specs to serve with (python is the parity reference)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="also benchmark classify on a pool of N worker processes "
        "(aggregate q/s; parity-gated against the single-process stream)",
    )
    parser.add_argument("--json", default=None, metavar="PATH", help="JSON report")
    args = parser.parse_args(argv)
    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be positive, got {args.workers}")
    return run_benchmark(args)


if __name__ == "__main__":
    sys.exit(main())
