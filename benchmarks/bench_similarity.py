"""Benchmark A3 -- micro-benchmarks of the similarity kernels.

The complexity analysis of Sec. 4.3.1 bounds the cost of the similarity
functions; these micro-benchmarks measure the actual kernels (structural
path similarity, TCU cosine, combined item similarity, transactional
sim^gamma_J, local representative computation) on realistic inputs drawn from
the synthetic DBLP corpus, so regressions in the hot paths are visible in the
pytest-benchmark history.
"""

from __future__ import annotations

import pytest

from repro.core.representatives import compute_local_representative
from repro.datasets.registry import get_dataset
from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.item import SimilarityConfig
from repro.similarity.structural import tag_path_similarity
from repro.similarity.transaction import SimilarityEngine


@pytest.fixture(scope="module")
def dblp():
    return get_dataset("DBLP", scale=0.35, seed=0)


@pytest.fixture(scope="module")
def engine():
    return SimilarityEngine(SimilarityConfig(f=0.5, gamma=0.8), cache=TagPathSimilarityCache())


@pytest.mark.benchmark(group="kernels")
def test_bench_tag_path_similarity(benchmark):
    p = ("dblp", "inproceedings", "author")
    q = ("dblp", "article", "author")
    result = benchmark(tag_path_similarity, p, q)
    assert 0.0 <= result <= 1.0


@pytest.mark.benchmark(group="kernels")
def test_bench_tcu_cosine(benchmark, dblp):
    items = [item for tr in dblp.transactions[:20] for item in tr.items if item.vector]
    u, v = items[0].vector, items[1].vector
    benchmark(u.cosine, v)


@pytest.mark.benchmark(group="kernels")
def test_bench_item_similarity(benchmark, dblp, engine):
    items = [item for tr in dblp.transactions[:20] for item in tr.items]
    a, b = items[0], items[7]
    result = benchmark(engine.item_similarity, a, b)
    assert 0.0 <= result <= 1.0


@pytest.mark.benchmark(group="kernels")
def test_bench_transaction_similarity(benchmark, dblp, engine):
    tr1, tr2 = dblp.transactions[0], dblp.transactions[1]
    result = benchmark(engine.transaction_similarity, tr1, tr2)
    assert 0.0 <= result <= 1.0

    # sanity on the complexity claim: the kernel touches every item pair, so
    # its cost is O(|tr1| * |tr2|) item similarities -- keep the sizes visible
    # in the benchmark metadata.
    benchmark.extra_info["items_tr1"] = len(tr1)
    benchmark.extra_info["items_tr2"] = len(tr2)


@pytest.mark.benchmark(group="kernels")
def test_bench_local_representative(benchmark, dblp, engine):
    cluster = dblp.transactions[:12]
    representative = benchmark(compute_local_representative, cluster, engine)
    assert len(representative) > 0


@pytest.mark.benchmark(group="kernels")
def test_bench_tag_path_cache_effect(benchmark, dblp):
    """The precomputed tag-path cache must make repeated lookups cheap."""
    cache = TagPathSimilarityCache()
    tag_paths = {item.tag_path for tr in dblp.transactions for item in tr.items}
    cache.precompute(tag_paths)
    paths = sorted(tag_paths)[:10]

    def lookup_all():
        total = 0.0
        for p in paths:
            for q in paths:
                total += cache.similarity(p, q)
        return total

    total = benchmark(lookup_all)
    assert total > 0.0
    assert cache.misses == 0  # everything was precomputed
