"""Serving quickstart: fit, publish, and query two models through the router.

This example walks the registry-backed serving lifecycle of
``docs/SERVING.md`` end to end, entirely in-process:

1. fit two differently-shaped XK-means clusterings on the synthetic DBLP
   corpus (a content-leaning blend and a structure-leaning one),
2. persist each with ``save_model`` and publish it into a durable sqlite
   registry in the same call,
3. start the async multi-model server on the registry's active models,
4. query both models through their routes
   (``POST /models/<name>/classify``) and read the per-model ``/stats``,
5. publish a new version of one model and hot-reload it into the running
   server — zero requests dropped, the route's version just changes.

Run with ``PYTHONPATH=src python examples/serving_quickstart.py``.
"""

from __future__ import annotations

import asyncio
import json
import socket
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro import ClusteringConfig, SimilarityConfig, XKMeans
from repro.core.model_store import save_model
from repro.datasets.registry import get_corpus, get_dataset
from repro.serving import AsyncModelServer, ModelRouter
from repro.store import open_registry
from repro.xmlmodel.serializer import serialize

SCALE = 0.2  # raise for a bigger corpus (and a slower example)


def fit_and_publish(registry, directory: Path, name: str, *, f: float, k: int):
    """Fit one XK-means model and publish it into *registry* as *name*."""
    dataset = get_dataset("DBLP", scale=SCALE, seed=0)
    config = ClusteringConfig(
        k=k,
        similarity=SimilarityConfig(f=f, gamma=0.8),
        seed=0,
        max_iterations=3,
    )
    algorithm = XKMeans(config)
    result = algorithm.fit(dataset.transactions)
    manifest = save_model(
        directory, result, config, dataset=dataset, engine=algorithm.engine,
        registry=registry, model_name=name,
    )
    published = manifest["registry"]
    print(
        f"published {published['name']} v{published['version']} "
        f"({published['fingerprint'][:12]}) <- f={f} k={k}"
    )


def http(method: str, url: str, body: bytes = b"", attempts: int = 100):
    """One JSON request against the router (retrying while it boots)."""
    request = urllib.request.Request(url, data=body, method=method)
    for attempt in range(attempts):
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return json.loads(response.read())
        except urllib.error.URLError:
            if attempt == attempts - 1:
                raise
            time.sleep(0.05)


def main() -> None:
    """Run the fit -> publish -> serve -> hot-reload lifecycle."""
    with tempfile.TemporaryDirectory(prefix="serving-quickstart-") as tmp:
        base = Path(tmp)

        # 1-2. fit two blends of the same corpus, publish both ------------- #
        registry = open_registry(base / "registry.db")
        fit_and_publish(registry, base / "content-model", "dblp-content",
                        f=0.2, k=4)
        fit_and_publish(registry, base / "structure-model", "dblp-structure",
                        f=0.8, k=4)

        # 3. serve the registry's active models ---------------------------- #
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        server = AsyncModelServer(
            ModelRouter(registry=open_registry(base / "registry.db")),
            port=port,
        )
        thread = threading.Thread(
            target=lambda: asyncio.run(server.run(install_signal_handlers=False)),
        )
        thread.start()
        server.started.wait(timeout=30)
        root = f"http://127.0.0.1:{port}"
        print(f"serving {root} ->",
              ", ".join(http("GET", f"{root}/healthz")["models"]))

        # 4. query both models through their routes ------------------------ #
        document = serialize(get_corpus("DBLP", scale=SCALE, seed=0).trees[0])
        for name in ("dblp-content", "dblp-structure"):
            verdict = http(
                "POST", f"{root}/models/{name}/classify",
                document.encode("utf-8"),
            )
            print(
                f"{name}: cluster={verdict['cluster_id']} "
                f"score={verdict['score']:.4f} v{verdict['version']} "
                f"({verdict['latency_ms']:.2f} ms)"
            )
        stats = http("GET", f"{root}/models/dblp-content/stats")
        print(
            f"stats dblp-content: requests={stats['requests']} "
            f"errors={stats['errors']} p50={stats['latency_ms_p50']:.2f} ms"
        )

        # 5. publish new content under an existing name, hot-reload -------- #
        fit_and_publish(registry, base / "content-model-v2", "dblp-content",
                        f=0.3, k=5)
        reloaded = http("POST", f"{root}/reload", b"")
        print(f"hot reload swapped: {reloaded['reloaded']['swapped']}")
        stats = http("GET", f"{root}/models/dblp-content/stats")
        print(
            f"route dblp-content now serves v{stats['version']} "
            f"(reloads={stats['reloads']}, counters carried: "
            f"requests={stats['requests']})"
        )

        server.shutdown_threadsafe()
        thread.join(timeout=30)
        print("drained cleanly")


if __name__ == "__main__":
    main()
