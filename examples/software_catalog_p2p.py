"""Structure + content clustering of heterogeneous software catalogues.

The paper's introduction describes users in a P2P network sharing software
descriptions encoded in XML with *different logical structures*: one source
uses a flat, text-centric layout (full review text repeated under ``review``
elements), another a data-centric layout (a ``reviews`` subtree with one
sub-element per aspect).  Structure/content-driven clustering should match
records about the same kind of software across the two layouts, while
structure-driven clustering separates the two catalogue formats.

This example generates both kinds of records for two software categories
(games and office tools), runs CXK-means twice with different ``f`` settings
and shows how the blend factor changes what the clusters mean.

Run with ``python examples/software_catalog_p2p.py``.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro import ClusteringConfig, CXKMeans, SimilarityConfig, parse_xml
from repro.core import partition_equally
from repro.evaluation import overall_f_measure
from repro.transactions import build_dataset

CATEGORY_WORDS = {
    "game": [
        "game", "player", "level", "graphics", "multiplayer", "quest",
        "arcade", "puzzle", "adventure", "score", "controller", "engine",
    ],
    "office": [
        "document", "spreadsheet", "editor", "presentation", "formula",
        "template", "paragraph", "table", "export", "formatting", "macro",
        "collaboration",
    ],
}


def text_centric_record(rng: random.Random, category: str, index: int) -> str:
    """Flat layout: whole reviews as repeated text elements."""
    words = CATEGORY_WORDS[category]
    name = f"{category}-app-{index}"
    reviews = "".join(
        f"<review>{' '.join(rng.choices(words, k=14))} rating {rng.randint(1, 5)} stars</review>"
        for _ in range(2)
    )
    return (
        f"<software><name>{name}</name>"
        f"<developer>Studio {rng.randint(1, 30)}</developer>"
        f"<platform>{rng.choice(['linux', 'windows', 'macos'])}</platform>"
        f"{reviews}</software>"
    )


def data_centric_record(rng: random.Random, category: str, index: int) -> str:
    """Structured layout: aspects split into dedicated sub-elements."""
    words = CATEGORY_WORDS[category]
    name = f"{category}-pkg-{index}"
    return (
        f'<package id="pkg{index}"><title>{name}</title>'
        f"<license>{rng.choice(['gpl', 'mit', 'proprietary'])}</license>"
        f"<reviews>"
        f"<positive>{' '.join(rng.choices(words, k=8))}</positive>"
        f"<negative>{' '.join(rng.choices(words, k=6))}</negative>"
        f"<rating>{rng.randint(1, 5)}</rating>"
        f"<recommendation>{' '.join(rng.choices(words, k=5))}</recommendation>"
        f"</reviews></package>"
    )


def build_collection(documents: int = 28, seed: int = 5):
    rng = random.Random(seed)
    trees = []
    labels: Dict[str, Dict[str, str]] = {"category": {}, "layout": {}}
    for index in range(documents):
        category = "game" if index % 2 == 0 else "office"
        layout = "text-centric" if index % 4 < 2 else "data-centric"
        xml = (
            text_centric_record(rng, category, index)
            if layout == "text-centric"
            else data_centric_record(rng, category, index)
        )
        doc_id = f"sw{index:03d}"
        trees.append(parse_xml(xml, doc_id=doc_id))
        labels["category"][doc_id] = category
        labels["layout"][doc_id] = layout
    return build_dataset("software", trees, doc_labels=labels)


def run(dataset, f: float, gamma: float, k: int, reference: Dict[str, str], title: str) -> None:
    config = ClusteringConfig(
        k=k,
        similarity=SimilarityConfig(f=f, gamma=gamma),
        seed=3,
        max_iterations=10,
    )
    partitions = partition_equally(dataset.transactions, 3, seed=3)
    result = CXKMeans(config).fit(partitions)
    score = overall_f_measure(result.partition(), reference)
    print(f"\n{title} (f={f}, gamma={gamma})")
    print(f"  F-measure vs. this ground truth: {score:.3f}")
    for cluster in result.clusters:
        counts: Dict[str, int] = {}
        for member in cluster.member_ids():
            label = reference[member]
            counts[label] = counts.get(label, 0) + 1
        print(f"  cluster {cluster.cluster_id}: size {cluster.size():3d} {counts}")


def main() -> None:
    dataset = build_collection()
    print("Software catalogue:", dataset.summary())

    # content-leaning run: clusters should follow the software category,
    # regardless of which catalogue layout described the package
    run(
        dataset,
        f=0.1,
        gamma=0.4,
        k=2,
        reference=dataset.labels_for("category"),
        title="Content-driven clustering (what is the software about?)",
    )

    # structure-driven run: clusters should follow the catalogue layout
    run(
        dataset,
        f=1.0,
        gamma=0.8,
        k=2,
        reference=dataset.labels_for("layout"),
        title="Structure-driven clustering (which source format?)",
    )


if __name__ == "__main__":
    main()
