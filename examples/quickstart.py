"""Quickstart: from raw XML strings to a collaborative clustering.

This example walks the full pipeline of the paper on a handful of inline XML
documents:

1. parse the documents into XML trees,
2. decompose them into tree tuples and build the transactional dataset,
3. cluster the transactions with the centralized XK-means,
4. cluster them again with CXK-means over three simulated peers,
5. compare the two solutions.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

from repro import (
    ClusteringConfig,
    CXKMeans,
    SimilarityConfig,
    XKMeans,
    parse_xml,
)
from repro.core import partition_equally
from repro.transactions import build_dataset

# --------------------------------------------------------------------------- #
# 1. A tiny heterogeneous collection: conference papers and journal articles
#    about two different topics (data mining vs. networking).
# --------------------------------------------------------------------------- #
DOCUMENTS = {
    "paper-1": """
        <inproceedings key="conf/kdd/1">
          <author>M. Rossi</author>
          <title>Mining frequent patterns in large transaction databases</title>
          <booktitle>KDD</booktitle><year>2007</year>
        </inproceedings>""",
    "paper-2": """
        <inproceedings key="conf/kdd/2">
          <author>A. Keller</author>
          <title>Clustering transactional data with frequent itemsets</title>
          <booktitle>KDD</booktitle><year>2008</year>
        </inproceedings>""",
    "paper-3": """
        <inproceedings key="conf/sigcomm/1">
          <author>J. Tanaka</author>
          <title>Routing protocols for wireless mesh networks</title>
          <booktitle>SIGCOMM</booktitle><year>2007</year>
        </inproceedings>""",
    "article-1": """
        <article>
          <author>P. Novak</author>
          <title>Frequent itemset mining over data streams</title>
          <journal>Data Mining Journal</journal><year>2008</year>
        </article>""",
    "article-2": """
        <article>
          <author>L. Silva</author>
          <title>Congestion control in packet switched networks</title>
          <journal>Networking Letters</journal><year>2006</year>
        </article>""",
    "article-3": """
        <article>
          <author>R. Dubois</author>
          <title>Wireless network routing with adaptive protocols</title>
          <journal>Networking Letters</journal><year>2009</year>
        </article>""",
}


def main() -> None:
    # ----------------------------------------------------------------- #
    # 2. Parse and build the transactional dataset
    # ----------------------------------------------------------------- #
    trees = [parse_xml(text, doc_id=doc_id) for doc_id, text in DOCUMENTS.items()]
    dataset = build_dataset("quickstart", trees)
    print("Dataset:", dataset.summary())

    config = ClusteringConfig(
        k=2,
        similarity=SimilarityConfig(f=0.1, gamma=0.35),  # content-leaning
        seed=1,
        max_iterations=10,
    )

    # ----------------------------------------------------------------- #
    # 3. Centralized clustering (the m = 1 baseline)
    # ----------------------------------------------------------------- #
    centralized = XKMeans(config).fit(dataset.transactions)
    print("\nCentralized XK-means")
    for cluster in centralized.clusters:
        print(f"  cluster {cluster.cluster_id}: {sorted(cluster.member_ids())}")
    print(f"  trash: {sorted(centralized.trash.member_ids())}")

    # ----------------------------------------------------------------- #
    # 4. Collaborative distributed clustering over three peers
    # ----------------------------------------------------------------- #
    partitions = partition_equally(dataset.transactions, 3, seed=0)
    collaborative = CXKMeans(config).fit(partitions)
    print("\nCXK-means over 3 peers")
    for cluster in collaborative.clusters:
        print(f"  cluster {cluster.cluster_id}: {sorted(cluster.member_ids())}")
    print(f"  trash: {sorted(collaborative.trash.member_ids())}")
    print(
        "  network: "
        f"{collaborative.network['messages']:.0f} messages, "
        f"{collaborative.network['transferred_transactions']:.0f} representatives exchanged, "
        f"{collaborative.iterations} collaborative rounds"
    )

    # ----------------------------------------------------------------- #
    # 5. Inspect the global cluster representatives (the summaries that
    #    peers exchange instead of raw data)
    # ----------------------------------------------------------------- #
    print("\nGlobal cluster representatives")
    for cluster in collaborative.clusters:
        rep = cluster.representative
        if rep is None or rep.is_empty():
            continue
        print(f"  cluster {cluster.cluster_id}:")
        for item in rep.items:
            answer = item.answer if len(item.answer) <= 60 else item.answer[:57] + "..."
            print(f"    {item.path} = {answer!r}")


if __name__ == "__main__":
    main()
