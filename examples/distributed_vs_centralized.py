"""Distributed vs. centralized clustering: runtime, traffic and accuracy.

This example reproduces, at demonstration scale, the core experimental story
of the paper on the synthetic DBLP corpus:

* the simulated clustering time drops sharply when the corpus is distributed
  over a few collaborating peers (Fig. 7),
* the clustering accuracy decreases only moderately (Tables 1-2),
* the non-collaborative PK-means baseline exchanges considerably more data
  per round than CXK-means (Fig. 8).

Run with ``python examples/distributed_vs_centralized.py`` (takes a couple of
minutes on a laptop -- lower ``SCALE`` for a quicker look).
"""

from __future__ import annotations

from repro import ClusteringConfig, CXKMeans, PKMeans, SimilarityConfig
from repro.core import partition_equally
from repro.datasets import cluster_count, get_dataset
from repro.evaluation import format_series, format_table, overall_f_measure
from repro.network import CostModel

SCALE = 0.35
NODE_COUNTS = (1, 3, 5, 7)
GOAL = "hybrid"


def main() -> None:
    dataset = get_dataset("DBLP", scale=SCALE, seed=0)
    reference = dataset.labels_for(GOAL)
    k = cluster_count("DBLP", GOAL)
    config = ClusteringConfig(
        k=k,
        similarity=SimilarityConfig(f=0.5, gamma=0.8),
        seed=0,
        max_iterations=5,
    )
    cost_model = CostModel(t_comm=1.5e-3, unit_comm=1.0e-5)

    print("DBLP synthetic corpus:", dataset.summary())
    print(f"clusters (k): {k}, clustering goal: {GOAL}\n")

    runtime = {}
    rows = []
    for nodes in NODE_COUNTS:
        partitions = partition_equally(dataset.transactions, nodes, seed=0)
        cxk = CXKMeans(config, cost_model=cost_model).fit(partitions)
        pk = PKMeans(config, cost_model=cost_model).fit(partitions)
        runtime[nodes] = cxk.simulated_seconds
        rows.append(
            [
                nodes,
                round(cxk.simulated_seconds, 2),
                round(pk.simulated_seconds, 2),
                round(overall_f_measure(cxk.partition(), reference), 3),
                round(overall_f_measure(pk.partition(), reference), 3),
                int(cxk.network["transferred_transactions"]),
                int(pk.network["transferred_transactions"]),
            ]
        )

    print(
        format_table(
            [
                "peers",
                "CXK time [s]",
                "PK time [s]",
                "CXK F",
                "PK F",
                "CXK reps sent",
                "PK reps sent",
            ],
            rows,
            title="CXK-means vs PK-means on distributed DBLP",
        )
    )
    print()
    print(
        format_series(
            runtime,
            y_label="seconds",
            title="CXK-means simulated runtime vs. number of peers (Fig. 7 shape)",
        )
    )


if __name__ == "__main__":
    main()
