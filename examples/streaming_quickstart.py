"""Streaming quickstart: ingest a corpus chunk by chunk, out of core.

This example walks the streaming ingestion path of
``docs/ARCHITECTURE.md`` ("Streaming ingestion & the block store")
end to end, entirely in-process:

1. generate a synthetic DBLP corpus and pretend it arrives as a stream
   of small chunks (a feed, a crawler, a message queue),
2. bootstrap a :class:`~repro.core.streaming.StreamingClusterer` on the
   first chunks, then ingest the rest incrementally -- each chunk is
   delta-compiled onto the warm engine and appended to an on-disk
   **block chain** (:class:`~repro.similarity.corpus_store.BlockCorpusStore`),
   so earlier chunks never recompile and older blocks stay mmap-resident,
3. watch the drift signal trigger bounded re-refinements as the stream's
   population shifts,
4. finalize, and compare the streamed partition against a one-shot batch
   fit of the identical corpus (the replay-parity story of
   ``benchmarks/bench_streaming.py``),
5. replay the same stream as ONE chunk to show the bit-exactness anchor:
   ``chunk_size >= corpus`` *is* the batch fit.

Run with ``PYTHONPATH=src python examples/streaming_quickstart.py``.
The equivalent CLI is ``cxk stream --model DIR --corpus DBLP
--chunk-size 16 --out-of-core`` (or pipe XML paths via ``--stdin``).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import ClusteringConfig, SimilarityConfig, XKMeans
from repro.core.streaming import StreamingClusterer, stream_chunks
from repro.datasets.registry import get_dataset
from repro.evaluation.fmeasure import overall_f_measure
from repro.similarity.corpus_store import BlockCorpusStore

SCALE = 0.3  # raise for a bigger corpus (and a slower example)
CHUNK = 12


def make_config(chunk_size):
    """One configuration shared by the batch and streamed fits."""
    return ClusteringConfig(
        k=4,
        similarity=SimilarityConfig(f=0.5, gamma=0.8),
        seed=0,
        max_iterations=4,
        backend="numpy",
    ).with_streaming(chunk_size=chunk_size)


def main() -> None:
    dataset = get_dataset("DBLP", scale=SCALE, seed=0)
    transactions = dataset.transactions
    print(f"corpus: {len(transactions)} transactions (DBLP scale {SCALE})\n")

    # -- 1-3: stream the corpus into an out-of-core block chain ---------
    with tempfile.TemporaryDirectory() as tmp:
        config = make_config(CHUNK)
        store = BlockCorpusStore.create(Path(tmp) / "blocks", config.similarity)
        clusterer = StreamingClusterer(config, store=store, keep_members=False)
        for index, chunk in enumerate(stream_chunks(transactions, CHUNK)):
            clusterer.ingest(chunk)
            phase = "bootstrap" if index == 0 else "ingest"
            print(
                f"chunk {index:2d} ({phase:9s}): {len(chunk):3d} docs, "
                f"drift={clusterer.drift:.2f}, "
                f"re_refinements={clusterer.stats.re_refinements}"
            )
        streamed = clusterer.finalize()
        stats = streamed.metadata["streaming"]
        print(
            f"\nstreamed : {stats['blocks_appended']} blocks on disk, "
            f"{store.transaction_count} rows, "
            f"{stats['re_refinements']} re-refinements "
            f"(churn {stats['churn']:.2f})"
        )
        streamed_partition = clusterer.partition(include_trash=True)

    # -- 4: compare against a one-shot batch fit of the same corpus -----
    batch = XKMeans(make_config(None)).fit(transactions)
    batch_partition = batch.partition(include_trash=True)
    reference = {
        transaction_id: f"c{index}"
        for index, cluster in enumerate(batch_partition)
        for transaction_id in cluster
    }
    agreement = overall_f_measure(streamed_partition, reference)
    print(f"parity   : overall F vs batch = {agreement:.3f} (chunked replay)")

    # -- 5: one big chunk IS the batch fit (bit-exact) -------------------
    one_shot = StreamingClusterer(make_config(None))
    one_shot.ingest(transactions)
    one_shot.finalize()
    canonical = lambda parts: sorted(tuple(sorted(c)) for c in parts)  # noqa: E731
    exact = canonical(one_shot.partition(include_trash=True)) == canonical(
        batch_partition
    )
    print(f"anchor   : chunk_size=inf replay bit-exact with batch = {exact}")
    assert exact, "one-big-chunk streaming must equal the batch fit"


if __name__ == "__main__":
    main()
