"""Clustering distributed XML news feeds (the paper's motivating scenario).

The introduction of the paper motivates distributed clustering with Web news
services that must cluster XML articles arriving from thousands of sources
every few minutes: shipping all articles to one central machine is
prohibitive, so every peer clusters its local feed and only compact cluster
representatives travel over the network.

This example builds a small fleet of "news feed" peers, each holding
articles from three topics (sports, politics, medicine) encoded with
slightly different markup per provider, and shows that:

* the collaborative clustering recovers the three topics without moving the
  articles themselves, and
* the amount of exchanged data (representatives) is a small fraction of the
  corpus.

Run with ``python examples/news_feed_clustering.py``.
"""

from __future__ import annotations

import random

from repro import ClusteringConfig, CXKMeans, SimilarityConfig, parse_xml
from repro.datasets import TOPICS
from repro.evaluation import overall_f_measure
from repro.transactions import build_dataset

TOPIC_NAMES = ["sports", "politics", "medicine"]
PROVIDER_SCHEMAS = ["rss", "newsml"]


def make_article(rng: random.Random, provider: str, topic: str, index: int) -> str:
    """Render one article with the provider's markup convention."""
    words = TOPICS[topic]
    headline = " ".join(rng.sample(words, 5))
    body = " ".join(rng.choices(words, k=25))
    byline = rng.choice(["agency desk", "staff reporter", "correspondent"])
    if provider == "rss":
        return (
            f"<item><title>{headline}</title><description>{body}</description>"
            f"<source>{byline}</source></item>"
        )
    return (
        f'<newsItem guid="n{index}"><headline>{headline}</headline>'
        f"<contentSet><inlineText>{body}</inlineText></contentSet>"
        f"<byline>{byline}</byline></newsItem>"
    )


def main() -> None:
    rng = random.Random(11)
    peers = 4
    articles_per_peer = 9

    # ------------------------------------------------------------------ #
    # Each peer holds its own local feed; no peer sees the others' data.
    # ------------------------------------------------------------------ #
    partitions = []
    labels = {}
    all_trees = []
    index = 0
    for peer in range(peers):
        local_trees = []
        for _ in range(articles_per_peer):
            topic = rng.choice(TOPIC_NAMES)
            provider = rng.choice(PROVIDER_SCHEMAS)
            doc_id = f"feed{peer}-art{index}"
            tree = parse_xml(make_article(rng, provider, topic, index), doc_id=doc_id)
            local_trees.append(tree)
            all_trees.append(tree)
            labels[doc_id] = topic
            index += 1
        partitions.append(local_trees)

    # The transactional model needs corpus-level term statistics; in a real
    # deployment each peer would build its local statistics -- here we build
    # the dataset once and split the transactions along peer boundaries.
    dataset = build_dataset("news", all_trees, doc_labels={"topic": labels})
    by_peer = {f"feed{p}": [] for p in range(peers)}
    for transaction in dataset.transactions:
        feed = transaction.doc_id.split("-")[0]
        by_peer[feed].append(transaction)
    transaction_partitions = [by_peer[f"feed{p}"] for p in range(peers)]

    print("Corpus:", dataset.summary())
    print(f"Peers: {peers}, articles per peer: {articles_per_peer}")

    # ------------------------------------------------------------------ #
    # Collaborative, content-driven clustering (f small): the goal is to
    # group articles by topic regardless of the provider's markup.
    # ------------------------------------------------------------------ #
    config = ClusteringConfig(
        k=len(TOPIC_NAMES),
        similarity=SimilarityConfig(f=0.1, gamma=0.45),
        seed=3,
        max_iterations=10,
    )
    result = CXKMeans(config).fit(transaction_partitions)

    reference = dataset.labels_for("topic")
    f_measure = overall_f_measure(result.partition(), reference)

    print("\nCollaborative clustering result")
    print(f"  F-measure vs. topic ground truth: {f_measure:.3f}")
    print(f"  collaborative rounds: {result.iterations}")
    print(
        f"  representatives exchanged: "
        f"{result.network['transferred_transactions']:.0f} "
        f"(vs. {len(dataset)} articles kept local)"
    )

    for cluster in result.clusters:
        topics = {}
        for member_id in cluster.member_ids():
            topic = reference[member_id]
            topics[topic] = topics.get(topic, 0) + 1
        dominant = max(topics, key=topics.get) if topics else "-"
        print(
            f"  cluster {cluster.cluster_id}: {cluster.size():3d} articles, "
            f"dominant topic: {dominant:9s} {topics}"
        )
    if result.trash_size():
        print(f"  unclustered (trash): {result.trash_size()} articles")


if __name__ == "__main__":
    main()
