"""Setuptools shim.

The execution environment ships an older setuptools without the ``wheel``
package, so PEP 660 editable installs are unavailable; this ``setup.py``
keeps ``pip install -e .`` working through the legacy develop path.
Configuration lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
