"""Simulated P2P network substrate: peers, messages, stats, cost model."""

from repro.network.costmodel import CostModel, saturation_point, speedup_curve
from repro.network.message import Message, MessageKind, representative_payload
from repro.network.mpengine import (
    MultiprocessingExecutor,
    SerialExecutor,
    make_executor,
)
from repro.network.peer import Peer, make_peers
from repro.network.simnet import SimulatedNetwork
from repro.network.stats import NetworkStats, RoundStats

__all__ = [
    "Message",
    "MessageKind",
    "representative_payload",
    "Peer",
    "make_peers",
    "SimulatedNetwork",
    "NetworkStats",
    "RoundStats",
    "CostModel",
    "saturation_point",
    "speedup_curve",
    "SerialExecutor",
    "MultiprocessingExecutor",
    "make_executor",
]
