"""Simulated P2P network substrate: peers, messages, stats, cost model."""

from repro.network.costmodel import CostModel, saturation_point, speedup_curve
from repro.network.message import Message, MessageKind, representative_payload
from repro.network.mpengine import (
    AssignmentShard,
    MultiprocessingExecutor,
    RefinementShard,
    SerialExecutor,
    assign_shard,
    clear_process_engines,
    clear_shard_executors,
    make_executor,
    phase_refinement_config,
    process_engine,
    refine_clusters,
    refine_shard,
    shard_executor,
    split_refinement_budget,
)
from repro.network.peer import Peer, make_peers
from repro.network.simnet import SimulatedNetwork
from repro.network.stats import NetworkStats, RoundStats

__all__ = [
    "Message",
    "MessageKind",
    "representative_payload",
    "Peer",
    "make_peers",
    "SimulatedNetwork",
    "NetworkStats",
    "RoundStats",
    "CostModel",
    "saturation_point",
    "speedup_curve",
    "SerialExecutor",
    "MultiprocessingExecutor",
    "make_executor",
    "AssignmentShard",
    "assign_shard",
    "RefinementShard",
    "refine_shard",
    "refine_clusters",
    "shard_executor",
    "clear_shard_executors",
    "split_refinement_budget",
    "phase_refinement_config",
    "process_engine",
    "clear_process_engines",
]
