"""Messages exchanged between peers of the (simulated) P2P network.

CXK-means peers exchange three kinds of payloads (Fig. 5):

* ``GLOBAL_REPRESENTATIVES`` -- a node broadcasts the global representatives
  it is responsible for to every other node;
* ``LOCAL_REPRESENTATIVES`` -- a node sends the local representative (and the
  local cluster size) of cluster ``j`` to the node responsible for ``j``;
* ``FLAG`` -- the per-iteration ``done`` / ``continue`` state flag;
* ``SETUP`` -- the startup message from ``N0`` carrying the partition of the
  cluster identifiers, ``k`` and ``gamma``.

Message sizes are estimated in *transferred transactions* and *transferred
items*, matching the units of the paper's communication-complexity analysis
(the cost of transferring a transaction is ``O(|tr_max| * |u_max|)``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.transactions.transaction import Transaction


class MessageKind(Enum):
    """The kinds of messages used by the distributed algorithms."""

    SETUP = "setup"
    GLOBAL_REPRESENTATIVES = "global_representatives"
    LOCAL_REPRESENTATIVES = "local_representatives"
    FLAG = "flag"


_message_counter = itertools.count()


@dataclass
class Message:
    """A single point-to-point message.

    Attributes
    ----------
    sender / recipient:
        Peer identifiers (integers); ``-1`` denotes the startup process N0.
    kind:
        The :class:`MessageKind`.
    payload:
        Arbitrary payload; representative messages carry lists of
        ``(cluster_id, Transaction, weight)`` tuples.
    round_index:
        The collaborative iteration during which the message was sent.
    """

    sender: int
    recipient: int
    kind: MessageKind
    payload: Any = None
    round_index: int = 0
    message_id: int = field(default_factory=lambda: next(_message_counter))

    # ------------------------------------------------------------------ #
    # Size accounting
    # ------------------------------------------------------------------ #
    def transactions(self) -> List[Transaction]:
        """Return the transactions carried by the payload (possibly empty)."""
        if self.kind in (
            MessageKind.GLOBAL_REPRESENTATIVES,
            MessageKind.LOCAL_REPRESENTATIVES,
        ):
            return [entry[1] for entry in (self.payload or [])]
        return []

    def transaction_count(self) -> int:
        """Number of transactions (representatives) carried by the message."""
        return len(self.transactions())

    def item_count(self) -> int:
        """Total number of items carried by the message."""
        return sum(len(transaction) for transaction in self.transactions())

    def size_units(self) -> float:
        """Estimated transfer size in 'item units'.

        A transaction of ``n`` items with TCU vectors of total dimensionality
        ``d`` costs roughly ``n + d`` units; flag and setup messages cost one
        unit.  The unit is deliberately abstract -- the cost model converts
        it into simulated seconds.
        """
        transactions = self.transactions()
        if not transactions:
            return 1.0
        units = 0.0
        for transaction in transactions:
            units += len(transaction)
            units += sum(len(item.vector) for item in transaction.items)
        return max(units, 1.0)


def representative_payload(
    entries: Sequence[Tuple[int, Transaction, int]]
) -> List[Tuple[int, Transaction, int]]:
    """Normalise a representative payload to a list of (cluster, rep, weight)."""
    return [(int(cluster), transaction, int(weight)) for cluster, transaction, weight in entries]
