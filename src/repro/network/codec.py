"""Length-prefixed binary wire codec for the real peer transport.

:mod:`repro.network.realnet` runs every CXK-means peer as a genuinely
concurrent process and moves the exact message types of
:mod:`repro.network.message` over localhost TCP.  This module defines the
wire format those processes speak:

Frame layout (all integers big-endian)::

    +-------+---------+-------+----------------+---------+-----------+
    | magic | version | kind  | payload length | payload | CRC32     |
    | 2 B   | 1 B     | 1 B   | 4 B            | N B     | 4 B       |
    +-------+---------+-------+----------------+---------+-----------+

* ``magic`` is the constant ``b"CX"`` -- a stream that does not start with
  it is not speaking this protocol and is rejected immediately;
* ``version`` pins the codec revision (:data:`VERSION`) so incompatible
  processes fail the handshake instead of mis-parsing payloads;
* ``kind`` is a :class:`FrameKind`: the algorithm messages travel as
  :attr:`FrameKind.MESSAGE`, while ``HELLO`` / ``RESULT`` / ``ERROR`` /
  ``SHUTDOWN`` are transport-control frames of the driver topology;
* ``payload length`` bounds the read (:data:`MAX_FRAME_PAYLOAD` guards
  against garbage lengths) and the trailing CRC32 -- computed over the
  header *and* payload bytes, so a flipped kind or length byte that still
  parses cannot masquerade as a different valid frame -- detects
  corruption.

Payload encodings are hand-rolled ``struct`` compositions -- **no pickle
ever crosses the wire** -- and are bit-exact: floats travel as IEEE-754
doubles, so an encode/decode round trip reproduces every
:class:`~repro.transactions.transaction.Transaction`,
:class:`~repro.text.vector.SparseVector` weight and representative payload
exactly (locked in by the hypothesis suite in ``tests/test_wire_codec.py``).
Every decoder raises :class:`CodecError` with an actionable message on
truncated, corrupted or trailing bytes.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Dict, List, Tuple

from repro.network.message import Message, MessageKind
from repro.text.vector import SparseVector
from repro.transactions.items import TreeTupleItem
from repro.transactions.transaction import Transaction
from repro.xmlmodel.paths import XMLPath

#: Protocol magic: every frame starts with these two bytes.
MAGIC = b"CX"
#: Wire-format revision; bump on any incompatible layout change.
VERSION = 1
#: Upper bound on a frame payload (guards against garbage length prefixes).
MAX_FRAME_PAYLOAD = 1 << 28  # 256 MiB

_HEADER = struct.Struct(">2sBBI")
_TRAILER = struct.Struct(">I")

#: Size in bytes of the fixed frame header (magic, version, kind, length).
HEADER_SIZE = _HEADER.size
#: Size in bytes of the frame trailer (CRC32 of header + payload).
TRAILER_SIZE = _TRAILER.size


class CodecError(ValueError):
    """A frame or payload could not be encoded / decoded.

    Raised on truncated streams, bad magic bytes, version mismatches,
    unknown frame or message kinds, CRC failures and trailing garbage --
    always with a message naming what was expected and what was found.
    """


class FrameKind(IntEnum):
    """Discriminator byte of a wire frame."""

    #: Peer handshake: carries the connecting peer's identifier.
    HELLO = 1
    #: An algorithm :class:`~repro.network.message.Message`.
    MESSAGE = 2
    #: A peer's local-phase result for one round (:class:`LocalResult`).
    RESULT = 3
    #: A remote failure: carries the peer id and its traceback text.
    ERROR = 4
    #: Driver-initiated orderly shutdown (empty payload).
    SHUTDOWN = 5


_MESSAGE_KIND_CODES: Dict[MessageKind, int] = {
    MessageKind.SETUP: 1,
    MessageKind.GLOBAL_REPRESENTATIVES: 2,
    MessageKind.LOCAL_REPRESENTATIVES: 3,
    MessageKind.FLAG: 4,
}
_MESSAGE_KINDS_BY_CODE = {code: kind for kind, code in _MESSAGE_KIND_CODES.items()}

# flag/setup payload value type tags (small scalar dictionaries)
_TAG_STR = 1
_TAG_FLOAT = 2
_TAG_INT = 3


# --------------------------------------------------------------------------- #
# Primitive writers / readers
# --------------------------------------------------------------------------- #
class _Writer:
    """Append-only big-endian binary buffer."""

    __slots__ = ("_parts",)

    def __init__(self) -> None:
        self._parts = bytearray()

    def u8(self, value: int) -> None:
        self._parts += struct.pack(">B", value)

    def u32(self, value: int) -> None:
        self._parts += struct.pack(">I", value)

    def i32(self, value: int) -> None:
        self._parts += struct.pack(">i", value)

    def i64(self, value: int) -> None:
        self._parts += struct.pack(">q", value)

    def f64(self, value: float) -> None:
        self._parts += struct.pack(">d", value)

    def string(self, value: str) -> None:
        data = value.encode("utf-8")
        self.u32(len(data))
        self._parts += data

    def getvalue(self) -> bytes:
        return bytes(self._parts)


class _Reader:
    """Sequential big-endian reader that fails cleanly on truncation."""

    __slots__ = ("_data", "_offset", "_context")

    def __init__(self, data: bytes, context: str) -> None:
        self._data = data
        self._offset = 0
        self._context = context

    def _take(self, size: int) -> bytes:
        end = self._offset + size
        if end > len(self._data):
            raise CodecError(
                f"truncated {self._context}: needed {size} more bytes at "
                f"offset {self._offset}, only {len(self._data) - self._offset} left"
            )
        chunk = self._data[self._offset : end]
        self._offset = end
        return chunk

    def u8(self) -> int:
        return struct.unpack(">B", self._take(1))[0]

    def u32(self) -> int:
        return struct.unpack(">I", self._take(4))[0]

    def i32(self) -> int:
        return struct.unpack(">i", self._take(4))[0]

    def i64(self) -> int:
        return struct.unpack(">q", self._take(8))[0]

    def f64(self) -> float:
        return struct.unpack(">d", self._take(8))[0]

    def string(self) -> str:
        size = self.u32()
        try:
            return self._take(size).decode("utf-8")
        except UnicodeDecodeError as error:
            raise CodecError(
                f"corrupted {self._context}: invalid UTF-8 string ({error})"
            ) from error

    def ensure_exhausted(self) -> None:
        if self._offset != len(self._data):
            raise CodecError(
                f"corrupted {self._context}: {len(self._data) - self._offset} "
                "trailing bytes after the payload"
            )


# --------------------------------------------------------------------------- #
# Frames
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class FrameHeader:
    """Parsed fixed-size frame header."""

    kind: FrameKind
    payload_length: int


def parse_frame_header(data: bytes) -> FrameHeader:
    """Parse and validate the fixed :data:`HEADER_SIZE`-byte frame header."""
    if len(data) < HEADER_SIZE:
        raise CodecError(
            f"truncated frame header: got {len(data)} of {HEADER_SIZE} bytes"
        )
    magic, version, kind_code, payload_length = _HEADER.unpack(data[:HEADER_SIZE])
    if magic != MAGIC:
        raise CodecError(
            f"bad frame magic {magic!r} (expected {MAGIC!r}): "
            "the remote end is not speaking the repro wire protocol"
        )
    if version != VERSION:
        raise CodecError(
            f"unsupported wire-format version {version} (this codec speaks "
            f"version {VERSION}); upgrade the older process"
        )
    try:
        kind = FrameKind(kind_code)
    except ValueError as error:
        raise CodecError(f"unknown frame kind byte {kind_code}") from error
    if payload_length > MAX_FRAME_PAYLOAD:
        raise CodecError(
            f"frame payload length {payload_length} exceeds the "
            f"{MAX_FRAME_PAYLOAD}-byte bound (corrupted length prefix?)"
        )
    return FrameHeader(kind=kind, payload_length=payload_length)


def check_frame_payload(header: bytes, payload: bytes, trailer: bytes) -> None:
    """Verify a frame's CRC32 *trailer* (:class:`CodecError` on mismatch).

    The checksum covers the raw *header* bytes as well as the *payload*,
    so corruption of the kind or length fields is caught even when the
    corrupted value still parses as a structurally valid header.
    """
    if len(trailer) < TRAILER_SIZE:
        raise CodecError(
            f"truncated frame trailer: got {len(trailer)} of {TRAILER_SIZE} bytes"
        )
    (expected,) = _TRAILER.unpack(trailer[:TRAILER_SIZE])
    actual = zlib.crc32(header[:HEADER_SIZE] + payload) & 0xFFFFFFFF
    if actual != expected:
        raise CodecError(
            f"frame CRC mismatch: frame checksum {actual:#010x} != "
            f"trailer {expected:#010x} (corrupted frame)"
        )


def encode_frame(kind: FrameKind, payload: bytes) -> bytes:
    """Encode one complete wire frame around *payload*."""
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise CodecError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_PAYLOAD}-byte bound"
        )
    header = _HEADER.pack(MAGIC, VERSION, int(kind), len(payload))
    trailer = _TRAILER.pack(zlib.crc32(header + payload) & 0xFFFFFFFF)
    return header + payload + trailer


def decode_frame(data: bytes) -> Tuple[FrameKind, bytes]:
    """Decode exactly one frame from *data*; returns ``(kind, payload)``.

    The buffer must contain the complete frame and nothing else --
    truncation, corruption and trailing garbage all raise
    :class:`CodecError`.  Stream consumers (the asyncio transport) instead
    read :data:`HEADER_SIZE` bytes, call :func:`parse_frame_header`, then
    read ``payload_length + TRAILER_SIZE`` more and call
    :func:`check_frame_payload` with the raw header bytes.
    """
    header = parse_frame_header(data)
    end = HEADER_SIZE + header.payload_length
    if len(data) < end + TRAILER_SIZE:
        raise CodecError(
            f"truncated frame: header announces a {header.payload_length}-byte "
            f"payload but only {len(data) - HEADER_SIZE} bytes follow"
        )
    payload = data[HEADER_SIZE:end]
    check_frame_payload(data[:HEADER_SIZE], payload, data[end : end + TRAILER_SIZE])
    if len(data) != end + TRAILER_SIZE:
        raise CodecError(
            f"{len(data) - end - TRAILER_SIZE} trailing bytes after the frame"
        )
    return header.kind, payload


# --------------------------------------------------------------------------- #
# Transactions
# --------------------------------------------------------------------------- #
def _write_transaction(writer: _Writer, transaction: Transaction) -> None:
    writer.string(transaction.transaction_id)
    writer.string(transaction.doc_id)
    writer.string(transaction.tuple_id)
    writer.u32(len(transaction.items))
    for item in transaction.items:
        writer.i64(item.item_id)
        writer.u32(len(item.path.steps))
        for step in item.path.steps:
            writer.string(step)
        writer.string(item.answer)
        writer.u32(len(item.terms))
        for term in item.terms:
            writer.string(term)
        weights = item.vector.to_dict()
        writer.u32(len(weights))
        for term_id, weight in weights.items():
            writer.i64(term_id)
            writer.f64(weight)


def _read_transaction(reader: _Reader) -> Transaction:
    transaction_id = reader.string()
    doc_id = reader.string()
    tuple_id = reader.string()
    items: List[TreeTupleItem] = []
    for _ in range(reader.u32()):
        item_id = reader.i64()
        steps = tuple(reader.string() for _ in range(reader.u32()))
        answer = reader.string()
        terms = tuple(reader.string() for _ in range(reader.u32()))
        weights = {reader.i64(): reader.f64() for _ in range(reader.u32())}
        items.append(
            TreeTupleItem(
                item_id=item_id,
                path=XMLPath(steps),
                answer=answer,
                terms=terms,
                vector=SparseVector(weights),
            )
        )
    # items are re-assembled verbatim (no re-sorting): the wire must
    # reproduce the sender's object bit-exactly
    return Transaction(
        transaction_id=transaction_id,
        items=tuple(items),
        doc_id=doc_id,
        tuple_id=tuple_id,
    )


def _write_scalar_dict(writer: _Writer, payload: Dict[str, Any]) -> None:
    writer.u32(len(payload))
    for key, value in payload.items():
        writer.string(str(key))
        if isinstance(value, str):
            writer.u8(_TAG_STR)
            writer.string(value)
        elif isinstance(value, bool) or isinstance(value, int):
            writer.u8(_TAG_INT)
            writer.i64(int(value))
        elif isinstance(value, float):
            writer.u8(_TAG_FLOAT)
            writer.f64(value)
        else:
            raise CodecError(
                f"unsupported flag payload value {value!r} for key {key!r} "
                "(only str / int / float travel on the wire)"
            )


def _read_scalar_dict(reader: _Reader) -> Dict[str, Any]:
    payload: Dict[str, Any] = {}
    for _ in range(reader.u32()):
        key = reader.string()
        tag = reader.u8()
        if tag == _TAG_STR:
            payload[key] = reader.string()
        elif tag == _TAG_INT:
            payload[key] = reader.i64()
        elif tag == _TAG_FLOAT:
            payload[key] = reader.f64()
        else:
            raise CodecError(f"unknown scalar-dict value tag {tag}")
    return payload


# --------------------------------------------------------------------------- #
# Algorithm messages
# --------------------------------------------------------------------------- #
def encode_message(message: Message) -> bytes:
    """Encode an algorithm :class:`Message` as a MESSAGE-frame payload."""
    code = _MESSAGE_KIND_CODES.get(message.kind)
    if code is None:
        raise CodecError(f"unsupported message kind: {message.kind!r}")
    writer = _Writer()
    writer.i32(message.sender)
    writer.i32(message.recipient)
    writer.u32(max(message.round_index, 0))
    writer.u8(code)
    if message.payload is None:
        writer.u8(0)
        return writer.getvalue()
    writer.u8(1)
    if message.kind is MessageKind.SETUP:
        payload = dict(message.payload)
        responsibilities = payload.pop("responsibilities", [])
        writer.u32(int(payload.pop("k", 0)))
        writer.f64(float(payload.pop("gamma", 0.0)))
        writer.u32(len(responsibilities))
        for cluster_ids in responsibilities:
            writer.u32(len(cluster_ids))
            for cluster_id in cluster_ids:
                writer.u32(int(cluster_id))
        _write_scalar_dict(writer, payload)  # forward-compatible extras
    elif message.kind is MessageKind.FLAG:
        _write_scalar_dict(writer, dict(message.payload))
    else:  # GLOBAL_REPRESENTATIVES / LOCAL_REPRESENTATIVES
        entries = list(message.payload)
        writer.u32(len(entries))
        for cluster_id, transaction, weight in entries:
            writer.u32(int(cluster_id))
            writer.i64(int(weight))
            _write_transaction(writer, transaction)
    return writer.getvalue()


def decode_message(payload: bytes) -> Message:
    """Decode a MESSAGE-frame payload back into a :class:`Message`."""
    reader = _Reader(payload, "message payload")
    sender = reader.i32()
    recipient = reader.i32()
    round_index = reader.u32()
    code = reader.u8()
    kind = _MESSAGE_KINDS_BY_CODE.get(code)
    if kind is None:
        raise CodecError(f"unknown message kind code {code}")
    decoded: Any = None
    if reader.u8():
        if kind is MessageKind.SETUP:
            k = reader.u32()
            gamma = reader.f64()
            responsibilities = [
                [reader.u32() for _ in range(reader.u32())]
                for _ in range(reader.u32())
            ]
            decoded = {
                "responsibilities": responsibilities,
                "k": k,
                "gamma": gamma,
            }
            decoded.update(_read_scalar_dict(reader))
        elif kind is MessageKind.FLAG:
            decoded = _read_scalar_dict(reader)
        else:
            decoded = [
                (reader.u32(), reader.i64(), _read_transaction(reader))
                for _ in range(reader.u32())
            ]
            decoded = [
                (cluster_id, transaction, weight)
                for cluster_id, weight, transaction in decoded
            ]
    reader.ensure_exhausted()
    return Message(
        sender=sender,
        recipient=recipient,
        kind=kind,
        payload=decoded,
        round_index=round_index,
    )


# --------------------------------------------------------------------------- #
# Transport-control payloads
# --------------------------------------------------------------------------- #
def encode_hello(peer_id: int) -> bytes:
    """Encode the HELLO handshake payload (the connecting peer's id)."""
    writer = _Writer()
    writer.u32(peer_id)
    return writer.getvalue()


def decode_hello(payload: bytes) -> int:
    """Decode a HELLO payload; returns the peer id."""
    reader = _Reader(payload, "hello payload")
    peer_id = reader.u32()
    reader.ensure_exhausted()
    return peer_id


def encode_error(peer_id: int, text: str) -> bytes:
    """Encode an ERROR payload (peer id + traceback / reason text)."""
    writer = _Writer()
    writer.i32(peer_id)
    writer.string(text)
    return writer.getvalue()


def decode_error(payload: bytes) -> Tuple[int, str]:
    """Decode an ERROR payload; returns ``(peer_id, text)``."""
    reader = _Reader(payload, "error payload")
    peer_id = reader.i32()
    text = reader.string()
    reader.ensure_exhausted()
    return peer_id, text


@dataclass
class LocalResult:
    """A peer's local-phase outcome for one round, as carried by RESULT frames.

    Mirrors :class:`repro.core.cxkmeans.LocalPhaseOutput` field by field
    (plus the round index, so the driver can reject stale results) without
    importing the core layer -- the codec sits below it in the layer graph.
    """

    peer_id: int
    round_index: int
    assignment: Dict[str, int]
    local_representatives: List[Transaction]
    cluster_sizes: List[int]
    compute_seconds: float
    store_fallback: int = 0
    #: forward-compatible scalar extras (unused today)
    extras: Dict[str, Any] = field(default_factory=dict)


def encode_result(result: LocalResult) -> bytes:
    """Encode a :class:`LocalResult` as a RESULT-frame payload."""
    writer = _Writer()
    writer.u32(result.peer_id)
    writer.u32(result.round_index)
    writer.f64(result.compute_seconds)
    writer.u32(result.store_fallback)
    writer.u32(len(result.assignment))
    for transaction_id, cluster_index in result.assignment.items():
        writer.string(transaction_id)
        writer.i32(cluster_index)
    writer.u32(len(result.local_representatives))
    for transaction in result.local_representatives:
        _write_transaction(writer, transaction)
    writer.u32(len(result.cluster_sizes))
    for size in result.cluster_sizes:
        writer.i64(size)
    _write_scalar_dict(writer, result.extras)
    return writer.getvalue()


def decode_result(payload: bytes) -> LocalResult:
    """Decode a RESULT-frame payload back into a :class:`LocalResult`."""
    reader = _Reader(payload, "result payload")
    peer_id = reader.u32()
    round_index = reader.u32()
    compute_seconds = reader.f64()
    store_fallback = reader.u32()
    assignment = {reader.string(): reader.i32() for _ in range(reader.u32())}
    local_representatives = [_read_transaction(reader) for _ in range(reader.u32())]
    cluster_sizes = [reader.i64() for _ in range(reader.u32())]
    extras = _read_scalar_dict(reader)
    reader.ensure_exhausted()
    return LocalResult(
        peer_id=peer_id,
        round_index=round_index,
        assignment=assignment,
        local_representatives=local_representatives,
        cluster_sizes=cluster_sizes,
        compute_seconds=compute_seconds,
        store_fallback=store_fallback,
        extras=extras,
    )
