"""A real localhost TCP transport running CXK-means peers as processes.

Where :mod:`repro.network.simnet` *simulates* the collaborative rounds
sequentially and prices their traffic through the cost model, this module
stands up a genuinely concurrent runtime: every peer is a separate
``multiprocessing`` process speaking the length-prefixed binary wire format
of :mod:`repro.network.codec` over a localhost TCP connection, and the
per-peer local phases of CXK-means really do run in parallel.

Topology -- physical star, logical mesh
---------------------------------------
The driving process (the algorithm's ``N0``) binds a listening socket and
runs an asyncio event loop on a background thread; each worker process
connects to it and identifies itself with a ``HELLO`` frame.  Algorithm
messages keep their peer-to-peer ``sender``/``recipient`` semantics, but
physically every frame is relayed through the driver -- the classic
coordinator star.  The driver also keeps the algorithm state (flags,
convergence, the global merge), which is what guarantees *bit-exact parity*
with the simulated network: the two transports execute the identical
control flow and differ only in where the local phases run.

Accounting
----------
:class:`RealNetwork` exposes the same round/stats surface as
:class:`~repro.network.simnet.SimulatedNetwork` (``begin_round`` /
``end_round`` / ``send`` / ``broadcast`` / ``summary``), so the
:class:`~repro.network.stats.NetworkStats` and the cost-model *predictions*
are computed exactly as in a simulated run.  On top of that it records what
actually happened on the wire: encoded frame bytes per round
(``wire_bytes`` for algorithm messages, ``control_bytes`` for the
HELLO/RESULT/SHUTDOWN frames and the driver-relay self-copies) and measured
wall-clock per round -- surfaced through :meth:`RealNetwork.summary` and,
further up, the ``predicted_vs_measured`` fields of experiment records.

Failure semantics
-----------------
Every blocking interaction has a deadline: peers that never complete the
handshake (refused port, startup crash), die mid-round (EOF) or stall past
the round timeout surface as :class:`RealNetworkError` with an actionable
message -- the driver never hangs.  :meth:`RealNetwork.close` is idempotent
and best-effort: it sends ``SHUTDOWN`` frames, joins the worker processes
and escalates to ``terminate()``/``kill()`` for the unresponsive ones.
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing
import socket
import threading
import time
import traceback
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.codec import (
    CodecError,
    FrameKind,
    HEADER_SIZE,
    LocalResult,
    TRAILER_SIZE,
    check_frame_payload,
    decode_error,
    decode_hello,
    decode_message,
    decode_result,
    encode_error,
    encode_frame,
    encode_hello,
    encode_message,
    encode_result,
    parse_frame_header,
)
from repro.network.costmodel import CostModel
from repro.network.message import Message, MessageKind
from repro.network.peer import Peer
from repro.network.stats import NetworkStats
from repro.transactions.transaction import Transaction

#: Default deadline for the worker handshake (socket connect + HELLO).
DEFAULT_CONNECT_TIMEOUT = 30.0
#: Default deadline for one collaborative round's local-phase results.
DEFAULT_ROUND_TIMEOUT = 120.0


class RealNetworkError(RuntimeError):
    """A failure of the real transport (handshake, round or shutdown)."""


# --------------------------------------------------------------------------- #
# Frame I/O over asyncio streams
# --------------------------------------------------------------------------- #
async def read_frame(reader: asyncio.StreamReader) -> Tuple[FrameKind, bytes]:
    """Read one complete frame from *reader*; returns ``(kind, payload)``.

    Raises :class:`asyncio.IncompleteReadError` when the stream ends
    mid-frame (connection closed) and :class:`~repro.network.codec.CodecError`
    on malformed headers or corrupted payloads.
    """
    header_bytes = await reader.readexactly(HEADER_SIZE)
    header = parse_frame_header(header_bytes)
    body = await reader.readexactly(header.payload_length + TRAILER_SIZE)
    payload = body[: header.payload_length]
    check_frame_payload(header_bytes, payload, body[header.payload_length :])
    return header.kind, payload


async def write_frame(
    writer: asyncio.StreamWriter, kind: FrameKind, payload: bytes
) -> int:
    """Encode and send one frame; returns the frame's size in bytes."""
    frame = encode_frame(kind, payload)
    writer.write(frame)
    await writer.drain()
    return len(frame)


# --------------------------------------------------------------------------- #
# Worker processes
# --------------------------------------------------------------------------- #
@dataclass
class PeerWorkerSpec:
    """Everything a peer worker process needs to join the network.

    Exactly one of ``transactions`` / ``store_rows`` carries the peer's
    partition: when the run is backed by the persistent compiled-corpus
    store (PR 6) the spec ships row numbers and the worker attaches the
    mmap'd store -- zero pickled transactions and zero compile work per
    peer -- otherwise the partition travels pickled with the spec.
    """

    peer_id: int
    host: str
    port: int
    #: Per-phase :class:`~repro.core.config.ClusteringConfig` (duck-typed
    #: here: the network layer sits below the core layer).
    config: object
    store_dir: Optional[str] = None
    transactions: Optional[List[Transaction]] = None
    store_rows: Optional[List[int]] = None
    connect_timeout: float = DEFAULT_CONNECT_TIMEOUT


def default_worker_factory(spec: PeerWorkerSpec) -> multiprocessing.Process:
    """Create the standard worker process for *spec* (not yet started).

    Workers use the ``spawn`` start method (safe to launch while the driver
    thread runs) and are **non-daemonic**, so a sharded inner backend inside
    the local phase may still create its own worker pools.
    """
    context = multiprocessing.get_context("spawn")
    return context.Process(
        target=_peer_worker_main,
        args=(spec,),
        name=f"realnet-peer-{spec.peer_id}",
        daemon=False,
    )


def _resolve_partition(spec: PeerWorkerSpec) -> List[Transaction]:
    """Materialise the worker's partition (store rows or pickled list)."""
    if spec.transactions is not None:
        return spec.transactions
    from repro.similarity.corpus_store import cached_store

    corpus = cached_store(spec.store_dir).transactions()
    return [corpus[row] for row in (spec.store_rows or [])]


async def _peer_worker(spec: PeerWorkerSpec) -> None:
    """Asyncio body of a peer worker process.

    Connects to the driver, handshakes, then serves rounds until a
    ``SHUTDOWN`` frame (or EOF -- a vanished driver) arrives: it
    accumulates the ``GLOBAL_REPRESENTATIVES`` messages of the current
    round and, once all ``k`` clusters are covered, runs the local phase
    and answers with a ``RESULT`` frame.  ``FLAG`` and
    ``LOCAL_REPRESENTATIVES`` frames are received for wire fidelity; the
    driver-resident algorithm state consumes their content.
    """
    # imported lazily: the core layer sits above the network layer, and the
    # import must happen inside the worker process anyway
    from repro.core.cxkmeans import LocalPhaseInput, run_local_phase

    transactions = _resolve_partition(spec)
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(spec.host, spec.port), spec.connect_timeout
    )
    try:
        await write_frame(writer, FrameKind.HELLO, encode_hello(spec.peer_id))
        k: Optional[int] = None
        pending: Dict[int, Dict[int, Transaction]] = {}
        while True:
            try:
                kind, payload = await read_frame(reader)
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return  # driver went away; nothing left to serve
            if kind is FrameKind.SHUTDOWN:
                return
            if kind is not FrameKind.MESSAGE:
                continue
            message = decode_message(payload)
            if message.kind is MessageKind.SETUP:
                k = int(message.payload["k"])
            elif message.kind is MessageKind.GLOBAL_REPRESENTATIVES:
                bucket = pending.setdefault(message.round_index, {})
                for cluster_id, transaction, _weight in message.payload or []:
                    bucket[cluster_id] = transaction
                if k is None or len(bucket) < k:
                    continue
                del pending[message.round_index]
                try:
                    output = run_local_phase(
                        LocalPhaseInput(
                            peer_id=spec.peer_id,
                            transactions=transactions,
                            global_representatives=[bucket[j] for j in range(k)],
                            config=spec.config,
                            store_dir=spec.store_dir,
                        )
                    )
                except Exception:
                    await write_frame(
                        writer,
                        FrameKind.ERROR,
                        encode_error(spec.peer_id, traceback.format_exc()),
                    )
                    raise
                await write_frame(
                    writer,
                    FrameKind.RESULT,
                    encode_result(
                        LocalResult(
                            peer_id=spec.peer_id,
                            round_index=message.round_index,
                            assignment=output.assignment,
                            local_representatives=output.local_representatives,
                            cluster_sizes=output.cluster_sizes,
                            compute_seconds=output.compute_seconds,
                            store_fallback=output.store_fallback,
                        )
                    ),
                )
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


def _peer_worker_main(spec: PeerWorkerSpec) -> None:
    """Process entry point of a peer worker (see :func:`_peer_worker`)."""
    try:
        asyncio.run(_peer_worker(spec))
    except Exception:  # surfaced driver-side as EOF / ERROR frame
        traceback.print_exc()
        raise SystemExit(1)


# --------------------------------------------------------------------------- #
# Driver-side connection state
# --------------------------------------------------------------------------- #
class _PeerLink:
    """Driver-side state of one worker connection."""

    __slots__ = ("peer_id", "writer", "connected", "results", "failure")

    def __init__(self, peer_id: int) -> None:
        self.peer_id = peer_id
        self.writer: Optional[asyncio.StreamWriter] = None
        self.connected = asyncio.Event()
        #: Queue of ("result", LocalResult) / ("error", text) / ("closed", text)
        self.results: asyncio.Queue = asyncio.Queue()
        self.failure: Optional[str] = None


class RealNetwork:
    """Localhost TCP network of genuinely concurrent peer processes.

    Drop-in interchangeable with
    :class:`~repro.network.simnet.SimulatedNetwork`: the round management,
    messaging and :meth:`summary` surface are identical (so the algorithm
    drivers need no transport-specific branches), while
    :meth:`run_local_phases` ships each round's local phases to the worker
    processes instead of running them in-process.

    Parameters
    ----------
    peers:
        The driver-side :class:`~repro.network.peer.Peer` objects (their
        partitions and responsibilities seed the worker specs).
    cost_model:
        Prices the recorded traffic exactly as the simulated network does,
        yielding the *predicted* side of ``predicted_vs_measured``.
    phase_config:
        Per-phase clustering configuration shipped to the workers.
    store_dir:
        Directory of the attached compiled-corpus store; when the peers
        carry a store handle, worker specs ship row numbers instead of
        pickled transactions and the workers mmap-attach the store.
    connect_timeout / round_timeout:
        Deadlines for the worker handshake and for one round's results.
    worker_factory:
        ``spec -> multiprocessing.Process`` hook; tests inject faulty
        transports here (see ``FaultyTransport`` in ``tests/test_realnet.py``).
    """

    def __init__(
        self,
        peers: Sequence[Peer],
        cost_model: Optional[CostModel] = None,
        *,
        phase_config: Optional[object] = None,
        store_dir: Optional[str] = None,
        host: str = "127.0.0.1",
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        round_timeout: float = DEFAULT_ROUND_TIMEOUT,
        worker_factory=None,
    ) -> None:
        self.peers: List[Peer] = list(peers)
        self._by_id: Dict[int, Peer] = {peer.peer_id: peer for peer in self.peers}
        self.cost_model = cost_model or CostModel()
        self.stats = NetworkStats()
        self.simulated_seconds = 0.0
        self._round_index = -1
        self._round_open = False
        self._round_started_at = 0.0

        self.phase_config = phase_config
        self.store_dir = store_dir
        self.host = host
        self.port: Optional[int] = None
        self.connect_timeout = connect_timeout
        self.round_timeout = round_timeout
        self._worker_factory = worker_factory or default_worker_factory

        #: measured traffic: encoded bytes of the accounted algorithm frames
        self.wire_bytes = 0
        #: measured overhead: HELLO/RESULT/SHUTDOWN + driver-relay self-copies
        self.control_bytes = 0
        #: measured wall-clock, summed over closed rounds
        self.measured_wall_seconds = 0.0
        #: per-round (wire bytes, wall seconds) in round order
        self.round_measurements: List[Tuple[int, float]] = []
        self._round_wire_bytes = 0

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._links: Dict[int, _PeerLink] = {}
        self._processes: Dict[int, multiprocessing.Process] = {}
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------ #
    # Topology (identical surface to SimulatedNetwork)
    # ------------------------------------------------------------------ #
    def peer(self, peer_id: int) -> Peer:
        """Return the driver-side peer object with the given identifier."""
        return self._by_id[peer_id]

    def peer_ids(self) -> List[int]:
        """Return the peer identifiers in peer order."""
        return [peer.peer_id for peer in self.peers]

    def size(self) -> int:
        """Return the number of peers (``m``)."""
        return len(self.peers)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Bind the server, launch the worker processes and handshake.

        Raises :class:`RealNetworkError` when any worker fails to complete
        the HELLO handshake within ``connect_timeout`` (the error names the
        missing peers and whether their processes already exited).
        """
        if self._started:
            return
        if self._closed:
            raise RealNetworkError("this RealNetwork was already closed")
        server_socket = socket.create_server(
            (self.host, 0), backlog=max(len(self.peers), 8)
        )
        self.port = server_socket.getsockname()[1]

        loop_ready = threading.Event()
        self._loop = asyncio.new_event_loop()

        def _run_loop() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.call_soon(loop_ready.set)
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=_run_loop, name="realnet-driver", daemon=True
        )
        self._thread.start()
        loop_ready.wait(timeout=10.0)

        self._call(self._bootstrap(server_socket), timeout=10.0)
        for peer in self.peers:
            process = self._worker_factory(self._make_spec(peer))
            self._processes[peer.peer_id] = process
            process.start()
        try:
            self._call(
                self._await_connections(), timeout=self.connect_timeout + 10.0
            )
        except Exception:
            self.close()
            raise
        self._started = True

    def close(self) -> None:
        """Shut the network down (idempotent, best-effort, never hangs).

        Sends ``SHUTDOWN`` to every connected worker, joins the processes
        (escalating to ``terminate()`` then ``kill()``), and stops the
        driver loop thread.
        """
        if self._closed:
            return
        self._closed = True
        if self._loop is not None:
            with contextlib.suppress(Exception):
                self._call(self._shutdown_connections(), timeout=5.0)
        for process in self._processes.values():
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(timeout=1.0)
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=5.0)
            with contextlib.suppress(Exception):
                self._loop.close()

    async def _shutdown_connections(self) -> None:
        """Orderly shutdown: stop accepting, SHUTDOWN every worker, close.

        Runs on the driver loop.  Workers answer a ``SHUTDOWN`` frame by
        exiting their serve loop, which lets ``close()`` join the processes
        promptly instead of escalating to ``terminate()``.
        """
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        frame = encode_frame(FrameKind.SHUTDOWN, b"")
        for link in self._links.values():
            writer = link.writer
            if writer is None:
                continue
            with contextlib.suppress(Exception):
                writer.write(frame)
                await writer.drain()
                self.control_bytes += len(frame)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    def _call(self, coroutine, timeout: float):
        """Run *coroutine* on the driver loop from the caller thread."""
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            future.cancel()
            raise RealNetworkError(
                f"driver loop did not answer within {timeout:.1f}s"
            ) from None

    def _make_spec(self, peer: Peer) -> PeerWorkerSpec:
        """Build the worker spec for *peer* (store rows when possible)."""
        transactions: Optional[List[Transaction]] = list(peer.transactions)
        store_rows: Optional[List[int]] = None
        if self.store_dir is not None and peer.store is not None:
            try:
                index = peer.store.row_index()
                store_rows = [index[t] for t in peer.transactions]
                transactions = None
            except Exception:  # partition not fully store-resident: ship it
                store_rows = None
                transactions = list(peer.transactions)
        return PeerWorkerSpec(
            peer_id=peer.peer_id,
            host=self.host,
            port=self.port,
            config=self.phase_config,
            store_dir=self.store_dir,
            transactions=transactions,
            store_rows=store_rows,
            connect_timeout=self.connect_timeout,
        )

    async def _bootstrap(self, server_socket: socket.socket) -> None:
        """Create the per-peer links and start serving (driver loop)."""
        for peer in self.peers:
            self._links[peer.peer_id] = _PeerLink(peer.peer_id)
        self._server = await asyncio.start_server(
            self._handle_connection, sock=server_socket
        )

    async def _await_connections(self) -> None:
        """Wait until every peer finished the HELLO handshake."""
        waits = [link.connected.wait() for link in self._links.values()]
        try:
            await asyncio.wait_for(asyncio.gather(*waits), self.connect_timeout)
        except asyncio.TimeoutError:
            missing = sorted(
                peer_id
                for peer_id, link in self._links.items()
                if not link.connected.is_set()
            )
            exited = sorted(
                peer_id
                for peer_id in missing
                if (process := self._processes.get(peer_id)) is not None
                and not process.is_alive()
            )
            detail = (
                f" (worker processes {exited} already exited: refused port or "
                "startup crash; check their stderr)"
                if exited
                else " (workers still starting or stalled; raise the network "
                "timeout on slow machines)"
            )
            raise RealNetworkError(
                f"peers {missing} never completed the HELLO handshake within "
                f"{self.connect_timeout:.1f}s{detail}"
            ) from None

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one worker connection: handshake, then collect its frames."""
        link: Optional[_PeerLink] = None
        try:
            kind, payload = await asyncio.wait_for(
                read_frame(reader), self.connect_timeout
            )
            if kind is not FrameKind.HELLO:
                raise CodecError(f"expected a HELLO frame, got {kind.name}")
            self.control_bytes += HEADER_SIZE + len(payload) + TRAILER_SIZE
            peer_id = decode_hello(payload)
            link = self._links.get(peer_id)
            if link is None or link.writer is not None:
                raise CodecError(f"unexpected or duplicate HELLO from peer {peer_id}")
            link.writer = writer
            link.connected.set()
            while True:
                kind, payload = await read_frame(reader)
                # worker -> driver frames are transport overhead of the star
                # topology, not algorithm traffic: account them as control
                self.control_bytes += HEADER_SIZE + len(payload) + TRAILER_SIZE
                if kind is FrameKind.RESULT:
                    await link.results.put(("result", decode_result(payload)))
                elif kind is FrameKind.ERROR:
                    _, text = decode_error(payload)
                    failure = f"peer {peer_id} failed remotely:\n{text}"
                    link.failure = failure
                    await link.results.put(("error", failure))
                # other frame kinds from a worker are ignored
        except (asyncio.IncompleteReadError, ConnectionResetError):
            if link is not None and link.failure is None and not self._closed:
                link.failure = (
                    f"peer {link.peer_id} connection closed unexpectedly "
                    "(worker process died?)"
                )
        except (asyncio.TimeoutError, CodecError) as error:
            if link is not None and link.failure is None:
                link.failure = f"peer {link.peer_id} protocol failure: {error}"
        finally:
            if link is not None:
                await link.results.put(("closed", link.failure))
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # ------------------------------------------------------------------ #
    # Round management (identical semantics to SimulatedNetwork)
    # ------------------------------------------------------------------ #
    def begin_round(self) -> int:
        """Open a new collaborative round; returns its index."""
        self._round_index += 1
        self._round_open = True
        self.stats.start_round(self._round_index)
        self._round_wire_bytes = 0
        self._round_started_at = time.perf_counter()
        return self._round_index

    def end_round(self) -> float:
        """Close the round; returns its *predicted* (cost-model) duration.

        The measured wall-clock and wire bytes of the round are appended to
        :attr:`round_measurements`.
        """
        if not self._round_open:
            raise RuntimeError("end_round() called with no open round")
        round_stats = self.stats.current_round()
        comm_seconds = self.cost_model.communication_seconds(
            round_stats.transferred_transactions, round_stats.transferred_units
        )
        duration = round_stats.max_compute_seconds() + comm_seconds
        self.simulated_seconds += duration
        wall = time.perf_counter() - self._round_started_at
        self.measured_wall_seconds += wall
        self.round_measurements.append((self._round_wire_bytes, wall))
        self._round_open = False
        return duration

    @contextlib.contextmanager
    def round(self):
        """Context manager wrapping :meth:`begin_round` / :meth:`end_round`."""
        index = self.begin_round()
        try:
            yield index
        finally:
            self.end_round()

    @contextlib.contextmanager
    def measure_compute(self, peer_id: int):
        """Measure driver-side computation charged to *peer_id* this round."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.stats.record_compute(peer_id, time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    # Messaging
    # ------------------------------------------------------------------ #
    def send(self, message: Message) -> None:
        """Transmit *message* to its recipient's worker and account it.

        Mirrors the simulated network: self-sends are dropped (a node does
        not use the network to talk to itself), and sending outside an open
        round is a programming error.
        """
        if not self._round_open:
            raise RuntimeError(
                "send() called with no open round: every message must be "
                "accounted to a round (wrap the exchange in network.round())"
            )
        if message.sender == message.recipient:
            return
        message.round_index = max(self._round_index, 0)
        frame = encode_frame(FrameKind.MESSAGE, encode_message(message))
        self._transmit(message.recipient, frame)
        self.stats.record_message(message)
        self.wire_bytes += len(frame)
        self._round_wire_bytes += len(frame)

    def broadcast(self, sender: int, kind: MessageKind, payload) -> int:
        """Send the same payload from *sender* to every other peer.

        Returns the number of accounted messages (``m - 1``), exactly as
        the simulated network.  For ``GLOBAL_REPRESENTATIVES`` broadcasts a
        *self-copy* additionally travels to the sender's own worker: in a
        real deployment the responsible node already holds those
        representatives locally, but with the algorithm state living in the
        driver the bytes must still reach the worker process -- they are
        accounted as ``control_bytes``, not network traffic, keeping the
        :class:`NetworkStats` identical to a simulated run.
        """
        if not self._round_open:
            raise RuntimeError(
                "broadcast() called with no open round: every message must "
                "be accounted to a round (wrap the exchange in network.round())"
            )
        count = 0
        for peer in self.peers:
            message = Message(
                sender=sender, recipient=peer.peer_id, kind=kind, payload=payload
            )
            if peer.peer_id == sender:
                if kind is MessageKind.GLOBAL_REPRESENTATIVES:
                    message.round_index = max(self._round_index, 0)
                    frame = encode_frame(FrameKind.MESSAGE, encode_message(message))
                    self._transmit(peer.peer_id, frame)
                    self.control_bytes += len(frame)
                continue
            self.send(message)
            count += 1
        return count

    def _transmit(self, peer_id: int, frame: bytes) -> None:
        """Write *frame* to the worker connection of *peer_id* (blocking)."""
        link = self._links.get(peer_id)
        if link is None:
            raise RealNetworkError(
                f"peer {peer_id} is not connected (transport not started?)"
            )
        if link.failure is not None:
            raise RealNetworkError(link.failure)
        self._call(self._write_link(link, frame), timeout=self.round_timeout)

    async def _write_link(self, link: _PeerLink, frame: bytes) -> None:
        """Driver-loop half of :meth:`_transmit`."""
        if link.writer is None:
            raise RealNetworkError(f"peer {link.peer_id} has no open connection")
        try:
            link.writer.write(frame)
            await link.writer.drain()
        except (ConnectionResetError, BrokenPipeError) as error:
            link.failure = (
                f"peer {link.peer_id} connection broke while sending: {error}"
            )
            raise RealNetworkError(link.failure) from error

    # ------------------------------------------------------------------ #
    # Local phases
    # ------------------------------------------------------------------ #
    def run_local_phases(self, inputs, runner=None, executor=None):
        """Collect this round's local-phase results from the workers.

        The *runner* / *executor* arguments of the simulated network's
        signature are accepted and ignored -- the phases already run inside
        the worker processes, fed by the ``GLOBAL_REPRESENTATIVES`` frames
        broadcast earlier in the round.  Results are returned in the input
        order as :class:`~repro.core.cxkmeans.LocalPhaseOutput` objects and
        their compute time is recorded into the round statistics (matching
        the simulated path).  Raises :class:`RealNetworkError` on worker
        death, remote failure or a round-timeout expiry.
        """
        if not self._started:
            raise RealNetworkError("run_local_phases() before start()")
        from repro.core.cxkmeans import LocalPhaseOutput

        round_index = max(self._round_index, 0)
        expected = [phase_input.peer_id for phase_input in inputs]
        results = self._call(
            self._collect_results(round_index, expected),
            timeout=self.round_timeout + 10.0,
        )
        outputs = []
        for result in results:
            output = LocalPhaseOutput(
                peer_id=result.peer_id,
                assignment=result.assignment,
                local_representatives=result.local_representatives,
                cluster_sizes=result.cluster_sizes,
                compute_seconds=result.compute_seconds,
                store_fallback=result.store_fallback,
            )
            self.stats.record_compute(output.peer_id, output.compute_seconds)
            outputs.append(output)
        return outputs

    async def _collect_results(
        self, round_index: int, expected: Sequence[int]
    ) -> List[LocalResult]:
        """Await one RESULT per expected peer, under the round deadline."""
        results: List[LocalResult] = []
        deadline = self._loop.time() + self.round_timeout
        for peer_id in expected:
            link = self._links[peer_id]
            while True:
                if link.failure is not None:
                    raise RealNetworkError(link.failure)
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    raise RealNetworkError(
                        f"peer {peer_id} did not deliver its round-{round_index} "
                        f"local-phase result within {self.round_timeout:.1f}s "
                        "(stalled connection or dead worker); raise "
                        "ClusteringConfig.network_timeout if the phase is "
                        "legitimately slow"
                    )
                try:
                    tag, value = await asyncio.wait_for(
                        link.results.get(), remaining
                    )
                except asyncio.TimeoutError:
                    continue  # re-enters the deadline check above
                if tag == "result":
                    if value.round_index != round_index:
                        continue  # stale result from an aborted round
                    results.append(value)
                    break
                raise RealNetworkError(
                    value
                    or f"peer {peer_id} connection closed mid-round {round_index}"
                )
        return results

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, float]:
        """Return the simulated-network aggregates plus the measured lane.

        The cost-model keys (``simulated_seconds``,
        ``communication_seconds`` and the :class:`NetworkStats` aggregates)
        are computed exactly as on the simulated transport -- they are the
        *predictions* -- while ``wire_bytes`` / ``control_bytes`` /
        ``measured_wall_seconds`` report what actually crossed the wire.
        """
        summary = self.stats.as_dict()
        summary["simulated_seconds"] = self.simulated_seconds
        summary["communication_seconds"] = self.cost_model.communication_seconds(
            self.stats.total_transferred_transactions(),
            self.stats.total_transferred_units(),
        )
        summary["peers"] = float(self.size())
        summary["wire_bytes"] = float(self.wire_bytes)
        summary["control_bytes"] = float(self.control_bytes)
        summary["measured_wall_seconds"] = self.measured_wall_seconds
        return summary
