"""A discrete, round-based simulation of the P2P network.

The simulated network executes the peers of a distributed algorithm
sequentially on one host while accounting for what *would* happen on a real
cluster:

* every message is delivered instantly but recorded in the
  :class:`~repro.network.stats.NetworkStats` (count, transactions, items,
  abstract size units);
* the computation time of every peer is measured with a wall-clock timer
  while its work for the round runs;
* at the end of each round the simulated elapsed time advances by
  ``max(peer compute times) + communication_time(round traffic)``, i.e. the
  compute phases of the peers are assumed to run in parallel while the
  traffic is charged according to the :class:`~repro.network.costmodel.CostModel`.

This mirrors the structure of the paper's complexity analysis (Sec. 4.3.4),
where total time is the sum of a parallelisable main-memory term and a
communication term that grows with the number of peers.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence

from repro.network.costmodel import CostModel
from repro.network.message import Message, MessageKind
from repro.network.peer import Peer
from repro.network.stats import NetworkStats


class SimulatedNetwork:
    """Round-based simulator connecting a set of :class:`Peer` objects."""

    def __init__(
        self,
        peers: Sequence[Peer],
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.peers: List[Peer] = list(peers)
        self._by_id: Dict[int, Peer] = {peer.peer_id: peer for peer in self.peers}
        self.cost_model = cost_model or CostModel()
        self.stats = NetworkStats()
        self.simulated_seconds = 0.0
        self._round_index = -1
        self._round_open = False

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    def peer(self, peer_id: int) -> Peer:
        """Return the peer with the given identifier."""
        return self._by_id[peer_id]

    def peer_ids(self) -> List[int]:
        return [peer.peer_id for peer in self.peers]

    def size(self) -> int:
        """Return the number of peers (``m``)."""
        return len(self.peers)

    # ------------------------------------------------------------------ #
    # Round management
    # ------------------------------------------------------------------ #
    def begin_round(self) -> int:
        """Open a new collaborative round; returns its index."""
        self._round_index += 1
        self._round_open = True
        self.stats.start_round(self._round_index)
        return self._round_index

    def end_round(self) -> float:
        """Close the round and advance the simulated clock.

        Returns the simulated duration of the round.
        """
        if not self._round_open:
            raise RuntimeError("end_round() called with no open round")
        round_stats = self.stats.current_round()
        comm_seconds = self.cost_model.communication_seconds(
            round_stats.transferred_transactions, round_stats.transferred_units
        )
        duration = round_stats.max_compute_seconds() + comm_seconds
        self.simulated_seconds += duration
        self._round_open = False
        return duration

    @contextmanager
    def round(self) -> Iterator[int]:
        """Context manager wrapping :meth:`begin_round` / :meth:`end_round`."""
        index = self.begin_round()
        try:
            yield index
        finally:
            self.end_round()

    @contextmanager
    def measure_compute(self, peer_id: int) -> Iterator[None]:
        """Measure the wall-clock time of a peer's computation in this round."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.stats.record_compute(peer_id, time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    # Messaging
    # ------------------------------------------------------------------ #
    def send(self, message: Message) -> None:
        """Deliver *message* to its recipient and record the traffic.

        Messages a peer sends to itself are neither delivered nor accounted
        (a node does not use the network to talk to itself).  Sending with
        no open round is a programming error: the traffic would land in an
        auto-created round-0 record that a later :meth:`begin_round`
        shadows with a duplicate ``RoundStats(0)``, so the phantom round's
        bytes would never be charged by :meth:`end_round` -- the message
        counts fed to the cost model would silently disagree with the
        recorded statistics.
        """
        if message.sender == message.recipient:
            return
        if not self._round_open:
            raise RuntimeError(
                "send() called with no open round: every message must be "
                "accounted to a round (wrap the exchange in network.round())"
            )
        message.round_index = max(self._round_index, 0)
        self.stats.record_message(message)
        self._by_id[message.recipient].deliver(message)

    def broadcast(
        self,
        sender: int,
        kind: MessageKind,
        payload,
    ) -> int:
        """Send the same payload from *sender* to every other peer.

        Returns the number of messages sent (``m - 1``).
        """
        count = 0
        for peer in self.peers:
            if peer.peer_id == sender:
                continue
            self.send(
                Message(sender=sender, recipient=peer.peer_id, kind=kind, payload=payload)
            )
            count += 1
        return count

    # ------------------------------------------------------------------ #
    # Local phases
    # ------------------------------------------------------------------ #
    def run_local_phases(self, inputs, runner, executor=None):
        """Execute this round's per-peer local phases and record their time.

        The transport-neutral entry point shared with
        :class:`~repro.network.realnet.RealNetwork`: the algorithm drivers
        hand over the phase inputs and get one output per peer back, with
        ``compute_seconds`` recorded into the round statistics.  On the
        simulated transport the phases run in this process -- serially on
        the shared per-peer engines when the executor is serial (or
        absent), else dispatched through ``executor.map``.
        """
        from repro.network.mpengine import SerialExecutor

        if executor is None or isinstance(executor, SerialExecutor):
            outputs = [
                runner(phase_input, engine=self.peer(phase_input.peer_id).engine)
                for phase_input in inputs
            ]
        else:
            outputs = executor.map(runner, inputs)
        for output in outputs:
            self.stats.record_compute(output.peer_id, output.compute_seconds)
        return outputs

    def close(self) -> None:
        """Release transport resources (a no-op for the simulation).

        Exists so algorithm drivers can ``finally: network.close()`` without
        branching on the transport type.
        """

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, float]:
        """Return traffic and timing aggregates for the whole run."""
        summary = self.stats.as_dict()
        summary["simulated_seconds"] = self.simulated_seconds
        summary["communication_seconds"] = self.cost_model.communication_seconds(
            self.stats.total_transferred_transactions(),
            self.stats.total_transferred_units(),
        )
        summary["peers"] = float(self.size())
        return summary
