"""Peers of the simulated P2P network.

A :class:`Peer` owns a local portion of the transaction set, an inbox of
messages delivered by the :class:`~repro.network.simnet.SimulatedNetwork`,
and the responsibilities assigned by the startup process (the subset ``Z_i``
of cluster identifiers whose global representatives it must compute).

The peer object is intentionally algorithm-agnostic: both CXK-means and the
PK-means baseline drive peers through the same mailbox interface, which keeps
their communication volumes directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.network.message import Message, MessageKind
from repro.similarity.transaction import SimilarityEngine
from repro.transactions.transaction import Transaction


@dataclass
class Peer:
    """A network peer with a local data share and a message inbox."""

    peer_id: int
    transactions: List[Transaction] = field(default_factory=list)
    #: Cluster identifiers whose *global* representative this peer computes.
    responsibilities: List[int] = field(default_factory=list)
    inbox: List[Message] = field(default_factory=list)
    #: Similarity engine used for the peer's local phases.  When several
    #: simulated nodes run in one process the algorithms attach the *same*
    #: engine to every peer, so all nodes share one tag-path cache and one
    #: compiled backend corpus; ``None`` means "let the execution engine
    #: pick a per-process engine".
    engine: Optional[SimilarityEngine] = field(default=None, repr=False, compare=False)
    #: Handle of the persistent compiled-corpus store shared by the whole
    #: simulated network (:mod:`repro.similarity.corpus_store`); peers whose
    #: local phases run in worker processes attach it there instead of
    #: recompiling their partition.  ``None`` when no store is configured.
    store: Optional[object] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    def local_size(self) -> int:
        """Return ``|S_i|``: the number of locally stored transactions."""
        return len(self.transactions)

    def deliver(self, message: Message) -> None:
        """Place *message* into the inbox (called by the network)."""
        self.inbox.append(message)

    def drain_inbox(self, kind: Optional[MessageKind] = None) -> List[Message]:
        """Remove and return inbox messages, optionally filtered by kind."""
        if kind is None:
            drained = list(self.inbox)
            self.inbox.clear()
            return drained
        kept: List[Message] = []
        drained = []
        for message in self.inbox:
            if message.kind is kind:
                drained.append(message)
            else:
                kept.append(message)
        self.inbox = kept
        return drained

    def peek_inbox(self, kind: Optional[MessageKind] = None) -> List[Message]:
        """Return inbox messages without removing them."""
        if kind is None:
            return list(self.inbox)
        return [message for message in self.inbox if message.kind is kind]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Peer({self.peer_id}, {len(self.transactions)} transactions, "
            f"Z={self.responsibilities})"
        )


def make_peers(
    partitions: Sequence[Sequence[Transaction]],
    responsibilities: Sequence[Sequence[int]],
    engine: Optional[SimilarityEngine] = None,
    store: Optional[object] = None,
) -> List[Peer]:
    """Create one peer per data partition with the given responsibilities.

    When *engine* is provided every peer shares it (single-process
    simulation: one tag-path cache and one compiled similarity corpus for
    the whole network).  When *store* is provided every peer additionally
    carries the same persistent compiled-corpus handle, so local phases
    dispatched into worker processes attach the shared on-disk corpus
    instead of recompiling their partition per process.
    """
    if len(partitions) != len(responsibilities):
        raise ValueError(
            "partitions and responsibilities must have the same length "
            f"({len(partitions)} != {len(responsibilities)})"
        )
    return [
        Peer(
            peer_id=index,
            transactions=list(partition),
            responsibilities=list(assigned),
            engine=engine,
            store=store,
        )
        for index, (partition, assigned) in enumerate(zip(partitions, responsibilities))
    ]
