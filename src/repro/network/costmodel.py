"""Analytic cost model of CXK-means (paper Sec. 4.3.4).

The paper expresses the global runtime of CXK-means over ``m`` nodes as::

    f(m) = |tr_max| * |u_max| * ( |tr_max|^2 * |S|^2 * t_mem / (h * m)
                                  + k * t_comm * (m - 1) )

the sum of a hyperbolic main-memory term and a linear communication term,
where ``t_mem`` is the cost of one main-memory operation, ``t_comm`` the
cost of one peer-to-peer transfer, and ``h in [1, k]`` captures how evenly
the transactions spread across clusters (``h = k`` for perfectly balanced
clusters, ``h = 1`` when one cluster dominates).  The function has a global
minimum at::

    m* = |S| / sqrt(h) * sqrt(|tr_max|^2 * t_mem / (k * t_comm))

which acts as the upper bound on the number of nodes that still yields an
efficiency gain -- the *saturation point* observed in Fig. 7.

The same cost model converts the traffic recorded by the simulated network
into simulated communication seconds, so experiment runtimes can be reported
as modelled parallel times on arbitrary (virtual) cluster sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class CostModel:
    """Unit costs of the analytic model.

    Attributes
    ----------
    t_mem:
        Time (seconds) of a single main-memory operation.
    t_comm:
        Time (seconds) to transfer one transaction between two peers; the
        paper's GigaBit testbed makes this several orders of magnitude
        larger than ``t_mem``.
    unit_comm:
        Time (seconds) to transfer one abstract size unit (one item or one
        vector component), used when converting measured traffic into
        simulated seconds.
    """

    t_mem: float = 1.0e-7
    t_comm: float = 5.0e-3
    unit_comm: float = 5.0e-5

    # ------------------------------------------------------------------ #
    # The analytic f(m) of Sec. 4.3.4
    # ------------------------------------------------------------------ #
    def predicted_time(
        self,
        nodes: int,
        dataset_size: int,
        k: int,
        max_transaction_length: int,
        max_tcu_size: int,
        h: float = None,
    ) -> float:
        """Evaluate ``f(m)`` for the given corpus profile.

        Parameters
        ----------
        nodes:
            Number of peers ``m`` (>= 1).
        dataset_size:
            Number of transactions ``|S|``.
        k:
            Number of clusters.
        max_transaction_length / max_tcu_size:
            ``|tr_max|`` and ``|u_max|`` of the corpus.
        h:
            Cluster balance parameter in ``[1, k]``; defaults to ``k``
            (balanced clusters, the paper's Case 1).
        """
        if nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {nodes}")
        if h is None:
            h = float(k)
        h = max(1.0, min(float(k), float(h)))
        tr = float(max_transaction_length)
        u = max(float(max_tcu_size), 1.0)
        s = float(dataset_size)
        memory_term = (tr ** 2) * (s ** 2) * self.t_mem / (h * nodes)
        comm_term = k * self.t_comm * (nodes - 1)
        return tr * u * (memory_term + comm_term)

    def optimal_nodes(
        self,
        dataset_size: int,
        k: int,
        max_transaction_length: int,
        h: float = None,
    ) -> float:
        """Return the (real-valued) minimiser ``m*`` of ``f(m)``."""
        if h is None:
            h = float(k)
        h = max(1.0, min(float(k), float(h)))
        tr = float(max_transaction_length)
        return (float(dataset_size) / math.sqrt(h)) * math.sqrt(
            (tr ** 2) * self.t_mem / (k * self.t_comm)
        )

    def predicted_curve(
        self,
        node_counts: Sequence[int],
        dataset_size: int,
        k: int,
        max_transaction_length: int,
        max_tcu_size: int,
        h: float = None,
    ) -> Dict[int, float]:
        """Evaluate ``f(m)`` over a sweep of node counts."""
        return {
            m: self.predicted_time(
                m, dataset_size, k, max_transaction_length, max_tcu_size, h=h
            )
            for m in node_counts
        }

    def with_calibrated_t_mem(
        self,
        measured_centralized_seconds: float,
        dataset_size: int,
        k: int,
        max_transaction_length: int,
        max_tcu_size: int,
        h: float = None,
    ) -> "CostModel":
        """Return a copy whose ``t_mem`` makes ``f(1)`` match a measurement.

        The analytic model leaves the per-operation cost ``t_mem`` as a free
        parameter; fitting it on the measured centralized runtime (``m = 1``,
        where the communication term vanishes) lets the model predict the
        *shape* of the runtime curve for larger networks, which is how the
        cost-model benchmark compares analytic and empirical saturation
        points.
        """
        if h is None:
            h = float(k)
        h = max(1.0, min(float(k), float(h)))
        tr = float(max_transaction_length)
        u = max(float(max_tcu_size), 1.0)
        s = float(dataset_size)
        denominator = tr * u * (tr ** 2) * (s ** 2) / h
        if denominator <= 0 or measured_centralized_seconds <= 0:
            return self
        return CostModel(
            t_mem=measured_centralized_seconds / denominator,
            t_comm=self.t_comm,
            unit_comm=self.unit_comm,
        )

    # ------------------------------------------------------------------ #
    # Conversion of measured traffic into simulated time
    # ------------------------------------------------------------------ #
    def communication_seconds(
        self, transferred_transactions: int, transferred_units: float
    ) -> float:
        """Simulated communication time of a round or of a whole run.

        Combines a per-transaction latency term with a volume term; either
        contribution can be disabled by zeroing the respective unit cost.
        """
        return (
            transferred_transactions * self.t_comm
            + transferred_units * self.unit_comm
        )


def saturation_point(curve: Dict[int, float], tolerance: float = 0.05) -> int:
    """Return the empirical saturation point of a runtime-vs-nodes curve.

    The saturation point is the smallest node count whose runtime is within
    ``tolerance`` (relative) of the minimum runtime of the curve -- i.e. the
    point past which adding nodes no longer yields a significant gain.
    """
    if not curve:
        raise ValueError("cannot compute the saturation point of an empty curve")
    minimum = min(curve.values())
    threshold = minimum * (1.0 + tolerance)
    for nodes in sorted(curve.keys()):
        if curve[nodes] <= threshold:
            return nodes
    return max(curve.keys())


def speedup_curve(curve: Dict[int, float]) -> Dict[int, float]:
    """Return the speed-up of every configuration relative to one node."""
    if 1 not in curve:
        raise ValueError("the curve must include the centralized case (1 node)")
    baseline = curve[1]
    if baseline <= 0:
        return {nodes: 0.0 for nodes in curve}
    return {nodes: baseline / value if value > 0 else float("inf") for nodes, value in curve.items()}
