"""Execution engines for per-peer computations.

The collaborative algorithm runs one "local phase" per peer per round.  The
simulated network executes these phases sequentially and models parallelism
through its timing rules; this module additionally provides a real
multiprocessing engine so the same peer logic can actually run in parallel on
the host's cores (the paper's testbed parallelism, approximated with OS
processes as per the reproduction notes in DESIGN.md).

Both engines expose the same ``map`` interface: they apply a picklable
module-level function to a list of argument tuples and return the results in
order.  The multiprocessing engine transparently falls back to serial
execution when the payload cannot be pickled or when only one worker is
available, so callers never need to special-case platform quirks.

The module additionally hosts the *per-process similarity engine* cache used
by the peer local phases: similarity engines (tag-path cache plus a possibly
compiled backend corpus) are expensive to rebuild and impossible to pickle
cheaply, so worker processes materialise one engine per (similarity
configuration, backend) pair and keep it alive across rounds.  On the serial
path the algorithms pass their own shared engine instead, so every simulated
node works against one compiled corpus.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import sys
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.item import SimilarityConfig
from repro.similarity.transaction import SimilarityEngine
from repro.transactions.transaction import Transaction

#: Per-process engines keyed by (similarity config, backend name).  Worker
#: processes of the multiprocessing executor populate this lazily on their
#: first local phase and then reuse the engine -- including its tag-path
#: cache and compiled corpus blocks -- for every subsequent round.
_PROCESS_ENGINES: Dict[Tuple[SimilarityConfig, str], SimilarityEngine] = {}


def process_engine(similarity: SimilarityConfig, backend: str = "python") -> SimilarityEngine:
    """Return this process' shared engine for the given configuration."""
    key = (similarity, backend)
    engine = _PROCESS_ENGINES.get(key)
    if engine is None:
        engine = SimilarityEngine(
            similarity, cache=TagPathSimilarityCache(), backend=backend
        )
        _PROCESS_ENGINES[key] = engine
    return engine


def clear_process_engines() -> None:
    """Drop every cached per-process engine (used by tests)."""
    _PROCESS_ENGINES.clear()


@dataclass
class AssignmentShard:
    """One contiguous row block of a sharded ``assign_all`` call.

    The :class:`~repro.similarity.backend.ShardedBackend` splits the
    transaction rows of an assignment step into one shard per worker; each
    shard carries everything a worker process needs to evaluate its block
    independently: the rows, the full representative set, the similarity
    configuration and the name of the in-process backend to evaluate with.
    """

    transactions: List[Transaction]
    representatives: List[Transaction]
    similarity: SimilarityConfig
    backend: str


def assign_shard(shard: AssignmentShard) -> List[Tuple[int, float]]:
    """Worker entry point of the sharded backend (module-level, picklable).

    Evaluates one row block against the full representative set on this
    process' cached engine (:func:`process_engine`), so a pool worker keeps
    its tag-path cache and compiled corpus across assignment rounds.  The
    per-row results come back in row order; the caller concatenates the
    blocks in shard order, which makes the merged assignment deterministic.
    """
    engine = process_engine(shard.similarity, shard.backend)
    return engine.assign_all(shard.transactions, shard.representatives)


def _spawn_main_is_replayable() -> bool:
    """Return True when ``spawn`` workers can re-import the main module.

    The ``spawn`` start method replays the parent's ``__main__`` from its
    file path inside every worker.  When the parent was fed from stdin or an
    interactive session, that path does not exist on disk; workers then die
    during interpreter bootstrap and the pool respawns them forever -- a
    hang rather than an error.  Detecting the situation up front lets the
    executor fall back to serial execution instead.
    """
    main_module = sys.modules.get("__main__")
    main_path = getattr(main_module, "__file__", None)
    if main_path is None:
        # e.g. ``python -c``: nothing to replay, spawn is safe
        return True
    return os.path.exists(main_path)


class SerialExecutor:
    """Executes peer phases one after another in the calling process."""

    def map(self, function: Callable[[Any], Any], arguments: Sequence[Any]) -> List[Any]:
        """Apply *function* to every element of *arguments*, in order."""
        return [function(argument) for argument in arguments]

    def close(self) -> None:  # pragma: no cover - nothing to release
        """Release resources (no-op for the serial engine)."""

    @property
    def workers(self) -> int:
        return 1


class MultiprocessingExecutor:
    """Executes peer phases in a pool of worker processes.

    Parameters
    ----------
    processes:
        Number of worker processes; defaults to the machine's CPU count.
    chunksize:
        Chunk size passed to ``Pool.map``; the default of 1 keeps per-peer
        work units intact, which matches the granularity of the algorithm.
    """

    def __init__(self, processes: Optional[int] = None, chunksize: int = 1) -> None:
        self._processes = processes or multiprocessing.cpu_count()
        self._chunksize = max(1, chunksize)
        self._pool: Optional[multiprocessing.pool.Pool] = None

    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            self._pool = multiprocessing.get_context("spawn").Pool(self._processes)
        return self._pool

    def map(self, function: Callable[[Any], Any], arguments: Sequence[Any]) -> List[Any]:
        """Apply *function* in parallel, falling back to serial on failure."""
        arguments = list(arguments)
        if (
            self._processes <= 1
            or len(arguments) <= 1
            or not _spawn_main_is_replayable()
        ):
            return [function(argument) for argument in arguments]
        try:
            pickle.dumps(function)
            for argument in arguments:
                pickle.dumps(argument)
        except Exception:
            return [function(argument) for argument in arguments]
        try:
            pool = self._ensure_pool()
            return pool.map(function, arguments, chunksize=self._chunksize)
        except Exception:
            # Any pool-level failure (spawn issues in constrained sandboxes,
            # broken pipes, ...) degrades gracefully to serial execution.
            return [function(argument) for argument in arguments]

    def close(self) -> None:
        """Terminate the worker pool."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    @property
    def workers(self) -> int:
        return self._processes

    def __enter__(self) -> "MultiprocessingExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def make_executor(parallel: bool = False, processes: Optional[int] = None):
    """Return a :class:`SerialExecutor` or :class:`MultiprocessingExecutor`."""
    if parallel:
        return MultiprocessingExecutor(processes=processes)
    return SerialExecutor()
