"""Execution engines for per-peer computations.

The collaborative algorithm runs one "local phase" per peer per round.  The
simulated network executes these phases sequentially and models parallelism
through its timing rules; this module additionally provides a real
multiprocessing engine so the same peer logic can actually run in parallel on
the host's cores (the paper's testbed parallelism, approximated with OS
processes as per the reproduction notes in DESIGN.md).

Both engines expose the same ``map`` interface: they apply a picklable
module-level function to a list of argument tuples and return the results in
order.  The multiprocessing engine transparently falls back to serial
execution when the payload cannot be pickled or when only one worker is
available, so callers never need to special-case platform quirks.

The module additionally hosts the *per-process similarity engine* cache used
by the peer local phases: similarity engines (tag-path cache plus a possibly
compiled backend corpus) are expensive to rebuild and impossible to pickle
cheaply, so worker processes materialise one engine per (similarity
configuration, backend) pair and keep it alive across rounds.  On the serial
path the algorithms pass their own shared engine instead, so every simulated
node works against one compiled corpus.
"""

from __future__ import annotations

import multiprocessing
import pickle
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.item import SimilarityConfig
from repro.similarity.transaction import SimilarityEngine

#: Per-process engines keyed by (similarity config, backend name).  Worker
#: processes of the multiprocessing executor populate this lazily on their
#: first local phase and then reuse the engine -- including its tag-path
#: cache and compiled corpus blocks -- for every subsequent round.
_PROCESS_ENGINES: Dict[Tuple[SimilarityConfig, str], SimilarityEngine] = {}


def process_engine(similarity: SimilarityConfig, backend: str = "python") -> SimilarityEngine:
    """Return this process' shared engine for the given configuration."""
    key = (similarity, backend)
    engine = _PROCESS_ENGINES.get(key)
    if engine is None:
        engine = SimilarityEngine(
            similarity, cache=TagPathSimilarityCache(), backend=backend
        )
        _PROCESS_ENGINES[key] = engine
    return engine


def clear_process_engines() -> None:
    """Drop every cached per-process engine (used by tests)."""
    _PROCESS_ENGINES.clear()


class SerialExecutor:
    """Executes peer phases one after another in the calling process."""

    def map(self, function: Callable[[Any], Any], arguments: Sequence[Any]) -> List[Any]:
        """Apply *function* to every element of *arguments*, in order."""
        return [function(argument) for argument in arguments]

    def close(self) -> None:  # pragma: no cover - nothing to release
        """Release resources (no-op for the serial engine)."""

    @property
    def workers(self) -> int:
        return 1


class MultiprocessingExecutor:
    """Executes peer phases in a pool of worker processes.

    Parameters
    ----------
    processes:
        Number of worker processes; defaults to the machine's CPU count.
    chunksize:
        Chunk size passed to ``Pool.map``; the default of 1 keeps per-peer
        work units intact, which matches the granularity of the algorithm.
    """

    def __init__(self, processes: Optional[int] = None, chunksize: int = 1) -> None:
        self._processes = processes or multiprocessing.cpu_count()
        self._chunksize = max(1, chunksize)
        self._pool: Optional[multiprocessing.pool.Pool] = None

    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            self._pool = multiprocessing.get_context("spawn").Pool(self._processes)
        return self._pool

    def map(self, function: Callable[[Any], Any], arguments: Sequence[Any]) -> List[Any]:
        """Apply *function* in parallel, falling back to serial on failure."""
        arguments = list(arguments)
        if self._processes <= 1 or len(arguments) <= 1:
            return [function(argument) for argument in arguments]
        try:
            pickle.dumps(function)
            for argument in arguments:
                pickle.dumps(argument)
        except Exception:
            return [function(argument) for argument in arguments]
        try:
            pool = self._ensure_pool()
            return pool.map(function, arguments, chunksize=self._chunksize)
        except Exception:
            # Any pool-level failure (spawn issues in constrained sandboxes,
            # broken pipes, ...) degrades gracefully to serial execution.
            return [function(argument) for argument in arguments]

    def close(self) -> None:
        """Terminate the worker pool."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    @property
    def workers(self) -> int:
        return self._processes

    def __enter__(self) -> "MultiprocessingExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def make_executor(parallel: bool = False, processes: Optional[int] = None):
    """Return a :class:`SerialExecutor` or :class:`MultiprocessingExecutor`."""
    if parallel:
        return MultiprocessingExecutor(processes=processes)
    return SerialExecutor()
