"""Execution engines for per-peer computations.

The collaborative algorithm runs one "local phase" per peer per round.  The
simulated network executes these phases sequentially and models parallelism
through its timing rules; this module additionally provides a real
multiprocessing engine so the same peer logic can actually run in parallel on
the host's cores (the paper's testbed parallelism, approximated with OS
processes as per the reproduction notes in DESIGN.md).

Both engines expose the same ``map`` interface: they apply a picklable
module-level function to a list of argument tuples and return the results in
order.  The multiprocessing engine transparently falls back to serial
execution when the payload cannot be pickled or when only one worker is
available, so callers never need to special-case platform quirks.

The module additionally hosts the *per-process similarity engine* cache used
by the peer local phases: similarity engines (tag-path cache plus a possibly
compiled backend corpus) are expensive to rebuild and impossible to pickle
cheaply, so worker processes materialise one engine per (similarity
configuration, backend) pair and keep it alive across rounds.  On the serial
path the algorithms pass their own shared engine instead, so every simulated
node works against one compiled corpus.

Two shard types dispatch work onto those per-process engines:

* :class:`AssignmentShard` / :func:`assign_shard` -- one contiguous row
  block of a sharded ``assign_all`` call (used by the ``sharded``
  similarity backend);
* :class:`RefinementShard` / :func:`refine_shard` -- one cluster's
  representative refinement (``ComputeLocalRepresentative`` or its
  global-phase equivalent), dispatched one cluster per worker by
  :func:`refine_clusters` so ``run_local_phase`` no longer refines its k
  representatives serially on one core.

Both shard dispatchers draw their pools from one process-wide executor
registry (:func:`shard_executor`, cached per worker count), so assignment
and refinement shards dispatched with the same worker count land in the
*same* pool -- a worker that assigned row blocks in one round reuses its
cached engine (and compiled corpus) when it refines clusters in the next.
All shard merges are deterministic (block order for assignment,
cluster-index order for refinement) and every shard runs on a bit-exact
backend, so sharded results are identical to serial ones.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import os
import pickle
import sys
import tempfile
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.item import SimilarityConfig
from repro.similarity.transaction import SimilarityEngine
from repro.transactions.transaction import Transaction

#: Per-process engines keyed by (similarity config, backend name).  Worker
#: processes of the multiprocessing executor populate this lazily on their
#: first local phase and then reuse the engine -- including its tag-path
#: cache and compiled corpus blocks -- for every subsequent round.
_PROCESS_ENGINES: Dict[Tuple[SimilarityConfig, str], SimilarityEngine] = {}


def process_engine(similarity: SimilarityConfig, backend: str = "python") -> SimilarityEngine:
    """Return this process' shared engine for the given configuration."""
    key = (similarity, backend)
    engine = _PROCESS_ENGINES.get(key)
    if engine is None:
        engine = SimilarityEngine(
            similarity, cache=TagPathSimilarityCache(), backend=backend
        )
        _PROCESS_ENGINES[key] = engine
    return engine


def clear_process_engines() -> None:
    """Drop every cached per-process engine (used by tests)."""
    _PROCESS_ENGINES.clear()
    _STORE_ENGINES.clear()


#: Per-process *store-attached* engines, keyed by (similarity config,
#: backend name, store directory).  Kept separate from
#: :data:`_PROCESS_ENGINES` so storeless dispatch keeps its historical
#: cache shape; a worker that serves both store-backed and inline shards
#: holds one engine per cache.
_STORE_ENGINES: Dict[Tuple[SimilarityConfig, str, str], SimilarityEngine] = {}


def store_process_engine(
    similarity: SimilarityConfig, backend: str, store_dir: str
) -> SimilarityEngine:
    """Return this process' shared engine attached to the store at
    *store_dir*.

    Built once per (similarity config, backend, store directory) and kept
    alive across rounds, exactly like :func:`process_engine`; on first
    construction the store is resolved through the process-wide store
    cache and zero-copy attached to the engine's backend, so every worker
    process maps the same on-disk pages instead of recompiling the corpus.
    Backends without compiled corpora (the python reference) simply skip
    the attach -- shard row resolution still works through the store.
    """
    key = (similarity, backend, store_dir)
    engine = _STORE_ENGINES.get(key)
    if engine is None:
        # imported lazily: corpus_store sits above this module (it imports
        # the backend layer), so a top-level import would be circular for
        # readers following the layer graph
        from repro.similarity.corpus_store import cached_store

        engine = SimilarityEngine(
            similarity, cache=TagPathSimilarityCache(), backend=backend
        )
        store = cached_store(store_dir)
        attach = getattr(engine.backend, "attach_store", None)
        if attach is not None:
            attach(store)
        _STORE_ENGINES[key] = engine
    return engine


# --------------------------------------------------------------------------- #
# Round payloads (send shared shard data once per dispatch)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PayloadRef:
    """Content-addressed reference to a published round payload.

    Shards of one dispatch share large read-only data (the representative
    set of an assignment round): instead of pickling it once per shard,
    the dispatcher publishes it once (:func:`publish_round_payload`) and
    every shard carries this tiny reference.  The digest both addresses
    the worker-side cache and integrity-checks the file read.
    """

    path: str
    digest: str


#: Worker-side cache of loaded round payloads, keyed by content digest --
#: every shard of a round resolves to one deserialisation per process.
_ROUND_PAYLOADS: Dict[str, Any] = {}

#: Loaded payloads kept per process before the cache is reset (rounds
#: supersede each other quickly; a tiny cap bounds worker memory).
_ROUND_PAYLOAD_CAP = 16


def publish_round_payload(payload: Any) -> Optional[PayloadRef]:
    """Write *payload* once for all shards of a dispatch; None on failure.

    The pickle is written to a private temp file and addressed by its
    sha256, so workers can verify they read exactly what was published.
    A ``None`` return (unwritable temp dir, unpicklable payload) tells the
    dispatcher to fall back to inlining the payload per shard.
    """
    try:
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(data).hexdigest()
        handle, path = tempfile.mkstemp(prefix="repro-round-", suffix=".pkl")
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
    except (OSError, pickle.PicklingError):
        return None
    return PayloadRef(path=path, digest=digest)


def load_round_payload(ref: PayloadRef) -> Any:
    """Load (or reuse) the published payload *ref* in this process.

    Raises when the file is gone or its content does not match the
    digest -- the strict shard dispatch turns that into the caller's
    in-process fallback rather than computing with corrupt data.
    """
    cached = _ROUND_PAYLOADS.get(ref.digest)
    if cached is not None:
        return cached
    with open(ref.path, "rb") as stream:
        data = stream.read()
    digest = hashlib.sha256(data).hexdigest()
    if digest != ref.digest:
        raise RuntimeError(
            f"round payload {ref.path} digest mismatch "
            f"(expected {ref.digest[:12]}, got {digest[:12]})"
        )
    payload = pickle.loads(data)
    if len(_ROUND_PAYLOADS) >= _ROUND_PAYLOAD_CAP:
        _ROUND_PAYLOADS.clear()
    _ROUND_PAYLOADS[ref.digest] = payload
    return payload


def discard_round_payload(ref: Optional[PayloadRef]) -> None:
    """Remove a published payload file (dispatch has completed)."""
    if ref is None:
        return
    try:
        os.unlink(ref.path)
    except OSError:
        pass


@dataclass
class AssignmentShard:
    """One contiguous row block of a sharded ``assign_all`` call.

    The :class:`~repro.similarity.backend.ShardedBackend` splits the
    transaction rows of an assignment step into one shard per worker; each
    shard carries everything a worker process needs to evaluate its block
    independently: the rows, the full representative set, the similarity
    configuration and the name of the in-process backend to evaluate with.

    Two payload optimisations keep the per-shard pickle small and
    constant-sized:

    * with an attached corpus store the rows travel as ``store_dir`` plus
      ``store_rows`` (row ids into the store's corpus) and
      ``transactions`` is None -- the worker resolves them against its
      process-wide store handle;
    * the representative set of a round travels once per dispatch as a
      published :class:`PayloadRef` (``representatives_ref``) instead of
      once per shard; ``representatives`` is None in that case.

    Shards built without a store (or when publishing fails) inline both
    fields exactly as before -- the graceful pickle fallback.
    """

    transactions: Optional[List[Transaction]]
    representatives: Optional[List[Transaction]]
    similarity: SimilarityConfig
    backend: str
    store_dir: Optional[str] = None
    store_rows: Optional[List[int]] = None
    representatives_ref: Optional[PayloadRef] = None


def _shard_representatives(shard) -> List[Transaction]:
    """Resolve a shard's representative set (inline or round payload)."""
    if shard.representatives_ref is not None:
        return load_round_payload(shard.representatives_ref)
    return shard.representatives


def _store_transactions(store_dir: str, rows: Sequence[int]) -> List[Transaction]:
    """Resolve store row ids to transactions via the process store cache."""
    from repro.similarity.corpus_store import cached_store

    corpus = cached_store(store_dir).transactions()
    return [corpus[row] for row in rows]


def assign_shard(shard: AssignmentShard) -> List[Tuple[int, float]]:
    """Worker entry point of the sharded backend (module-level, picklable).

    Evaluates one row block against the full representative set on this
    process' cached engine (:func:`process_engine`, or
    :func:`store_process_engine` for store-backed shards -- attached to
    the shared on-disk corpus on first touch and reused across rounds).
    The per-row results come back in row order; the caller concatenates
    the blocks in shard order, which makes the merged assignment
    deterministic.  Store or payload resolution failures raise, which the
    strict dispatch turns into the caller's warm in-process fallback.
    """
    if shard.store_dir is not None:
        engine = store_process_engine(
            shard.similarity, shard.backend, shard.store_dir
        )
        transactions = _store_transactions(shard.store_dir, shard.store_rows)
    else:
        engine = process_engine(shard.similarity, shard.backend)
        transactions = shard.transactions
    return engine.assign_all(transactions, _shard_representatives(shard))


# --------------------------------------------------------------------------- #
# Cluster-sharded representative refinement
# --------------------------------------------------------------------------- #
@dataclass
class RefinementShard:
    """One cluster's representative-refinement task.

    Where :class:`AssignmentShard` splits the *rows* of an assignment step,
    a refinement shard carries one whole cluster: the serial tail of
    ``run_local_phase`` (refining k representatives one after another) is
    parallelised one cluster per worker.  A shard is self-contained -- it
    ships the cluster members, the similarity configuration and the name of
    the in-process backend to evaluate with -- so a worker process can
    refine it on its cached engine (:func:`process_engine`) without any
    shared state.

    Attributes
    ----------
    cluster_index:
        Index of the cluster in the caller's representative list; results
        are merged back in ascending cluster-index order, which makes the
        sharded refinement deterministic.
    members:
        Local shard: the cluster's member transactions.  Global shard: the
        local representatives received from the peers.
    similarity:
        The :class:`~repro.similarity.item.SimilarityConfig` of the run.
    backend:
        Name of the in-process backend the worker evaluates with (the
        *inner* backend when the run uses the ``sharded`` assignment
        backend -- workers never nest process pools).
    representative_id:
        Identifier given to the refined representative transaction.
    max_items:
        Optional cap on the representative size
        (:attr:`~repro.core.config.ClusteringConfig.max_representative_items`).
    weights:
        ``None`` for a local shard (``ComputeLocalRepresentative``); for a
        global shard the per-member weights ``|C^i_j|``, parallel to
        *members* (``ComputeGlobalRepresentative``).
    store_dir / member_rows:
        Store-backed alternative to *members* (which is then ``None``):
        the corpus-store directory plus the members' row ids, resolved by
        the evaluating process through its shared store handle -- built by
        :func:`make_refinement_shard` when the dispatching engine has an
        attached store that covers every member.
    """

    cluster_index: int
    members: Optional[List[Transaction]]
    similarity: SimilarityConfig
    backend: str
    representative_id: str
    max_items: Optional[int] = None
    weights: Optional[List[int]] = None
    store_dir: Optional[str] = None
    member_rows: Optional[List[int]] = None

    @property
    def kind(self) -> str:
        """``"local"`` or ``"global"``, decided by the presence of weights."""
        return "local" if self.weights is None else "global"

    def resolve_members(self) -> List[Transaction]:
        """The member transactions (inline, or store rows resolved through
        the process-wide store cache for store-backed shards)."""
        if self.members is not None:
            return self.members
        return _store_transactions(self.store_dir, self.member_rows)


def _refine_with_engine(shard: RefinementShard, engine: SimilarityEngine) -> Transaction:
    """Refine one shard on *engine* (the single implementation both the
    serial path and the worker entry point go through, so they cannot
    drift apart)."""
    # Imported lazily: repro.core.representatives sits above this module in
    # the layer graph (repro.core.__init__ imports cxkmeans, which imports
    # this module), so a top-level import would be circular.
    from repro.core.representatives import (
        compute_global_representative,
        compute_local_representative,
    )

    members = shard.resolve_members()
    if shard.weights is None:
        return compute_local_representative(
            members,
            engine,
            representative_id=shard.representative_id,
            max_items=shard.max_items,
        )
    return compute_global_representative(
        list(zip(members, shard.weights)),
        engine,
        representative_id=shard.representative_id,
        max_items=shard.max_items,
    )


def refine_shard(shard: RefinementShard) -> Tuple[int, Transaction]:
    """Worker entry point of the sharded refinement (module-level, picklable).

    Refines one cluster on this process' cached engine
    (:func:`process_engine`, or :func:`store_process_engine` for
    store-backed shards) -- the same cache :func:`assign_shard` uses,
    and since both dispatchers share the executor registry
    (:func:`shard_executor`), a worker alternating between assignment and
    refinement shards of the same worker count really does keep one
    compiled corpus per (similarity configuration, backend) pair.  Returns
    ``(cluster_index, representative)`` so the caller can merge results in
    cluster-index order regardless of completion order.
    """
    if shard.store_dir is not None:
        engine = store_process_engine(
            shard.similarity, shard.backend, shard.store_dir
        )
    else:
        engine = process_engine(shard.similarity, shard.backend)
    return shard.cluster_index, _refine_with_engine(shard, engine)


def make_refinement_shard(
    engine: SimilarityEngine,
    *,
    cluster_index: int,
    members: Sequence[Transaction],
    representative_id: str,
    max_items: Optional[int] = None,
    weights: Optional[List[int]] = None,
) -> RefinementShard:
    """Build a refinement shard, store-backed whenever possible.

    When *engine*'s backend has an attached corpus store that covers every
    member (local shards only -- weighted global shards refine peer
    representatives, which are synthetic and never live in the store), the
    shard ships ``store_dir`` + row ids instead of pickled members;
    otherwise it inlines the members exactly like the historical path.
    Either way the shard's backend is the engine's in-process name
    (:func:`inprocess_backend_name`), so workers never nest pools.
    """
    members = list(members)
    backend = inprocess_backend_name(engine)
    store = getattr(engine.backend, "attached_store", None)
    if store is not None and members and weights is None:
        rows: Optional[List[int]] = None
        try:
            row_index = store.row_index()
            rows = [row_index[member] for member in members]
        except Exception:
            # a member outside the store (or an unreadable store) simply
            # means this shard inlines its members
            rows = None
        if rows is not None:
            return RefinementShard(
                cluster_index=cluster_index,
                members=None,
                similarity=engine.config,
                backend=backend,
                representative_id=representative_id,
                max_items=max_items,
                store_dir=str(store.directory),
                member_rows=rows,
            )
    return RefinementShard(
        cluster_index=cluster_index,
        members=members,
        similarity=engine.config,
        backend=backend,
        representative_id=representative_id,
        max_items=max_items,
        weights=weights,
    )


#: Process-wide shard executors keyed by worker count, shared by every
#: shard dispatcher (cluster refinement and the sharded assignment
#: backend).  Spawning a pool costs hundreds of milliseconds, so pools are
#: kept alive across collaborative rounds (and across fits in an
#: experiment sweep) exactly like the per-process engines above.
_SHARD_EXECUTORS: Dict[int, "MultiprocessingExecutor"] = {}


def shard_executor(workers: int) -> "MultiprocessingExecutor":
    """Return this process' shared shard executor for *workers*.

    Refinement dispatch and the ``sharded`` assignment backend both draw
    from this registry, so shards of either type dispatched with the same
    worker count run in the same pool (and therefore on the same cached
    per-process engines).
    """
    executor = _SHARD_EXECUTORS.get(workers)
    if executor is None:
        executor = MultiprocessingExecutor(processes=workers)
        _SHARD_EXECUTORS[workers] = executor
    return executor


def clear_shard_executors() -> None:
    """Close and drop every cached shard executor.

    Called by tests and benchmarks between runs, and registered as an
    ``atexit`` hook so long-lived CLI/library processes shut their cached
    pools down cleanly instead of leaving ``Pool.__del__`` to fire during
    interpreter teardown (which prints spurious tracebacks).  Closing is
    safe at any time: a cached executor respawns its pool lazily on the
    next dispatch.
    """
    for executor in _SHARD_EXECUTORS.values():
        executor.close()
    _SHARD_EXECUTORS.clear()


atexit.register(clear_shard_executors)


def inprocess_backend_name(engine: SimilarityEngine) -> str:
    """Name of the backend a refinement worker should evaluate with.

    Usually the engine's own backend name; when the engine runs the
    ``sharded`` assignment backend, the sharded backend's in-process *inner*
    backend is returned instead, so refinement workers never try to nest a
    second level of process pools inside themselves.
    """
    return getattr(engine.backend, "inner_name", engine.backend_name)


def refine_clusters(
    shards: Sequence[RefinementShard],
    engine: SimilarityEngine,
    workers: int = 1,
) -> Dict[int, Transaction]:
    """Refine every shard, one cluster per worker when ``workers > 1``.

    Returns ``{cluster_index: representative}``; the mapping is merged from
    worker results in cluster-index order and is bit-exact with the serial
    path: every shard is evaluated by the same
    ``compute_{local,global}_representative`` code on a bit-exact backend,
    and the refinement of a cluster depends only on the shard's own payload,
    never on engine cache state.

    Fallback behaviour (mirroring the sharded assignment backend):

    * ``workers <= 1``, a single populated shard, or empty clusters are
      refined in-process on the caller's *engine* (reusing its shared
      compiled corpus) -- exactly the historical serial path;
    * shards naming a ``torch`` backend are always refined in-process:
      tensor runtimes must not be re-initialised inside pool workers
      (CUDA contexts cannot survive ``fork``, and every spawned worker
      would pay a fresh runtime/device initialisation), so torch-backed
      refinement falls back to the warm serial path cleanly instead of
      dispatching -- mirroring the sharded assignment backend's refusal
      to host a torch inner backend;
    * every dispatch failure -- an undispatchable environment (e.g. a
      stdin-launched parent whose ``__main__`` spawn workers cannot
      replay), a pool spawn failure (e.g. already inside a daemonic peer
      worker), an unpicklable payload, or a worker crash -- degrades to
      the same warm-engine in-process refinement: the strict
      :meth:`MultiprocessingExecutor.dispatch` raises instead of running
      shards on cold duplicate engines in this process.
    """
    shards = list(shards)
    results: Dict[int, Transaction] = {}
    populated: List[RefinementShard] = []
    for shard in shards:
        if shard.members or shard.member_rows:
            populated.append(shard)
        else:
            # empty clusters yield empty representatives; never worth a
            # round-trip to a worker process
            results[shard.cluster_index] = _refine_with_engine(shard, engine)
    if any(
        shard.backend.partition(":")[0] == "torch" for shard in populated
    ):
        # torch backends refuse nested process sharding: refine on the
        # caller's warm engine instead of re-initialising tensor runtimes
        # inside (daemonic, fork/spawn) pool workers
        workers = 1
    if workers <= 1 or len(populated) <= 1:
        for shard in populated:
            results[shard.cluster_index] = _refine_with_engine(shard, engine)
        return results
    try:
        # dispatch() raises on every failure (undispatchable environment,
        # pool spawn failure, worker crash) instead of map()'s silent
        # in-process fallback, which would rebuild cold duplicate engines
        # in this process; the warm-engine path below is strictly better
        mapped = shard_executor(workers).dispatch(refine_shard, populated)
    except Exception:
        mapped = [
            (shard.cluster_index, _refine_with_engine(shard, engine))
            for shard in populated
        ]
    results.update(mapped)
    return results


def split_refinement_budget(refine_workers: int, concurrent_phases: int) -> int:
    """Split a refinement worker budget across concurrently running phases.

    With two-level parallelism (peers x clusters) the peer executor runs up
    to *concurrent_phases* local phases at once; handing every phase the
    full budget would oversubscribe the machine ``peers x clusters``-fold.
    Each phase therefore receives an equal share, never below one worker
    (one worker means the phase refines serially, which is always safe).
    """
    if concurrent_phases <= 1:
        return refine_workers
    return max(1, refine_workers // concurrent_phases)


def phase_refinement_config(config, executor, phases: int):
    """Per-phase copy of *config* with the refinement budget resolved.

    The single budget policy shared by CXK-means and PK-means:

    * phases that run one after another in this process (the default
      :class:`SerialExecutor` peer path, or a multiprocessing executor
      whose dispatch pre-check fails so it degrades to serial) keep the
      full ``refine_workers`` budget;
    * phases that will really run inside pool workers
      (:meth:`MultiprocessingExecutor.can_dispatch`) get a budget of 1:
      pool workers are daemonic and **cannot create child pools**, so any
      larger budget would only buy a doomed pool-spawn attempt per phase
      per round before serial fallback;
    * an unknown executor type (no ``can_dispatch``; e.g. a thread-based
      executor that could genuinely overlap phases *and* allow child
      pools) gets an equal share of the budget per concurrent phase
      (:func:`split_refinement_budget`).

    *config* is duck-typed (it must expose ``effective_refine_workers``
    and ``with_refine_workers``) because the concrete
    :class:`~repro.core.config.ClusteringConfig` lives above this module
    in the layer graph.
    """
    budget = config.effective_refine_workers
    can_dispatch = getattr(executor, "can_dispatch", None)
    if can_dispatch is not None:
        if can_dispatch():
            return config.with_refine_workers(1)
        return config.with_refine_workers(budget)
    return config.with_refine_workers(
        split_refinement_budget(
            budget, min(getattr(executor, "workers", 1), phases)
        )
    )


def _spawn_main_is_replayable() -> bool:
    """Return True when ``spawn`` workers can re-import the main module.

    The ``spawn`` start method replays the parent's ``__main__`` from its
    file path inside every worker.  When the parent was fed from stdin or an
    interactive session, that path does not exist on disk; workers then die
    during interpreter bootstrap and the pool respawns them forever -- a
    hang rather than an error.  Detecting the situation up front lets the
    executor fall back to serial execution instead.
    """
    main_module = sys.modules.get("__main__")
    main_path = getattr(main_module, "__file__", None)
    if main_path is None:
        # e.g. ``python -c``: nothing to replay, spawn is safe
        return True
    return os.path.exists(main_path)


class SerialExecutor:
    """Executes peer phases one after another in the calling process."""

    def map(self, function: Callable[[Any], Any], arguments: Sequence[Any]) -> List[Any]:
        """Apply *function* to every element of *arguments*, in order."""
        return [function(argument) for argument in arguments]

    def can_dispatch(self) -> bool:
        """Always False: the serial engine never reaches worker processes."""
        return False

    def close(self) -> None:  # pragma: no cover - nothing to release
        """Release resources (no-op for the serial engine)."""

    @property
    def workers(self) -> int:
        """Degree of parallelism (always 1 for the serial engine)."""
        return 1


class MultiprocessingExecutor:
    """Executes peer phases in a pool of worker processes.

    Parameters
    ----------
    processes:
        Number of worker processes; defaults to the machine's CPU count.
    chunksize:
        Chunk size passed to ``Pool.map``; the default of 1 keeps per-peer
        work units intact, which matches the granularity of the algorithm.
    """

    def __init__(self, processes: Optional[int] = None, chunksize: int = 1) -> None:
        self._processes = processes or multiprocessing.cpu_count()
        self._chunksize = max(1, chunksize)
        self._pool: Optional[multiprocessing.pool.Pool] = None

    # ------------------------------------------------------------------ #
    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        if self._pool is None:
            self._pool = multiprocessing.get_context("spawn").Pool(self._processes)
        return self._pool

    def can_dispatch(self) -> bool:
        """True when :meth:`map` can actually reach the worker pool.

        Predicts the silent in-process fallback of :meth:`map` for the
        conditions knowable up front (a single worker, or a ``spawn``
        ``__main__`` that workers cannot replay -- stdin/REPL parents).
        Callers with a better serial path than the executor's -- e.g.
        :func:`refine_clusters`, whose caller holds a warm engine with a
        compiled corpus -- check this first instead of letting work land
        on a cold in-process duplicate engine.
        """
        return self._processes > 1 and _spawn_main_is_replayable()

    def map(self, function: Callable[[Any], Any], arguments: Sequence[Any]) -> List[Any]:
        """Apply *function* in parallel, falling back to serial on failure."""
        arguments = list(arguments)
        if (
            self._processes <= 1
            or len(arguments) <= 1
            or not _spawn_main_is_replayable()
        ):
            return [function(argument) for argument in arguments]
        try:
            pickle.dumps(function)
            for argument in arguments:
                pickle.dumps(argument)
        except Exception:
            return [function(argument) for argument in arguments]
        try:
            return self.dispatch(function, arguments)
        except Exception:
            # Any pool-level failure (spawn issues in constrained sandboxes,
            # broken pipes, ...) degrades gracefully to serial execution.
            return [function(argument) for argument in arguments]

    def dispatch(
        self, function: Callable[[Any], Any], arguments: Sequence[Any]
    ) -> List[Any]:
        """Apply *function* on the worker pool or raise -- never fall back.

        The strict sibling of :meth:`map`: callers that hold a *better*
        serial path than running *function* in this process (e.g.
        :func:`refine_clusters`, whose caller owns a warm engine with a
        compiled corpus, while *function* would build cold
        :func:`process_engine` duplicates in the parent) use this so every
        failure -- undispatchable environment, pool spawn failure,
        worker crash -- surfaces as an exception they can answer with
        their own fallback.
        """
        arguments = list(arguments)
        if not self.can_dispatch():
            raise RuntimeError(
                "executor cannot dispatch to worker processes in this "
                "environment"
            )
        pool = self._ensure_pool()
        try:
            return pool.map(function, arguments, chunksize=self._chunksize)
        except Exception:
            # a pool whose map failed is not trustworthy any more (lost
            # workers, broken pipes): close it before re-raising so the
            # next dispatch on this cached executor respawns a fresh pool
            # instead of reusing the broken one forever
            self.close()
            raise

    def close(self) -> None:
        """Terminate the worker pool."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    @property
    def workers(self) -> int:
        """Number of worker processes the pool runs with."""
        return self._processes

    def __enter__(self) -> "MultiprocessingExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def make_executor(parallel: bool = False, processes: Optional[int] = None):
    """Return a :class:`SerialExecutor` or :class:`MultiprocessingExecutor`."""
    if parallel:
        return MultiprocessingExecutor(processes=processes)
    return SerialExecutor()
