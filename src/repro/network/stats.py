"""Traffic and timing statistics for (simulated) distributed runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.network.message import Message


@dataclass
class RoundStats:
    """Statistics of a single collaborative iteration (round)."""

    round_index: int
    messages: int = 0
    transferred_transactions: int = 0
    transferred_items: int = 0
    transferred_units: float = 0.0
    #: Per-peer computation time (seconds) measured while executing the
    #: peer's work for this round.
    compute_seconds: Dict[int, float] = field(default_factory=dict)

    def max_compute_seconds(self) -> float:
        """Return the longest per-peer computation of the round (the modelled
        parallel duration of the round's compute phase)."""
        return max(self.compute_seconds.values(), default=0.0)

    def total_compute_seconds(self) -> float:
        """Return the summed per-peer computation (the sequential duration)."""
        return sum(self.compute_seconds.values())


@dataclass
class NetworkStats:
    """Aggregate statistics for a whole distributed run."""

    rounds: List[RoundStats] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def start_round(self, round_index: int) -> RoundStats:
        """Open a new round and return its statistics record."""
        stats = RoundStats(round_index=round_index)
        self.rounds.append(stats)
        return stats

    def current_round(self) -> RoundStats:
        """Return the statistics of the round currently in progress."""
        if not self.rounds:
            return self.start_round(0)
        return self.rounds[-1]

    def record_message(self, message: Message) -> None:
        """Account one message in the current round."""
        stats = self.current_round()
        stats.messages += 1
        stats.transferred_transactions += message.transaction_count()
        stats.transferred_items += message.item_count()
        stats.transferred_units += message.size_units()

    def record_compute(self, peer_id: int, seconds: float) -> None:
        """Record (add) computation time of a peer in the current round."""
        stats = self.current_round()
        stats.compute_seconds[peer_id] = stats.compute_seconds.get(peer_id, 0.0) + seconds

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    def total_messages(self) -> int:
        return sum(stats.messages for stats in self.rounds)

    def total_transferred_transactions(self) -> int:
        return sum(stats.transferred_transactions for stats in self.rounds)

    def total_transferred_items(self) -> int:
        return sum(stats.transferred_items for stats in self.rounds)

    def total_transferred_units(self) -> float:
        return sum(stats.transferred_units for stats in self.rounds)

    def total_parallel_compute_seconds(self) -> float:
        """Sum over rounds of the slowest peer's compute time."""
        return sum(stats.max_compute_seconds() for stats in self.rounds)

    def total_sequential_compute_seconds(self) -> float:
        """Sum over rounds of all peers' compute times."""
        return sum(stats.total_compute_seconds() for stats in self.rounds)

    def round_count(self) -> int:
        return len(self.rounds)

    def as_dict(self) -> Dict[str, float]:
        """Return the aggregate statistics as a flat dictionary."""
        return {
            "rounds": float(self.round_count()),
            "messages": float(self.total_messages()),
            "transferred_transactions": float(self.total_transferred_transactions()),
            "transferred_items": float(self.total_transferred_items()),
            "transferred_units": self.total_transferred_units(),
            "parallel_compute_seconds": self.total_parallel_compute_seconds(),
            "sequential_compute_seconds": self.total_sequential_compute_seconds(),
        }
