"""Result objects produced by the clustering algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.transactions.transaction import Transaction


@dataclass
class ClusterInfo:
    """A single cluster: its representative and its member transactions."""

    cluster_id: int
    representative: Optional[Transaction]
    members: List[Transaction] = field(default_factory=list)

    def size(self) -> int:
        return len(self.members)

    def member_ids(self) -> List[str]:
        return [transaction.transaction_id for transaction in self.members]


@dataclass
class ClusteringResult:
    """The outcome of a clustering run.

    Attributes
    ----------
    clusters:
        The ``k`` content clusters, indexed by cluster identifier.
    trash:
        The (k+1)-th *trash* cluster holding transactions with zero
        similarity to every representative.
    iterations:
        Number of outer iterations executed before convergence.
    converged:
        ``True`` when the algorithm stopped because representatives (and
        assignments) stabilised, ``False`` when the iteration cap was hit.
    elapsed_seconds:
        Wall-clock time of the run as measured on the host machine.
    simulated_seconds:
        Modelled parallel runtime (only for distributed algorithms executed
        on the simulated network; ``None`` otherwise).
    network:
        Optional dictionary of network statistics (messages, transferred
        transactions, per-round volumes) for distributed runs.
    metadata:
        Free-form extra information recorded by the algorithm (e.g. number
        of peers, partitioning scheme, algorithm name).
    """

    clusters: List[ClusterInfo]
    trash: ClusterInfo
    iterations: int
    converged: bool
    elapsed_seconds: float = 0.0
    simulated_seconds: Optional[float] = None
    network: Dict[str, float] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def k(self) -> int:
        """Number of (non-trash) clusters."""
        return len(self.clusters)

    def cluster_sizes(self) -> List[int]:
        """Return the sizes of the k clusters (trash excluded)."""
        return [cluster.size() for cluster in self.clusters]

    def total_clustered(self) -> int:
        """Return the number of transactions assigned to non-trash clusters."""
        return sum(self.cluster_sizes())

    def trash_size(self) -> int:
        """Return the number of unclustered (trash) transactions."""
        return self.trash.size()

    def assignments(self, include_trash: bool = False) -> Dict[str, int]:
        """Return the mapping transaction_id -> cluster index.

        The trash cluster uses index ``-1`` and is omitted unless
        ``include_trash`` is set.
        """
        mapping: Dict[str, int] = {}
        for cluster in self.clusters:
            for transaction in cluster.members:
                mapping[transaction.transaction_id] = cluster.cluster_id
        if include_trash:
            for transaction in self.trash.members:
                mapping[transaction.transaction_id] = -1
        return mapping

    def partition(self, include_trash: bool = False) -> List[List[str]]:
        """Return the clustering as a list of lists of transaction ids."""
        parts = [cluster.member_ids() for cluster in self.clusters]
        if include_trash:
            parts.append(self.trash.member_ids())
        return parts

    def representatives(self) -> List[Optional[Transaction]]:
        """Return the final representative of every (non-trash) cluster."""
        return [cluster.representative for cluster in self.clusters]

    def summary(self) -> Dict[str, object]:
        """Return a compact dictionary describing the run."""
        return {
            "k": self.k,
            "iterations": self.iterations,
            "converged": self.converged,
            "clustered": self.total_clustered(),
            "trash": self.trash_size(),
            "elapsed_seconds": self.elapsed_seconds,
            "simulated_seconds": self.simulated_seconds,
            **{f"network_{key}": value for key, value in self.network.items()},
        }


def build_result(
    representatives: Sequence[Optional[Transaction]],
    members: Sequence[Sequence[Transaction]],
    trash_members: Sequence[Transaction],
    iterations: int,
    converged: bool,
    elapsed_seconds: float,
    simulated_seconds: Optional[float] = None,
    network: Optional[Dict[str, float]] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> ClusteringResult:
    """Assemble a :class:`ClusteringResult` from raw algorithm state."""
    clusters = [
        ClusterInfo(cluster_id=index, representative=rep, members=list(cluster_members))
        for index, (rep, cluster_members) in enumerate(zip(representatives, members))
    ]
    trash = ClusterInfo(cluster_id=-1, representative=None, members=list(trash_members))
    return ClusteringResult(
        clusters=clusters,
        trash=trash,
        iterations=iterations,
        converged=converged,
        elapsed_seconds=elapsed_seconds,
        simulated_seconds=simulated_seconds,
        network=dict(network or {}),
        metadata=dict(metadata or {}),
    )
