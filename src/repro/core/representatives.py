"""Cluster representative computation (paper Fig. 6).

This module implements the three functions that make up the summarisation
machinery of CXK-means:

* ``conflateItems`` -- merges a set of items into one synthetic item per
  distinct path, unioning the textual contents;
* ``ComputeLocalRepresentative`` -- ranks the items of a cluster by a blend
  of structural and content ranking and greedily assembles a representative
  transaction (through ``GenerateTreeTuple``);
* ``ComputeGlobalRepresentative`` -- the same procedure applied to the
  *local representatives* received from all peers, each weighted by the size
  of the local cluster it summarises.

Representative transactions are "tree tuples" in the sense that they contain
at most one item per distinct path; they are synthetic objects that never
join the item domain.

Implementation note on ``GenerateTreeTuple``: the paper's pseudocode returns
the representative of the *previous* refinement step when the loop exits
because the item list is exhausted, which would discard an improving final
step.  This implementation keeps the best-scoring representative seen during
the refinement (a strictly-not-worse variant of the same greedy heuristic),
and breaks score ties in favour of the *first* (smallest) candidate that
attained the best score: a refinement step must strictly improve the
cohesion score to replace the incumbent, so equal-scoring growth steps never
bloat the representative.  Both choices are covered by unit tests
documenting them.

Since the representative-scoring backend extension, the expensive parts of
the machinery run through the pluggable similarity backend: the item ranking
is one :meth:`~repro.similarity.transaction.SimilarityEngine.rank_items_batch`
call and the greedy refinement materialises its whole candidate chain up
front (:func:`refinement_candidates`) and scores it in batched
:meth:`~repro.similarity.transaction.SimilarityEngine.score_candidates`
blocks -- the scalar loops survive only as the ``python`` reference backend.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.similarity.transaction import SimilarityEngine
from repro.text.vector import SparseVector, merge_vectors
from repro.transactions.items import TreeTupleItem, make_synthetic_item
from repro.transactions.transaction import Transaction, make_transaction
from repro.xmlmodel.paths import XMLPath


# --------------------------------------------------------------------------- #
# conflateItems
# --------------------------------------------------------------------------- #
def conflate_items(items: Iterable[TreeTupleItem]) -> List[TreeTupleItem]:
    """Merge *items* into one synthetic item per distinct complete path.

    The content associated to each path is the union of the contents of the
    merged items: answers are joined (distinct answers, first-seen order),
    term sequences are concatenated and TCU vectors are summed.  The output
    is sorted by path so representatives are deterministic.
    """
    by_path: Dict[XMLPath, List[TreeTupleItem]] = defaultdict(list)
    for item in items:
        by_path[item.path].append(item)

    conflated: List[TreeTupleItem] = []
    for path in sorted(by_path.keys()):
        group = by_path[path]
        if len(group) == 1:
            original = group[0]
            conflated.append(
                make_synthetic_item(
                    path=path,
                    answer=original.answer,
                    terms=original.terms,
                    vector=original.vector,
                )
            )
            continue
        answers: List[str] = []
        seen = set()
        terms: List[str] = []
        vectors: List[SparseVector] = []
        for item in group:
            if item.answer not in seen:
                seen.add(item.answer)
                answers.append(item.answer)
            terms.extend(item.terms)
            vectors.append(item.vector)
        conflated.append(
            make_synthetic_item(
                path=path,
                answer=" | ".join(answers),
                terms=terms,
                vector=merge_vectors(vectors),
            )
        )
    return conflated


# --------------------------------------------------------------------------- #
# Item ranking
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RankedItem:
    """An item together with its rank and an optional weight (global case)."""

    item: TreeTupleItem
    rank: float
    weight: float = 1.0


def _path_frequencies(items: Sequence[TreeTupleItem]) -> Dict[XMLPath, int]:
    """Return ``P_C``: the number of items carrying each distinct path."""
    frequencies: Dict[XMLPath, int] = defaultdict(int)
    for item in items:
        frequencies[item.path] += 1
    return dict(frequencies)


def structural_rank(
    item: TreeTupleItem,
    items: Sequence[TreeTupleItem],
    path_frequencies: Dict[XMLPath, int],
    engine: SimilarityEngine,
) -> float:
    """``rank_S(e)``: structural ranking of *item* within the item pool.

    Sums, over the distinct paths ``p'`` whose items are structurally
    gamma-similar to *item*, the number of items carrying ``p'``; the sum is
    normalised by the number of distinct paths.  Structural similarity
    between items only depends on their tag paths, so the computation is
    performed per distinct path using the shared tag-path cache (this is the
    optimisation suggested by the paper's complexity analysis).
    """
    if not path_frequencies:
        return 0.0
    gamma = engine.config.gamma
    total = 0.0
    for path, count in path_frequencies.items():
        similarity = engine.cache.similarity(item.tag_path, path.tag_path())
        if similarity >= gamma:
            total += count
    return total / len(path_frequencies)


def content_rank(item: TreeTupleItem, items: Sequence[TreeTupleItem]) -> float:
    """``rank_C(e)``: sum of cosine similarities of *item* to every item."""
    vector = item.vector
    if not vector:
        return 0.0
    return sum(vector.cosine(other.vector) for other in items)


def reference_item_ranks(
    items: Sequence[TreeTupleItem], engine: SimilarityEngine
) -> List[float]:
    """Blended (pre-weight) ranks of *items*: the reference loops.

    One ``f * rank_S + (1 - f) * rank_C`` value per item, in input order.
    This is the executable specification behind
    :meth:`~repro.similarity.backend.SimilarityBackend.rank_items_batch`;
    the ``python`` backend delegates here, and the vectorized backends are
    required to reproduce these floats bit-for-bit.
    """
    item_list = list(items)
    frequencies = _path_frequencies(item_list)
    f = engine.config.f
    return [
        f * structural_rank(item, item_list, frequencies, engine)
        + (1.0 - f) * content_rank(item, item_list)
        for item in item_list
    ]


def rank_items(
    items: Sequence[TreeTupleItem],
    engine: SimilarityEngine,
    weights: Optional[Dict[TreeTupleItem, float]] = None,
) -> List[RankedItem]:
    """Rank *items* by the blended structural/content ranking (Fig. 6).

    The blended ranks of the whole pool are computed by one batched
    :meth:`~repro.similarity.transaction.SimilarityEngine.rank_items_batch`
    call on the engine's similarity backend; weighting, sorting and
    tie-breaking stay here.

    Parameters
    ----------
    items:
        The item pool ``I_C`` (local case) or ``I_T[1]`` (global case).
    engine:
        Similarity engine providing ``f``, ``gamma``, the tag-path cache and
        the ranking backend.
    weights:
        Optional per-item weights ``w``; when provided the final rank is
        multiplied by the weight, as done by ComputeGlobalRepresentative.

    Returns
    -------
    list of :class:`RankedItem`
        Sorted by decreasing rank; ties are broken by path then answer so the
        ordering is deterministic.
    """
    item_list = list(items)
    ranks = engine.rank_items_batch(item_list)
    ranked: List[RankedItem] = []
    for item, rank in zip(item_list, ranks):
        weight = 1.0
        if weights is not None:
            weight = weights.get(item, 1.0)
            rank *= weight
        ranked.append(RankedItem(item=item, rank=rank, weight=weight))
    ranked.sort(key=lambda entry: (-entry.rank, entry.item.path, entry.item.answer))
    return ranked


# --------------------------------------------------------------------------- #
# GenerateTreeTuple
# --------------------------------------------------------------------------- #
#: Initial block size of the progressive candidate scoring; doubled after
#: every scored block, so a refinement that runs to the length bound scores
#: O(log chain) batched blocks while an early score-driven exit wastes at
#: most one block of look-ahead.
_SCORE_BLOCK = 4


def refinement_candidates(
    ranked_items: Sequence[RankedItem], max_member_length: int
) -> List[List[TreeTupleItem]]:
    """The deterministic candidate chain of one GenerateTreeTuple refinement.

    Greedy refinement consumes equal-rank batches in rank order, so the
    candidate of step ``t`` is the conflation of all batches up to ``t`` --
    independent of any similarity score.  The whole chain can therefore be
    materialised up front and scored in batched backend calls; only the
    score-driven early exit has to be replayed on the resulting score
    vector (done by :func:`generate_tree_tuple`).

    The chain ends when a step would grow the candidate beyond
    *max_member_length* (the first batch is trimmed item by item instead, as
    in the reference loop) or when the items are exhausted.
    """
    remaining: List[RankedItem] = list(ranked_items)
    chain: List[List[TreeTupleItem]] = []
    current_items: List[TreeTupleItem] = []
    while remaining:
        top_rank = remaining[0].rank
        batch = [entry.item for entry in remaining if entry.rank == top_rank]
        remaining = [entry for entry in remaining if entry.rank != top_rank]

        candidate_items = conflate_items(current_items + batch)
        if len(candidate_items) > max_member_length:
            if current_items:
                break
            # First batch already exceeds the length bound: add its items one
            # by one (in rank order) until the bound is reached, so the
            # representative never grows beyond the longest member.
            trimmed: List[TreeTupleItem] = []
            for candidate in batch:
                extended = conflate_items(trimmed + [candidate])
                if len(extended) > max_member_length:
                    break
                trimmed = extended
            candidate_items = trimmed
        chain.append(candidate_items)
        current_items = candidate_items
        if len(current_items) >= max_member_length:
            break
    return chain


def generate_tree_tuple(
    ranked_items: Sequence[RankedItem],
    cluster: Sequence[Transaction],
    engine: SimilarityEngine,
    representative_id: str = "rep",
    max_items: Optional[int] = None,
) -> Transaction:
    """Greedy assembly of a representative transaction (Fig. 6, GenerateTreeTuple).

    Items are consumed in batches of equal (highest) rank; each refinement
    step's candidate is the conflation of everything consumed so far, scored
    by the sum of its ``sim^gamma_J`` similarities to the cluster members.
    Refinement stops when the score drops below the best seen, the
    representative grows beyond the longest member transaction, or the items
    are exhausted.

    Because the candidate chain is score-independent
    (:func:`refinement_candidates`), all candidate tree tuples of the
    refinement are scored through the batched
    :meth:`~repro.similarity.transaction.SimilarityEngine.score_candidates`
    entry point in progressively doubling blocks, and the reference loop's
    exit conditions are replayed on the precomputed scores.

    The returned representative is the *first* candidate that attained the
    best score: a step must strictly improve the score to replace the
    incumbent, so an equal-scoring growth step never enlarges the
    representative (first-best-wins; pinned by a regression test).
    """
    if not cluster:
        return make_transaction(representative_id, [], sort_items=True)

    max_member_length = max(len(transaction) for transaction in cluster)
    if max_items is not None:
        max_member_length = min(max_member_length, max_items)

    chain = refinement_candidates(ranked_items, max_member_length)
    candidates = [
        make_transaction(representative_id, items, sort_items=True) for items in chain
    ]

    best_items: List[TreeTupleItem] = []
    best_score = 0.0
    index = 0
    block = _SCORE_BLOCK
    while index < len(candidates):
        scores = engine.score_candidates(cluster, candidates[index : index + block])
        stopped = False
        for offset, candidate_score in enumerate(scores):
            if candidate_score < best_score:
                stopped = True
                break
            if candidate_score > best_score:
                best_score = candidate_score
                best_items = chain[index + offset]
        if stopped:
            break
        index += len(scores)
        block *= 2

    return make_transaction(representative_id, best_items, sort_items=True)


# --------------------------------------------------------------------------- #
# ComputeLocalRepresentative / ComputeGlobalRepresentative
# --------------------------------------------------------------------------- #
def compute_local_representative(
    cluster: Sequence[Transaction],
    engine: SimilarityEngine,
    representative_id: str = "rep:local",
    max_items: Optional[int] = None,
) -> Transaction:
    """``ComputeLocalRepresentative(C)``: summarise a local cluster.

    Collects the items of every member transaction, ranks them by the blended
    structural/content ranking and assembles the representative through
    :func:`generate_tree_tuple`; both the ranking and the refinement scoring
    run through the engine's batched backend entry points.  An empty cluster
    yields an empty representative transaction.
    """
    items: List[TreeTupleItem] = []
    for transaction in cluster:
        items.extend(transaction.items)
    if not items:
        return make_transaction(representative_id, [], sort_items=True)
    ranked = rank_items(items, engine)
    return generate_tree_tuple(
        ranked, cluster, engine, representative_id=representative_id, max_items=max_items
    )


def compute_global_representative(
    weighted_locals: Sequence[Tuple[Transaction, int]],
    engine: SimilarityEngine,
    representative_id: str = "rep:global",
    max_items: Optional[int] = None,
) -> Transaction:
    """``ComputeGlobalRepresentative(T)``: merge local representatives.

    Parameters
    ----------
    weighted_locals:
        Pairs ``(local representative, |C^i_j|)`` received from every peer;
        representatives of empty local clusters (weight 0 or no items) are
        ignored.
    engine:
        Similarity engine (provides ``f``, ``gamma`` and the tag-path cache).
    representative_id:
        Identifier given to the resulting representative transaction.

    The item pool is the union of the items of the local representatives;
    each item is weighted by the total size of the local clusters whose
    representative contains it, and the weight multiplies the blended rank --
    peers that summarise more transactions therefore contribute more to the
    global representative.
    """
    filtered = [
        (transaction, weight)
        for transaction, weight in weighted_locals
        if weight > 0 and len(transaction) > 0
    ]
    if not filtered:
        return make_transaction(representative_id, [], sort_items=True)

    item_weights: Dict[TreeTupleItem, float] = defaultdict(float)
    items: List[TreeTupleItem] = []
    for transaction, weight in filtered:
        for item in transaction.items:
            if item not in item_weights:
                items.append(item)
            item_weights[item] += float(weight)

    ranked = rank_items(items, engine, weights=dict(item_weights))
    local_transactions = [transaction for transaction, _ in filtered]
    return generate_tree_tuple(
        ranked,
        local_transactions,
        engine,
        representative_id=representative_id,
        max_items=max_items,
    )


def representatives_equal(first: Optional[Transaction], second: Optional[Transaction]) -> bool:
    """Return True when two representatives carry the same item content.

    Representatives are synthetic transactions, so equality is defined on the
    multiset of (path, answer) pairs rather than on object identity.
    """
    if first is None or second is None:
        return first is second
    key_first = sorted((str(item.path), item.answer) for item in first.items)
    key_second = sorted((str(item.path), item.answer) for item in second.items)
    return key_first == key_second
