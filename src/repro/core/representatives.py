"""Cluster representative computation (paper Fig. 6).

This module implements the three functions that make up the summarisation
machinery of CXK-means:

* ``conflateItems`` -- merges a set of items into one synthetic item per
  distinct path, unioning the textual contents;
* ``ComputeLocalRepresentative`` -- ranks the items of a cluster by a blend
  of structural and content ranking and greedily assembles a representative
  transaction (through ``GenerateTreeTuple``);
* ``ComputeGlobalRepresentative`` -- the same procedure applied to the
  *local representatives* received from all peers, each weighted by the size
  of the local cluster it summarises.

Representative transactions are "tree tuples" in the sense that they contain
at most one item per distinct path; they are synthetic objects that never
join the item domain.

Implementation note on ``GenerateTreeTuple``: the paper's pseudocode returns
the representative of the *previous* refinement step when the loop exits
because the item list is exhausted, which would discard an improving final
step.  This implementation keeps the best-scoring representative seen during
the refinement (a strictly-not-worse variant of the same greedy heuristic);
the behaviour difference is covered by a unit test documenting the choice.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.similarity.transaction import SimilarityEngine
from repro.text.vector import SparseVector, merge_vectors
from repro.transactions.items import TreeTupleItem, make_synthetic_item
from repro.transactions.transaction import Transaction, make_transaction
from repro.xmlmodel.paths import XMLPath


# --------------------------------------------------------------------------- #
# conflateItems
# --------------------------------------------------------------------------- #
def conflate_items(items: Iterable[TreeTupleItem]) -> List[TreeTupleItem]:
    """Merge *items* into one synthetic item per distinct complete path.

    The content associated to each path is the union of the contents of the
    merged items: answers are joined (distinct answers, first-seen order),
    term sequences are concatenated and TCU vectors are summed.  The output
    is sorted by path so representatives are deterministic.
    """
    by_path: Dict[XMLPath, List[TreeTupleItem]] = defaultdict(list)
    for item in items:
        by_path[item.path].append(item)

    conflated: List[TreeTupleItem] = []
    for path in sorted(by_path.keys()):
        group = by_path[path]
        if len(group) == 1:
            original = group[0]
            conflated.append(
                make_synthetic_item(
                    path=path,
                    answer=original.answer,
                    terms=original.terms,
                    vector=original.vector,
                )
            )
            continue
        answers: List[str] = []
        seen = set()
        terms: List[str] = []
        vectors: List[SparseVector] = []
        for item in group:
            if item.answer not in seen:
                seen.add(item.answer)
                answers.append(item.answer)
            terms.extend(item.terms)
            vectors.append(item.vector)
        conflated.append(
            make_synthetic_item(
                path=path,
                answer=" | ".join(answers),
                terms=terms,
                vector=merge_vectors(vectors),
            )
        )
    return conflated


# --------------------------------------------------------------------------- #
# Item ranking
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RankedItem:
    """An item together with its rank and an optional weight (global case)."""

    item: TreeTupleItem
    rank: float
    weight: float = 1.0


def _path_frequencies(items: Sequence[TreeTupleItem]) -> Dict[XMLPath, int]:
    """Return ``P_C``: the number of items carrying each distinct path."""
    frequencies: Dict[XMLPath, int] = defaultdict(int)
    for item in items:
        frequencies[item.path] += 1
    return dict(frequencies)


def structural_rank(
    item: TreeTupleItem,
    items: Sequence[TreeTupleItem],
    path_frequencies: Dict[XMLPath, int],
    engine: SimilarityEngine,
) -> float:
    """``rank_S(e)``: structural ranking of *item* within the item pool.

    Sums, over the distinct paths ``p'`` whose items are structurally
    gamma-similar to *item*, the number of items carrying ``p'``; the sum is
    normalised by the number of distinct paths.  Structural similarity
    between items only depends on their tag paths, so the computation is
    performed per distinct path using the shared tag-path cache (this is the
    optimisation suggested by the paper's complexity analysis).
    """
    if not path_frequencies:
        return 0.0
    gamma = engine.config.gamma
    total = 0.0
    for path, count in path_frequencies.items():
        similarity = engine.cache.similarity(item.tag_path, path.tag_path())
        if similarity >= gamma:
            total += count
    return total / len(path_frequencies)


def content_rank(item: TreeTupleItem, items: Sequence[TreeTupleItem]) -> float:
    """``rank_C(e)``: sum of cosine similarities of *item* to every item."""
    vector = item.vector
    if not vector:
        return 0.0
    return sum(vector.cosine(other.vector) for other in items)


def rank_items(
    items: Sequence[TreeTupleItem],
    engine: SimilarityEngine,
    weights: Optional[Dict[TreeTupleItem, float]] = None,
) -> List[RankedItem]:
    """Rank *items* by the blended structural/content ranking (Fig. 6).

    Parameters
    ----------
    items:
        The item pool ``I_C`` (local case) or ``I_T[1]`` (global case).
    engine:
        Similarity engine providing ``f``, ``gamma`` and the tag-path cache.
    weights:
        Optional per-item weights ``w``; when provided the final rank is
        multiplied by the weight, as done by ComputeGlobalRepresentative.

    Returns
    -------
    list of :class:`RankedItem`
        Sorted by decreasing rank; ties are broken by path then answer so the
        ordering is deterministic.
    """
    item_list = list(items)
    frequencies = _path_frequencies(item_list)
    f = engine.config.f
    ranked: List[RankedItem] = []
    for item in item_list:
        rank_s = structural_rank(item, item_list, frequencies, engine)
        rank_c = content_rank(item, item_list)
        rank = f * rank_s + (1.0 - f) * rank_c
        weight = 1.0
        if weights is not None:
            weight = weights.get(item, 1.0)
            rank *= weight
        ranked.append(RankedItem(item=item, rank=rank, weight=weight))
    ranked.sort(key=lambda entry: (-entry.rank, entry.item.path, entry.item.answer))
    return ranked


# --------------------------------------------------------------------------- #
# GenerateTreeTuple
# --------------------------------------------------------------------------- #
def generate_tree_tuple(
    ranked_items: Sequence[RankedItem],
    cluster: Sequence[Transaction],
    engine: SimilarityEngine,
    representative_id: str = "rep",
    max_items: Optional[int] = None,
) -> Transaction:
    """Greedy assembly of a representative transaction (Fig. 6, GenerateTreeTuple).

    Items are consumed in batches of equal (highest) rank; after conflation
    the candidate representative is scored by the sum of its
    ``sim^gamma_J`` similarities to the cluster members, and refinement
    stops when the score stops improving, the representative grows beyond
    the longest member transaction, or the items are exhausted.
    """
    if not cluster:
        return make_transaction(representative_id, [], sort_items=True)

    max_member_length = max(len(transaction) for transaction in cluster)
    if max_items is not None:
        max_member_length = min(max_member_length, max_items)

    remaining: List[RankedItem] = list(ranked_items)
    best_items: List[TreeTupleItem] = []
    best_score = 0.0
    current_items: List[TreeTupleItem] = []

    def score_of(items: Sequence[TreeTupleItem]) -> float:
        candidate = make_transaction(representative_id, items, sort_items=True)
        # one batched member-vs-candidate column instead of a scalar loop
        column = engine.pairwise_transaction_similarity(cluster, [candidate])
        return sum(row[0] for row in column)

    while remaining:
        top_rank = remaining[0].rank
        batch = [entry.item for entry in remaining if entry.rank == top_rank]
        remaining = [entry for entry in remaining if entry.rank != top_rank]

        candidate_items = conflate_items(current_items + batch)
        if len(candidate_items) > max_member_length:
            if current_items:
                break
            # First batch already exceeds the length bound: add its items one
            # by one (in rank order) until the bound is reached, so the
            # representative never grows beyond the longest member.
            trimmed: List[TreeTupleItem] = []
            for candidate in batch:
                extended = conflate_items(trimmed + [candidate])
                if len(extended) > max_member_length:
                    break
                trimmed = extended
            candidate_items = trimmed
        candidate_score = score_of(candidate_items)
        if candidate_score < best_score:
            break
        current_items = candidate_items
        if candidate_score >= best_score:
            best_score = candidate_score
            best_items = candidate_items
        if len(current_items) >= max_member_length:
            break

    return make_transaction(representative_id, best_items, sort_items=True)


# --------------------------------------------------------------------------- #
# ComputeLocalRepresentative / ComputeGlobalRepresentative
# --------------------------------------------------------------------------- #
def compute_local_representative(
    cluster: Sequence[Transaction],
    engine: SimilarityEngine,
    representative_id: str = "rep:local",
    max_items: Optional[int] = None,
) -> Transaction:
    """``ComputeLocalRepresentative(C)``: summarise a local cluster.

    Collects the items of every member transaction, ranks them by the blended
    structural/content ranking and assembles the representative through
    :func:`generate_tree_tuple`.  An empty cluster yields an empty
    representative transaction.
    """
    items: List[TreeTupleItem] = []
    for transaction in cluster:
        items.extend(transaction.items)
    if not items:
        return make_transaction(representative_id, [], sort_items=True)
    ranked = rank_items(items, engine)
    return generate_tree_tuple(
        ranked, cluster, engine, representative_id=representative_id, max_items=max_items
    )


def compute_global_representative(
    weighted_locals: Sequence[Tuple[Transaction, int]],
    engine: SimilarityEngine,
    representative_id: str = "rep:global",
    max_items: Optional[int] = None,
) -> Transaction:
    """``ComputeGlobalRepresentative(T)``: merge local representatives.

    Parameters
    ----------
    weighted_locals:
        Pairs ``(local representative, |C^i_j|)`` received from every peer;
        representatives of empty local clusters (weight 0 or no items) are
        ignored.
    engine:
        Similarity engine (provides ``f``, ``gamma`` and the tag-path cache).
    representative_id:
        Identifier given to the resulting representative transaction.

    The item pool is the union of the items of the local representatives;
    each item is weighted by the total size of the local clusters whose
    representative contains it, and the weight multiplies the blended rank --
    peers that summarise more transactions therefore contribute more to the
    global representative.
    """
    filtered = [
        (transaction, weight)
        for transaction, weight in weighted_locals
        if weight > 0 and len(transaction) > 0
    ]
    if not filtered:
        return make_transaction(representative_id, [], sort_items=True)

    item_weights: Dict[TreeTupleItem, float] = defaultdict(float)
    items: List[TreeTupleItem] = []
    for transaction, weight in filtered:
        for item in transaction.items:
            if item not in item_weights:
                items.append(item)
            item_weights[item] += float(weight)

    ranked = rank_items(items, engine, weights=dict(item_weights))
    local_transactions = [transaction for transaction, _ in filtered]
    return generate_tree_tuple(
        ranked,
        local_transactions,
        engine,
        representative_id=representative_id,
        max_items=max_items,
    )


def representatives_equal(first: Optional[Transaction], second: Optional[Transaction]) -> bool:
    """Return True when two representatives carry the same item content.

    Representatives are synthetic transactions, so equality is defined on the
    multiset of (path, answer) pairs rather than on object identity.
    """
    if first is None or second is None:
        return first is second
    key_first = sorted((str(item.path), item.answer) for item in first.items)
    key_second = sorted((str(item.path), item.answer) for item in second.items)
    return key_first == key_second
