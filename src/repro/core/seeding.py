"""Selection of the initial cluster representatives.

CXK-means (Fig. 5) seeds every node's share of the global representatives by
"selecting q_i transactions from S_i coming from distinct original trees";
the centralized XK-means does the same for all k clusters.  Selecting seeds
from distinct documents maximises the initial diversity of the clusters.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.transactions.transaction import Transaction


def select_seed_transactions(
    transactions: Sequence[Transaction],
    count: int,
    rng: random.Random,
) -> List[Transaction]:
    """Select *count* seed transactions, preferring distinct source documents.

    The selection first draws (at most) one transaction per distinct
    ``doc_id`` in random order; if the number of distinct documents is
    smaller than *count*, the remaining seeds are drawn uniformly from the
    unused transactions.  Raises ``ValueError`` when fewer transactions than
    *count* are available.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if count == 0:
        return []
    if len(transactions) < count:
        raise ValueError(
            f"cannot select {count} seeds from {len(transactions)} transactions"
        )

    by_doc: Dict[str, List[Transaction]] = {}
    for transaction in transactions:
        by_doc.setdefault(transaction.doc_id, []).append(transaction)

    doc_ids = list(by_doc.keys())
    rng.shuffle(doc_ids)

    seeds: List[Transaction] = []
    used_ids = set()
    for doc_id in doc_ids:
        if len(seeds) >= count:
            break
        candidates = by_doc[doc_id]
        choice = rng.choice(candidates)
        seeds.append(choice)
        used_ids.add(choice.transaction_id)

    if len(seeds) < count:
        remaining = [
            transaction
            for transaction in transactions
            if transaction.transaction_id not in used_ids
        ]
        rng.shuffle(remaining)
        seeds.extend(remaining[: count - len(seeds)])

    return seeds


def partition_cluster_ids(k: int, m: int) -> List[List[int]]:
    """Partition the cluster identifiers ``{0, ..., k-1}`` into ``m`` subsets.

    This is the startup operation performed by node ``N0`` in CXK-means: the
    ``i``-th subset ``Z_i`` lists the clusters whose *global* representative
    node ``N_i`` is responsible for.  The partition is round-robin so
    responsibilities stay balanced (``|Z_i|`` is ``ceil(k/m)`` or
    ``floor(k/m)``); nodes beyond ``k`` receive empty subsets.
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    if m < 1:
        raise ValueError(f"m must be positive, got {m}")
    subsets: List[List[int]] = [[] for _ in range(m)]
    for cluster_id in range(k):
        subsets[cluster_id % m].append(cluster_id)
    return subsets
