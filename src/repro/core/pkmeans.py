"""PK-means: the non-collaborative distributed baseline (paper Sec. 5.5.3).

PK-means adapts the parallel K-means of Dhillon & Modha (message-passing,
distributed memory) to the XML transactional domain and to a P2P network, as
done by the paper for its comparative evaluation:

* the Euclidean distance is replaced by the XML transaction similarity
  ``sim^gamma_J`` and the vector mean by the XML cluster representative
  computation of Fig. 6;
* the multi-process architecture is mapped onto network peers, and the MPI
  style message passing onto peer-to-peer messages.

The crucial difference from CXK-means is the absence of collaboration in the
summarisation step: every peer broadcasts its local representatives for **all
k clusters to every other peer** (an all-to-all exchange analogous to the
``MPI_Allreduce`` of local sufficient statistics in the original algorithm),
and every peer then recomputes **all k global representatives by itself**.
The per-iteration traffic is therefore ``O(m * k)`` representatives per peer
instead of CXK-means' ``O(k)``, which is what makes PK-means degrade on large
networks (Fig. 8) while producing essentially the same clusterings.

Convergence follows the original algorithm's global-SSE criterion: peers
exchange their local objective (sum of member-to-representative
similarities), and the algorithm stops when the global objective no longer
improves.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import ClusteringConfig
from repro.core.cxkmeans import LocalPhaseInput, LocalPhaseOutput, run_local_phase
from repro.core.results import ClusteringResult, build_result
from repro.core.seeding import partition_cluster_ids, select_seed_transactions
from repro.network.costmodel import CostModel
from repro.network.message import Message, MessageKind, representative_payload
from repro.network.mpengine import (
    RefinementShard,
    SerialExecutor,
    inprocess_backend_name,
    phase_refinement_config,
    refine_clusters,
)
from repro.network.peer import make_peers
from repro.network.simnet import SimulatedNetwork
from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.transaction import SimilarityEngine
from repro.transactions.transaction import Transaction


class PKMeans:
    """Parallel (non-collaborative) K-means over XML transactions."""

    def __init__(
        self,
        config: ClusteringConfig,
        cost_model: Optional[CostModel] = None,
        executor=None,
        objective_tolerance: float = 1.0e-9,
    ) -> None:
        if config.network == "real":
            raise ValueError(
                "the real transport (ClusteringConfig.network='real') is "
                "implemented for CXK-means only; run PK-means on the "
                "simulated network or switch to algorithm 'cxk'"
            )
        self.config = config
        self.cost_model = cost_model or CostModel()
        self.executor = executor or SerialExecutor()
        self.objective_tolerance = objective_tolerance
        self._shared_cache = TagPathSimilarityCache()
        self._engine = SimilarityEngine(
            config.similarity,
            cache=self._shared_cache,
            backend=config.effective_backend,
        )

    @property
    def engine(self) -> SimilarityEngine:
        """The engine shared by every simulated node on the serial path."""
        return self._engine

    # ------------------------------------------------------------------ #
    def _objective(
        self,
        outputs: Sequence[LocalPhaseOutput],
        partitions: Sequence[Sequence[Transaction]],
        representatives: Sequence[Transaction],
    ) -> float:
        """Global objective: sum of similarities to the assigned representative."""
        total = 0.0
        for output, partition in zip(outputs, partitions):
            by_id = {t.transaction_id: t for t in partition}
            for transaction_id, cluster_index in output.assignment.items():
                if cluster_index < 0:
                    continue
                transaction = by_id[transaction_id]
                total += self._engine.transaction_similarity(
                    transaction, representatives[cluster_index]
                )
        return total

    # ------------------------------------------------------------------ #
    def fit(self, partitions: Sequence[Sequence[Transaction]]) -> ClusteringResult:
        """Run PK-means over the given per-peer data partitions."""
        partitions = [list(partition) for partition in partitions]
        if not partitions:
            raise ValueError("at least one peer partition is required")
        total_transactions = sum(len(partition) for partition in partitions)
        if total_transactions < self.config.k:
            raise ValueError(
                f"cannot form {self.config.k} clusters from "
                f"{total_transactions} transactions"
            )

        start = time.perf_counter()
        rng = random.Random(self.config.seed)
        k = self.config.k
        m = len(partitions)

        # PK-means has no notion of per-cluster responsibility; peers are
        # created with empty responsibility lists.
        use_shared_engine = isinstance(self.executor, SerialExecutor)
        # refinement budget split across concurrently running local phases
        # (same two-level peers x clusters scheme as CXK-means)
        refine_budget = self.config.effective_refine_workers
        phase_config = phase_refinement_config(self.config, self.executor, m)
        peers = make_peers(
            partitions,
            [[] for _ in range(m)],
            engine=self._engine if use_shared_engine else None,
        )
        network = SimulatedNetwork(peers, cost_model=self.cost_model)

        # Initial representatives: the same fair protocol as the paper's
        # comparison -- seeds are chosen among local transactions, one block of
        # clusters per peer (round-robin), then broadcast to everyone.
        seed_responsibilities = partition_cluster_ids(k, m)
        global_representatives: Dict[int, Transaction] = {}
        used = set()
        for peer_index, cluster_ids in enumerate(seed_responsibilities):
            local = partitions[peer_index]
            count = min(len(cluster_ids), len(local))
            chosen = select_seed_transactions(local, count, rng) if count else []
            for cluster_id, seed in zip(cluster_ids, chosen):
                global_representatives[cluster_id] = seed
                used.add(seed.transaction_id)
        missing = [j for j in range(k) if j not in global_representatives]
        if missing:
            pool = [
                t
                for partition in partitions
                for t in partition
                if t.transaction_id not in used
            ]
            extra = select_seed_transactions(pool, len(missing), rng)
            for cluster_id, seed in zip(missing, extra):
                global_representatives[cluster_id] = seed

        with network.round():
            for peer in peers:
                payload = representative_payload(
                    [(j, global_representatives[j], 0) for j in range(k)]
                )
                network.send(
                    Message(
                        sender=-1,
                        recipient=peer.peer_id,
                        kind=MessageKind.GLOBAL_REPRESENTATIVES,
                        payload=payload,
                    )
                )

        iterations = 0
        converged = False
        previous_objective: Optional[float] = None
        last_outputs: List[Optional[LocalPhaseOutput]] = [None] * m

        while iterations < self.config.max_iterations:
            iterations += 1
            network.begin_round()
            ordered_representatives = [global_representatives[j] for j in range(k)]

            inputs = [
                LocalPhaseInput(
                    peer_id=peer.peer_id,
                    transactions=peer.transactions,
                    global_representatives=ordered_representatives,
                    config=phase_config,
                )
                for peer in peers
            ]
            if use_shared_engine:
                outputs = [
                    run_local_phase(item, engine=peers[item.peer_id].engine)
                    for item in inputs
                ]
            else:
                outputs = self.executor.map(run_local_phase, inputs)
            for output in outputs:
                network.stats.record_compute(output.peer_id, output.compute_seconds)
                last_outputs[output.peer_id] = output

            # All-to-all exchange: every peer sends its k local representatives
            # (and local cluster sizes) to every other peer.
            for output in outputs:
                payload = representative_payload(
                    [
                        (j, output.local_representatives[j], output.cluster_sizes[j])
                        for j in range(k)
                    ]
                )
                network.broadcast(
                    output.peer_id, MessageKind.LOCAL_REPRESENTATIVES, payload
                )
                # the local objective / flag exchange of the original algorithm
                network.broadcast(output.peer_id, MessageKind.FLAG, {"objective": 0.0})

            # Every peer recomputes every global representative (duplicated
            # work; only one copy is timed per peer since they all perform the
            # same computation in parallel).
            new_representatives: Dict[int, Transaction] = {}
            for peer in peers:
                with network.measure_compute(peer.peer_id):
                    peer_engine = (
                        self._engine
                        if use_shared_engine
                        else SimilarityEngine(
                            self.config.similarity,
                            backend=self.config.effective_backend,
                        )
                    )
                    computed: Dict[int, Transaction] = {}
                    shards = []
                    for cluster_id in range(k):
                        weighted = [
                            (
                                output.local_representatives[cluster_id],
                                output.cluster_sizes[cluster_id],
                            )
                            for output in outputs
                        ]
                        if not any(weight for _, weight in weighted):
                            computed[cluster_id] = global_representatives[cluster_id]
                            continue
                        shards.append(
                            RefinementShard(
                                cluster_index=cluster_id,
                                members=[rep for rep, _ in weighted],
                                weights=[weight for _, weight in weighted],
                                similarity=self.config.similarity,
                                backend=inprocess_backend_name(peer_engine),
                                representative_id=f"rep:global:{cluster_id}",
                                max_items=self.config.max_representative_items,
                            )
                        )
                    # the global-phase equivalent of the cluster-sharded
                    # refinement: one cluster merge per worker
                    computed.update(
                        refine_clusters(shards, peer_engine, workers=refine_budget)
                    )
                if not new_representatives:
                    new_representatives = computed
            global_representatives = new_representatives

            objective = self._objective(
                outputs, partitions, [global_representatives[j] for j in range(k)]
            )
            network.end_round()

            if (
                previous_objective is not None
                and abs(objective - previous_objective) <= self.objective_tolerance
            ):
                converged = True
                break
            previous_objective = objective

        # --- final clustering --------------------------------------------- #
        members: List[List[Transaction]] = [[] for _ in range(k)]
        trash: List[Transaction] = []
        for peer in peers:
            output = last_outputs[peer.peer_id]
            if output is None:
                trash.extend(peer.transactions)
                continue
            by_id = {t.transaction_id: t for t in peer.transactions}
            for transaction_id, cluster_index in output.assignment.items():
                transaction = by_id[transaction_id]
                if cluster_index < 0:
                    trash.append(transaction)
                else:
                    members[cluster_index].append(transaction)

        elapsed = time.perf_counter() - start
        network_summary = network.summary()
        return build_result(
            representatives=[global_representatives[j] for j in range(k)],
            members=members,
            trash_members=trash,
            iterations=iterations,
            converged=converged,
            elapsed_seconds=elapsed,
            simulated_seconds=network_summary["simulated_seconds"],
            network=network_summary,
            metadata={
                "algorithm": "PK-means",
                "k": k,
                "peers": m,
                "f": self.config.f,
                "gamma": self.config.gamma,
                "transactions": total_transactions,
                "partition_sizes": [len(partition) for partition in partitions],
            },
        )
