"""Clustering core: XK-means, CXK-means, PK-means and supporting machinery."""

from repro.core.config import ClusteringConfig
from repro.core.cxkmeans import CXKMeans, LocalPhaseInput, LocalPhaseOutput, run_local_phase
from repro.core.partition import (
    PartitioningScheme,
    partition,
    partition_equally,
    partition_unequally,
)
from repro.core.pkmeans import PKMeans
from repro.core.representatives import (
    compute_global_representative,
    compute_local_representative,
    conflate_items,
    generate_tree_tuple,
    rank_items,
    reference_item_ranks,
    refinement_candidates,
    representatives_equal,
)
from repro.core.results import ClusterInfo, ClusteringResult, build_result
from repro.core.seeding import partition_cluster_ids, select_seed_transactions
from repro.core.xkmeans import XKMeans

__all__ = [
    "ClusteringConfig",
    "XKMeans",
    "CXKMeans",
    "PKMeans",
    "LocalPhaseInput",
    "LocalPhaseOutput",
    "run_local_phase",
    "ClusteringResult",
    "ClusterInfo",
    "build_result",
    "PartitioningScheme",
    "partition",
    "partition_equally",
    "partition_unequally",
    "conflate_items",
    "rank_items",
    "reference_item_ranks",
    "refinement_candidates",
    "generate_tree_tuple",
    "compute_local_representative",
    "compute_global_representative",
    "representatives_equal",
    "partition_cluster_ids",
    "select_seed_transactions",
]
