"""Configuration objects for the clustering algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.similarity.item import SimilarityConfig


@dataclass(frozen=True)
class ClusteringConfig:
    """Configuration shared by XK-means, CXK-means and PK-means.

    Attributes
    ----------
    k:
        Desired number of clusters; the algorithms additionally maintain a
        (k+1)-th *trash* cluster for transactions with zero similarity to
        every representative.
    similarity:
        The :class:`~repro.similarity.item.SimilarityConfig` (blend factor
        ``f`` and gamma threshold) driving item and transaction similarity.
    max_iterations:
        Upper bound on the number of outer iterations; the paper observes
        convergence in fewer than 10 iterations on all corpora, the default
        bound is a safety net rather than a tuning knob.
    seed:
        Seed of the pseudo-random generator used for selecting the initial
        representatives (reproducibility of experiments).
    max_representative_items:
        Optional cap on the number of items a representative may contain, in
        addition to the ``|tr_max|`` bound imposed by GenerateTreeTuple.
    backend:
        Name of the similarity backend driving the assignment and
        representative-refinement hot paths (``"python"`` for the reference
        loops, ``"numpy"`` for the vectorized batch engine,
        ``"sharded[:workers[:inner]]"`` for the multiprocessing backend
        sharding ``assign_all`` row blocks across worker processes,
        ``"torch[:device]"`` for the optional tensor backend; see
        :mod:`repro.similarity.backend`).  The spec is validated at
        construction time
        (:func:`~repro.similarity.backend.validate_backend_spec`): unknown
        names and malformed options raise ``ValueError``, and backends
        whose optional dependency is missing -- e.g. ``"torch"`` without
        PyTorch installed, or ``"torch:cuda"`` without a usable GPU --
        raise :class:`~repro.similarity.backend.BackendUnavailableError`
        with an actionable message here rather than deep inside a fit.
    batch_block_items:
        Tile budget (items per tile side) of the batched similarity
        kernels: the ``numpy`` and ``torch`` backends evaluate their
        similarity blocks in ``(row_tile x column_tile)`` tiles whose
        row-item and column-item totals each stay within this budget, so
        peak scratch memory is bounded regardless of corpus size while
        several column transactions are fused per kernel call.  ``None``
        keeps the backend default
        (:data:`~repro.similarity.backend.DEFAULT_BLOCK_ITEMS`), ``0``
        selects the unbounded single-tile (untiled) path, and any
        positive value caps the tile side.  Tiling is bit-exact: every
        budget produces identical results (see
        :attr:`effective_backend`, which threads the budget into the
        backend spec -- including the inner spec of a ``sharded``
        backend, so worker processes inherit it).  An explicit
        ``block=`` option in :attr:`backend` takes precedence.
    refine_workers:
        Worker processes for cluster-sharded representative refinement:
        each local (or global) phase dispatches one cluster's refinement
        per worker through
        :func:`~repro.network.mpengine.refine_clusters`, merging the
        results in deterministic cluster-index order with bit-exact parity
        against the serial path.  ``None`` or ``1`` keeps the historical
        serial refinement.  Refinement parallelism applies when the local
        phases run serially in the driving process (the default peer
        executor); phases dispatched into worker processes are daemonic
        and cannot nest pools, so their budget resolves to 1
        (:func:`~repro.network.mpengine.phase_refinement_config`).
    corpus_cache_dir:
        Directory of the persistent compiled-corpus store
        (:mod:`repro.similarity.corpus_store`), default off (``None``).
        When set, experiment runs export the compiled corpus (tag-path
        matrix, item id arrays, content-class registries) to a
        fingerprinted on-disk layout under this directory on the first
        fit, and later fits of the same corpus + similarity configuration
        attach the arrays zero-copy via ``np.load(mmap_mode="r")`` instead
        of recompiling -- shard worker processes and simulated peers then
        share one set of mapped pages.  Backends without compiled corpora
        (the ``python`` reference) ignore the setting.
    network:
        Transport running the collaborative rounds of CXK-means:
        ``"sim"`` (default) executes the peers sequentially on the
        round-based :class:`~repro.network.simnet.SimulatedNetwork` with
        cost-model timing; ``"real"`` runs every peer as a genuinely
        concurrent process exchanging the same message types over
        localhost TCP (:class:`~repro.network.realnet.RealNetwork`),
        recording measured wire bytes and wall-clock alongside the
        cost-model predictions.  Both transports produce bit-identical
        clusterings for the same seed.
    network_timeout:
        Deadline in seconds for one collaborative round of the real
        transport (and for the worker handshake); a stalled or dead peer
        surfaces as an actionable
        :class:`~repro.network.realnet.RealNetworkError` within this
        bound instead of hanging the driver.  Ignored by the simulated
        transport.
    streaming:
        Enables the incremental fit mode
        (:class:`~repro.core.streaming.StreamingClusterer`): the corpus is
        ingested in chunks against the current representatives instead of
        one batch fit, with poorly-matched transactions parked in a
        bounded retained set and re-refinement triggered only when drift
        crosses :attr:`drift_threshold`.  Batch fits ignore the flag.
    chunk_size:
        Transactions per ingested chunk in streaming mode.  ``None`` means
        unchunked (the whole input is one chunk -- the configuration under
        which streaming is bit-exact with the batch fit); the retained-set
        capacity is derived from this (see
        :attr:`effective_retain_capacity`).
    retain_threshold:
        Similarity below which an incoming transaction is *retained*
        (parked for the next re-refinement) instead of being committed to
        its nearest cluster.  ``0.0`` retains only zero-similarity (trash
        candidate) transactions, mirroring the batch trash rule.
    drift_threshold:
        Fraction of the retained-set capacity at which the streaming
        clusterer triggers a bounded re-refinement (``1.0`` = only when
        the retained set is full; lower values re-refine earlier).
    """

    k: int
    similarity: SimilarityConfig = field(default_factory=SimilarityConfig)
    max_iterations: int = 20
    seed: int = 0
    max_representative_items: Optional[int] = None
    backend: str = "python"
    batch_block_items: Optional[int] = None
    refine_workers: Optional[int] = None
    corpus_cache_dir: Optional[str] = None
    network: str = "sim"
    network_timeout: float = 120.0
    streaming: bool = False
    chunk_size: Optional[int] = None
    retain_threshold: float = 0.25
    drift_threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.max_iterations < 1:
            raise ValueError(
                f"max_iterations must be positive, got {self.max_iterations}"
            )
        if self.batch_block_items is not None and self.batch_block_items < 0:
            raise ValueError(
                "batch_block_items must be >= 0 (0 = unbounded), got "
                f"{self.batch_block_items}"
            )
        if self.refine_workers is not None and self.refine_workers < 1:
            raise ValueError(
                f"refine_workers must be positive, got {self.refine_workers}"
            )
        if self.network not in ("sim", "real"):
            raise ValueError(
                f'network must be "sim" or "real", got {self.network!r}'
            )
        if self.network_timeout <= 0:
            raise ValueError(
                f"network_timeout must be positive, got {self.network_timeout}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be positive, got {self.chunk_size}"
            )
        if not 0.0 <= self.retain_threshold <= 1.0:
            raise ValueError(
                f"retain_threshold must be in [0, 1], got {self.retain_threshold}"
            )
        if not 0.0 < self.drift_threshold <= 1.0:
            raise ValueError(
                f"drift_threshold must be in (0, 1], got {self.drift_threshold}"
            )
        # fail at config-resolution time, not deep inside a fit: unknown
        # backends raise ValueError, missing optional dependencies raise
        # BackendUnavailableError with install guidance.  Imported lazily
        # because the similarity backend module sits beside, not below,
        # this one in the layer graph.
        from repro.similarity.backend import validate_backend_spec

        validate_backend_spec(self.backend)
        if self.batch_block_items is not None:
            # the merged spec (batch_block_items threaded into the backend
            # options) is what the algorithms actually run; validate it
            # here too so the merge cannot fail later
            validate_backend_spec(self.effective_backend)

    @property
    def f(self) -> float:
        """Shortcut for the structure/content blend factor."""
        return self.similarity.f

    @property
    def gamma(self) -> float:
        """Shortcut for the gamma matching threshold."""
        return self.similarity.gamma

    @property
    def effective_refine_workers(self) -> int:
        """The refinement worker count with ``None`` resolved to serial (1)."""
        return self.refine_workers or 1

    @property
    def effective_batch_block_items(self) -> int:
        """The tile budget the batch kernels will actually run with.

        Resolved from :attr:`effective_backend` -- so a spec-level
        ``block=`` option (which wins over :attr:`batch_block_items`, see
        :attr:`effective_backend`) is reported correctly -- falling back
        to the backend default
        (:data:`~repro.similarity.backend.DEFAULT_BLOCK_ITEMS`) when
        neither the spec nor the config names a budget.  ``0`` means
        unbounded (the untiled single-tile path); any positive value caps
        each tile side's item total.
        """
        from repro.similarity.backend import (
            DEFAULT_BLOCK_ITEMS,
            spec_block_items,
        )

        block = spec_block_items(self.effective_backend)
        if block is not None:
            return block
        # backends without batch kernels (python) carry no block in their
        # spec; fall back to the config knob, then the backend default
        if self.batch_block_items is not None:
            return self.batch_block_items
        return DEFAULT_BLOCK_ITEMS

    @property
    def effective_backend(self) -> str:
        """The backend spec the algorithms run: ``backend`` + tile budget.

        When :attr:`batch_block_items` is set, the budget is merged into
        the spec's option grammar
        (:func:`~repro.similarity.backend.merge_block_option`):
        ``numpy``/``torch`` specs gain ``:block=N``, ``sharded`` specs
        thread it into their inner spec (so shard workers inherit the tile
        configuration through the shard payload), the ``python`` reference
        is unchanged, and an explicit ``block=`` already present in the
        spec wins.  With :attr:`batch_block_items` unset this is simply
        :attr:`backend`.
        """
        if self.batch_block_items is None:
            return self.backend
        from repro.similarity.backend import merge_block_option

        return merge_block_option(self.backend, self.batch_block_items)

    def with_k(self, k: int) -> "ClusteringConfig":
        """Return a copy of the configuration with a different ``k``."""
        return replace(self, k=k)

    def with_similarity(self, similarity: SimilarityConfig) -> "ClusteringConfig":
        """Return a copy with a different similarity configuration."""
        return replace(self, similarity=similarity)

    def with_seed(self, seed: int) -> "ClusteringConfig":
        """Return a copy with a different random seed."""
        return replace(self, seed=seed)

    def with_backend(self, backend: str) -> "ClusteringConfig":
        """Return a copy with a different similarity backend."""
        return replace(self, backend=backend)

    def with_batch_block_items(
        self, batch_block_items: Optional[int]
    ) -> "ClusteringConfig":
        """Return a copy with a different batch tile budget."""
        return replace(self, batch_block_items=batch_block_items)

    def with_refine_workers(self, refine_workers: Optional[int]) -> "ClusteringConfig":
        """Return a copy with a different refinement worker budget."""
        return replace(self, refine_workers=refine_workers)

    def with_corpus_cache_dir(
        self, corpus_cache_dir: Optional[str]
    ) -> "ClusteringConfig":
        """Return a copy with a different compiled-corpus store directory."""
        return replace(self, corpus_cache_dir=corpus_cache_dir)

    def with_network(
        self, network: str, network_timeout: Optional[float] = None
    ) -> "ClusteringConfig":
        """Return a copy running on a different transport (``sim``/``real``)."""
        if network_timeout is None:
            return replace(self, network=network)
        return replace(self, network=network, network_timeout=network_timeout)

    @property
    def effective_retain_capacity(self) -> int:
        """Upper bound on the streaming retained set, derived from the chunk.

        Two chunks' worth of transactions (minimum 8): large enough that a
        transient burst of novel documents does not force a re-refinement
        per chunk, small enough that memory stays bounded and drift is
        detected within a couple of chunks.  Unchunked streams
        (``chunk_size=None``) get the minimum -- every transaction is seen
        in the single bootstrap chunk, so the retained set only ever holds
        post-bootstrap stragglers.
        """
        if self.chunk_size is None:
            return 8
        return max(8, 2 * self.chunk_size)

    def with_streaming(
        self,
        streaming: bool = True,
        *,
        chunk_size: Optional[int] = None,
        retain_threshold: Optional[float] = None,
        drift_threshold: Optional[float] = None,
    ) -> "ClusteringConfig":
        """Return a copy with streaming-ingestion settings applied."""
        updates: dict = {"streaming": streaming}
        if chunk_size is not None:
            updates["chunk_size"] = chunk_size
        if retain_threshold is not None:
            updates["retain_threshold"] = retain_threshold
        if drift_threshold is not None:
            updates["drift_threshold"] = drift_threshold
        return replace(self, **updates)
