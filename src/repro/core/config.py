"""Configuration objects for the clustering algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.similarity.item import SimilarityConfig


@dataclass(frozen=True)
class ClusteringConfig:
    """Configuration shared by XK-means, CXK-means and PK-means.

    Attributes
    ----------
    k:
        Desired number of clusters; the algorithms additionally maintain a
        (k+1)-th *trash* cluster for transactions with zero similarity to
        every representative.
    similarity:
        The :class:`~repro.similarity.item.SimilarityConfig` (blend factor
        ``f`` and gamma threshold) driving item and transaction similarity.
    max_iterations:
        Upper bound on the number of outer iterations; the paper observes
        convergence in fewer than 10 iterations on all corpora, the default
        bound is a safety net rather than a tuning knob.
    seed:
        Seed of the pseudo-random generator used for selecting the initial
        representatives (reproducibility of experiments).
    max_representative_items:
        Optional cap on the number of items a representative may contain, in
        addition to the ``|tr_max|`` bound imposed by GenerateTreeTuple.
    backend:
        Name of the similarity backend driving the assignment and
        representative-refinement hot paths (``"python"`` for the reference
        loops, ``"numpy"`` for the vectorized batch engine,
        ``"sharded[:workers[:inner]]"`` for the multiprocessing backend
        sharding ``assign_all`` row blocks across worker processes,
        ``"torch[:device]"`` for the optional tensor backend; see
        :mod:`repro.similarity.backend`).  The spec is validated at
        construction time
        (:func:`~repro.similarity.backend.validate_backend_spec`): unknown
        names and malformed options raise ``ValueError``, and backends
        whose optional dependency is missing -- e.g. ``"torch"`` without
        PyTorch installed, or ``"torch:cuda"`` without a usable GPU --
        raise :class:`~repro.similarity.backend.BackendUnavailableError`
        with an actionable message here rather than deep inside a fit.
    refine_workers:
        Worker processes for cluster-sharded representative refinement:
        each local (or global) phase dispatches one cluster's refinement
        per worker through
        :func:`~repro.network.mpengine.refine_clusters`, merging the
        results in deterministic cluster-index order with bit-exact parity
        against the serial path.  ``None`` or ``1`` keeps the historical
        serial refinement.  Refinement parallelism applies when the local
        phases run serially in the driving process (the default peer
        executor); phases dispatched into worker processes are daemonic
        and cannot nest pools, so their budget resolves to 1
        (:func:`~repro.network.mpengine.phase_refinement_config`).
    """

    k: int
    similarity: SimilarityConfig = field(default_factory=SimilarityConfig)
    max_iterations: int = 20
    seed: int = 0
    max_representative_items: Optional[int] = None
    backend: str = "python"
    refine_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.max_iterations < 1:
            raise ValueError(
                f"max_iterations must be positive, got {self.max_iterations}"
            )
        if self.refine_workers is not None and self.refine_workers < 1:
            raise ValueError(
                f"refine_workers must be positive, got {self.refine_workers}"
            )
        # fail at config-resolution time, not deep inside a fit: unknown
        # backends raise ValueError, missing optional dependencies raise
        # BackendUnavailableError with install guidance.  Imported lazily
        # because the similarity backend module sits beside, not below,
        # this one in the layer graph.
        from repro.similarity.backend import validate_backend_spec

        validate_backend_spec(self.backend)

    @property
    def f(self) -> float:
        """Shortcut for the structure/content blend factor."""
        return self.similarity.f

    @property
    def gamma(self) -> float:
        """Shortcut for the gamma matching threshold."""
        return self.similarity.gamma

    @property
    def effective_refine_workers(self) -> int:
        """The refinement worker count with ``None`` resolved to serial (1)."""
        return self.refine_workers or 1

    def with_k(self, k: int) -> "ClusteringConfig":
        """Return a copy of the configuration with a different ``k``."""
        return replace(self, k=k)

    def with_similarity(self, similarity: SimilarityConfig) -> "ClusteringConfig":
        """Return a copy with a different similarity configuration."""
        return replace(self, similarity=similarity)

    def with_seed(self, seed: int) -> "ClusteringConfig":
        """Return a copy with a different random seed."""
        return replace(self, seed=seed)

    def with_backend(self, backend: str) -> "ClusteringConfig":
        """Return a copy with a different similarity backend."""
        return replace(self, backend=backend)

    def with_refine_workers(self, refine_workers: Optional[int]) -> "ClusteringConfig":
        """Return a copy with a different refinement worker budget."""
        return replace(self, refine_workers=refine_workers)
