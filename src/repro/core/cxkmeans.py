"""CXK-means: collaborative distributed clustering of XML transactions.

This module implements the algorithm of the paper's Fig. 5.  The input set
``S`` of XML transactions is distributed over ``m`` peers; every peer runs a
K-means-like local clustering over its own data using the *global* cluster
representatives, summarises each local cluster with a *local* representative
(Fig. 6), and sends each local representative to the peer responsible for
that cluster.  Responsible peers merge the local representatives (weighted by
local cluster sizes) into new global representatives and broadcast them back.
The process iterates until every peer reports that its local representatives
no longer change.

The peers are executed on one of two drop-in interchangeable transports,
selected by ``ClusteringConfig(network=...)``:

* ``"sim"`` -- the :class:`~repro.network.simnet.SimulatedNetwork`, which
  accounts every exchanged representative and models the parallel runtime
  of each round as ``max(per-peer compute time) + communication time``.
  Per-peer computation can optionally be executed by a
  :class:`~repro.network.mpengine.MultiprocessingExecutor` to obtain real
  parallelism on the host machine.
* ``"real"`` -- the :class:`~repro.network.realnet.RealNetwork`, which runs
  every peer as a genuinely concurrent process exchanging the same message
  types over localhost TCP and records measured wire bytes and wall-clock
  alongside the cost model's predictions.  The collaborative control flow
  (rounds, flags, global merges) is identical, so both transports produce
  bit-identical clusterings for the same seed.

Startup (the role of node ``N0``) consists only of partitioning the cluster
identifiers across peers and distributing ``(Z, k, gamma)``; as in the paper
it involves no data summarisation and therefore does not make the algorithm
centralised.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import ClusteringConfig
from repro.core.representatives import representatives_equal
from repro.core.results import ClusteringResult, build_result
from repro.core.seeding import partition_cluster_ids, select_seed_transactions
from repro.network.costmodel import CostModel
from repro.network.message import Message, MessageKind, representative_payload
from repro.network.mpengine import (
    SerialExecutor,
    make_refinement_shard,
    phase_refinement_config,
    process_engine,
    refine_clusters,
    store_process_engine,
)
from repro.network.peer import make_peers
from repro.network.simnet import SimulatedNetwork
from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.corpus_store import CorpusStoreError
from repro.similarity.transaction import SimilarityEngine
from repro.transactions.transaction import Transaction


# --------------------------------------------------------------------------- #
# The per-peer local phase
# --------------------------------------------------------------------------- #
@dataclass
class LocalPhaseInput:
    """Input of one peer's local phase for one collaborative round.

    ``store_dir`` names the persistent compiled-corpus store shared by the
    simulated network (None without one); worker processes executing the
    phase attach it instead of recompiling their partition per process.
    """

    peer_id: int
    transactions: List[Transaction]
    global_representatives: List[Transaction]
    config: ClusteringConfig
    store_dir: Optional[str] = None


@dataclass
class LocalPhaseOutput:
    """Output of one peer's local phase.

    Attributes
    ----------
    peer_id:
        The peer that produced this output.
    assignment:
        Mapping transaction_id -> cluster index (``-1`` for trash).
    local_representatives:
        One local representative per cluster (empty transactions for local
        clusters with no members).
    cluster_sizes:
        ``|C^i_j|`` for every cluster ``j``.
    compute_seconds:
        Wall-clock time spent inside the phase (used by the simulated
        network's parallel-time model).
    store_fallback:
        1 when the phase was given a ``store_dir`` but attaching the
        compiled-corpus store failed and the peer recompiled its partition
        from scratch; 0 otherwise.  Aggregated into the fit metadata so a
        broken store surfaces in run records instead of hiding as a quiet
        slowdown.
    """

    peer_id: int
    assignment: Dict[str, int]
    local_representatives: List[Transaction]
    cluster_sizes: List[int]
    compute_seconds: float
    store_fallback: int = 0


def run_local_phase(
    phase_input: LocalPhaseInput,
    engine: Optional[SimilarityEngine] = None,
) -> LocalPhaseOutput:
    """Execute the local clustering phase of one peer (Fig. 5, inner loop).

    The peer relocates its local transactions against the current global
    representatives (transactions with zero similarity to every
    representative fall into the trash cluster) and computes a local
    representative for every non-empty local cluster.  Because the global
    representatives stay fixed during the phase, the relocation loop
    stabilises after a single pass; the loop structure is kept for fidelity
    with the pseudocode and as a guard for custom similarity engines.

    This function is a module-level callable (not a closure) so it can be
    dispatched to worker processes by the multiprocessing engine.  When no
    *engine* is passed (multiprocessing workers) the per-process engine for
    the phase's configuration is used, so a worker keeps its tag-path cache
    and compiled backend corpus across collaborative rounds.

    When the configuration grants more than one refinement worker
    (``refine_workers``), the per-cluster representative refinement -- the
    phase's serial tail -- is sharded one cluster per worker process
    through :func:`~repro.network.mpengine.refine_clusters`; results are
    merged in cluster-index order and are bit-exact with the serial path.
    """
    start = time.perf_counter()
    config = phase_input.config
    local_engine = engine
    store_fallback = 0
    if local_engine is None:
        if phase_input.store_dir is not None:
            # worker processes of a store-backed run share the on-disk
            # compiled corpus instead of recompiling their partition; only
            # expected store failures (corrupt/evicted/unreadable store)
            # degrade to a local recompile -- anything else is a real bug
            # and must propagate
            try:
                local_engine = store_process_engine(
                    config.similarity,
                    config.effective_backend,
                    phase_input.store_dir,
                )
            except (CorpusStoreError, OSError):
                store_fallback = 1
                local_engine = None
        if local_engine is None:
            local_engine = process_engine(
                config.similarity, config.effective_backend
            )
    representatives = phase_input.global_representatives
    k = len(representatives)
    transactions = phase_input.transactions
    local_engine.backend.compile_corpus(transactions)

    assignment: Dict[str, int] = {}
    previous_assignment: Optional[Dict[str, int]] = None
    clusters: List[List[Transaction]] = [[] for _ in range(k)]

    while previous_assignment != assignment or previous_assignment is None:
        previous_assignment = dict(assignment)
        assignment = {}
        clusters = [[] for _ in range(k)]
        results = local_engine.assign_all(transactions, representatives)
        for transaction, (best_index, best_similarity) in zip(transactions, results):
            if best_similarity <= 0.0:
                assignment[transaction.transaction_id] = -1
            else:
                assignment[transaction.transaction_id] = best_index
                clusters[best_index].append(transaction)
        if previous_assignment == assignment:
            break

    # Representative refinement: one shard per cluster, dispatched across
    # refinement workers when the configuration grants more than one
    # (cluster-sharded refinement; serial and sharded results are
    # bit-exact, merged in cluster-index order by refine_clusters).
    cluster_sizes = [len(members) for members in clusters]
    shards = [
        make_refinement_shard(
            local_engine,
            cluster_index=cluster_index,
            members=members,
            representative_id=f"rep:local:{phase_input.peer_id}:{cluster_index}",
            max_items=config.max_representative_items,
        )
        for cluster_index, members in enumerate(clusters)
    ]
    refined = refine_clusters(
        shards, local_engine, workers=config.effective_refine_workers
    )
    local_representatives = [refined[cluster_index] for cluster_index in range(k)]

    return LocalPhaseOutput(
        peer_id=phase_input.peer_id,
        assignment=assignment,
        local_representatives=local_representatives,
        cluster_sizes=cluster_sizes,
        compute_seconds=time.perf_counter() - start,
        store_fallback=store_fallback,
    )


# --------------------------------------------------------------------------- #
# The collaborative algorithm
# --------------------------------------------------------------------------- #
class CXKMeans:
    """Collaborative distributed XK-means over a simulated P2P network.

    Parameters
    ----------
    config:
        Clustering configuration shared by every peer.
    cost_model:
        Cost model used by the simulated network to convert traffic into
        simulated communication time.
    executor:
        Optional executor for the per-peer local phases;
        :class:`~repro.network.mpengine.SerialExecutor` (default) runs peers
        sequentially with a shared tag-path cache, while
        :class:`~repro.network.mpengine.MultiprocessingExecutor` runs them in
        separate processes.
    """

    def __init__(
        self,
        config: ClusteringConfig,
        cost_model: Optional[CostModel] = None,
        executor=None,
    ) -> None:
        self.config = config
        self.cost_model = cost_model or CostModel()
        self.executor = executor or SerialExecutor()
        self._shared_cache = TagPathSimilarityCache()
        self._engine = SimilarityEngine(
            config.similarity,
            cache=self._shared_cache,
            backend=config.effective_backend,
        )

    @property
    def engine(self) -> SimilarityEngine:
        """The engine shared by every simulated node on the serial path."""
        return self._engine

    # ------------------------------------------------------------------ #
    # Transport selection
    # ------------------------------------------------------------------ #
    def _make_network(self, peers, store_dir: Optional[str], phases: int):
        """Build (and start) the transport selected by ``config.network``.

        The real transport receives a per-worker configuration whose
        refinement budget is split across the genuinely concurrent phases
        (:func:`~repro.network.mpengine.split_refinement_budget`) -- the
        worker processes are non-daemonic, so a budget > 1 still shards
        refinement inside each peer without oversubscribing the host.
        """
        if self.config.network == "real":
            # imported lazily: realnet pulls the codec stack in, which only
            # real runs need
            from repro.network.mpengine import split_refinement_budget
            from repro.network.realnet import RealNetwork

            worker_config = self.config.with_refine_workers(
                split_refinement_budget(
                    self.config.effective_refine_workers, phases
                )
            )
            network = RealNetwork(
                peers,
                cost_model=self.cost_model,
                phase_config=worker_config,
                store_dir=store_dir,
                connect_timeout=self.config.network_timeout,
                round_timeout=self.config.network_timeout,
            )
            network.start()
            return network
        return SimulatedNetwork(peers, cost_model=self.cost_model)

    # ------------------------------------------------------------------ #
    # Seeding
    # ------------------------------------------------------------------ #
    def _initial_global_representatives(
        self,
        partitions: Sequence[Sequence[Transaction]],
        responsibilities: Sequence[Sequence[int]],
        rng: random.Random,
    ) -> Dict[int, Transaction]:
        """Select the initial global representatives (one per cluster).

        Every peer seeds the clusters it is responsible for using
        transactions of its own local share drawn from distinct source
        documents; when a peer cannot supply enough seeds (tiny partitions),
        the missing clusters are seeded from the remaining data so that every
        cluster starts from a valid representative.
        """
        seeds: Dict[int, Transaction] = {}
        used_ids = set()
        for peer_index, cluster_ids in enumerate(responsibilities):
            local = list(partitions[peer_index])
            if not cluster_ids:
                continue
            count = min(len(cluster_ids), len(local))
            selected = select_seed_transactions(local, count, rng) if count else []
            for cluster_id, seed in zip(cluster_ids, selected):
                seeds[cluster_id] = seed
                used_ids.add(seed.transaction_id)
        missing = [
            cluster_id
            for cluster_ids in responsibilities
            for cluster_id in cluster_ids
            if cluster_id not in seeds
        ]
        if missing:
            pool = [
                transaction
                for partition in partitions
                for transaction in partition
                if transaction.transaction_id not in used_ids
            ]
            if len(pool) < len(missing):
                raise ValueError(
                    "not enough transactions to seed every cluster: "
                    f"{len(missing)} clusters missing, {len(pool)} transactions left"
                )
            extra = select_seed_transactions(pool, len(missing), rng)
            for cluster_id, seed in zip(missing, extra):
                seeds[cluster_id] = seed
        return seeds

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def fit(
        self, partitions: Sequence[Sequence[Transaction]]
    ) -> ClusteringResult:
        """Run CXK-means over the given per-peer data partitions.

        Parameters
        ----------
        partitions:
            One list of transactions per peer (typically produced by
            :func:`repro.core.partition.partition`).  A single partition
            reduces the algorithm to its centralized behaviour.
        """
        partitions = [list(partition) for partition in partitions]
        if not partitions:
            raise ValueError("at least one peer partition is required")
        total_transactions = sum(len(partition) for partition in partitions)
        if total_transactions < self.config.k:
            raise ValueError(
                f"cannot form {self.config.k} clusters from "
                f"{total_transactions} transactions"
            )

        start = time.perf_counter()
        rng = random.Random(self.config.seed)
        k = self.config.k
        m = len(partitions)

        # --- N0 startup: partition cluster ids, create peers and network --- #
        use_shared_engine = isinstance(self.executor, SerialExecutor)
        # Two-level parallelism budget: concurrent local phases share the
        # refinement workers equally (the global phase below runs peers
        # sequentially, so it keeps the full budget).
        refine_budget = self.config.effective_refine_workers
        phase_config = phase_refinement_config(self.config, self.executor, m)
        responsibilities = partition_cluster_ids(k, m)
        # one attached compiled-corpus store (when the runner prepared one)
        # is shared by the whole simulated network: serial peers through the
        # shared engine, worker-process phases through its directory handle
        store = getattr(self._engine.backend, "attached_store", None)
        store_dir = str(store.directory) if store is not None else None
        use_real = self.config.network == "real"
        peers = make_peers(
            partitions,
            responsibilities,
            # real-transport peers compute remotely; their driver-side
            # objects carry no engine so nothing shadows the worker engines
            engine=self._engine if (use_shared_engine and not use_real) else None,
            store=store,
        )
        network = self._make_network(peers, store_dir, m)
        try:
            return self._collaborate(
                network=network,
                peers=peers,
                partitions=partitions,
                responsibilities=responsibilities,
                phase_config=phase_config,
                store_dir=store_dir,
                refine_budget=refine_budget,
                use_shared_engine=use_shared_engine,
                rng=rng,
                start=start,
            )
        finally:
            # both transports expose close(); for the real network this
            # shuts the worker processes down even when a round failed
            network.close()

    def _collaborate(
        self,
        *,
        network,
        peers,
        partitions,
        responsibilities,
        phase_config,
        store_dir,
        refine_budget,
        use_shared_engine,
        rng,
        start,
    ) -> ClusteringResult:
        """Run the collaborative rounds on an already-started transport."""
        k = self.config.k
        m = len(partitions)
        total_transactions = sum(len(partition) for partition in partitions)
        with network.round():
            for peer in peers:
                network.send(
                    Message(
                        sender=-1,
                        recipient=peer.peer_id,
                        kind=MessageKind.SETUP,
                        payload={
                            "responsibilities": responsibilities,
                            "k": k,
                            "gamma": self.config.gamma,
                        },
                    )
                )

        # --- initial global representatives --------------------------------- #
        global_representatives = self._initial_global_representatives(
            partitions, responsibilities, rng
        )

        # latest local representatives / sizes known for every (peer, cluster)
        latest_local: List[List[Optional[Transaction]]] = [
            [None] * k for _ in range(m)
        ]
        latest_sizes: List[List[int]] = [[0] * k for _ in range(m)]
        previous_local: List[List[Optional[Transaction]]] = [
            [None] * k for _ in range(m)
        ]
        last_outputs: List[Optional[LocalPhaseOutput]] = [None] * m
        store_fallbacks = 0

        iterations = 0
        converged = False

        while iterations < self.config.max_iterations:
            iterations += 1
            network.begin_round()

            # -- broadcast of global representatives --------------------------- #
            ordered_representatives = [global_representatives[j] for j in range(k)]
            for peer in peers:
                payload = representative_payload(
                    [
                        (cluster_id, global_representatives[cluster_id], 0)
                        for cluster_id in peer.responsibilities
                    ]
                )
                network.broadcast(
                    peer.peer_id, MessageKind.GLOBAL_REPRESENTATIVES, payload
                )

            # -- local phases (conceptually parallel across peers) ------------- #
            inputs = [
                LocalPhaseInput(
                    peer_id=peer.peer_id,
                    transactions=peer.transactions,
                    global_representatives=ordered_representatives,
                    config=phase_config,
                    store_dir=store_dir,
                )
                for peer in peers
            ]
            outputs = network.run_local_phases(
                inputs, run_local_phase, self.executor
            )
            for output in outputs:
                last_outputs[output.peer_id] = output
                store_fallbacks += output.store_fallback

            # -- flags and exchange of local representatives ------------------- #
            flags: List[str] = []
            for output in outputs:
                peer_id = output.peer_id
                changed = any(
                    not representatives_equal(
                        previous_local[peer_id][j], output.local_representatives[j]
                    )
                    for j in range(k)
                )
                previous_local[peer_id] = list(output.local_representatives)
                latest_local[peer_id] = list(output.local_representatives)
                latest_sizes[peer_id] = list(output.cluster_sizes)
                if not changed:
                    flags.append("done")
                    network.broadcast(peer_id, MessageKind.FLAG, {"state": "done"})
                    continue
                flags.append("continue")
                network.broadcast(peer_id, MessageKind.FLAG, {"state": "continue"})
                # send each local representative to the responsible peer
                per_recipient: Dict[int, List[Tuple[int, Transaction, int]]] = {}
                for responsible_peer, cluster_ids in enumerate(responsibilities):
                    if responsible_peer == peer_id:
                        continue
                    entries = [
                        (j, output.local_representatives[j], output.cluster_sizes[j])
                        for j in cluster_ids
                    ]
                    if entries:
                        per_recipient[responsible_peer] = entries
                for recipient, entries in per_recipient.items():
                    network.send(
                        Message(
                            sender=peer_id,
                            recipient=recipient,
                            kind=MessageKind.LOCAL_REPRESENTATIVES,
                            payload=representative_payload(entries),
                        )
                    )

            if all(flag == "done" for flag in flags):
                converged = True
                network.end_round()
                break

            # -- global representative computation (by responsible peers) ------ #
            # Each responsible peer refines the clusters it owns; with a
            # refinement budget > 1 the per-cluster merges are sharded one
            # cluster per worker (the global-phase equivalent of the
            # run_local_phase sharding), merged in cluster-index order.
            for peer in peers:
                if not peer.responsibilities:
                    continue
                with network.measure_compute(peer.peer_id):
                    peer_engine = (
                        self._engine
                        if use_shared_engine
                        else SimilarityEngine(
                            self.config.similarity,
                            backend=self.config.effective_backend,
                        )
                    )
                    shards = []
                    for cluster_id in peer.responsibilities:
                        weighted = [
                            (latest_local[i][cluster_id], latest_sizes[i][cluster_id])
                            for i in range(m)
                            if latest_local[i][cluster_id] is not None
                        ]
                        if not any(weight for _, weight in weighted):
                            # no peer has members for this cluster yet: keep the
                            # current global representative so the cluster can
                            # still attract transactions later
                            continue
                        shards.append(
                            make_refinement_shard(
                                peer_engine,
                                cluster_index=cluster_id,
                                members=[rep for rep, _ in weighted],
                                weights=[weight for _, weight in weighted],
                                representative_id=f"rep:global:{cluster_id}",
                                max_items=self.config.max_representative_items,
                            )
                        )
                    if shards:
                        global_representatives.update(
                            refine_clusters(shards, peer_engine, workers=refine_budget)
                        )
            network.end_round()

        # --- final clustering: merge per-peer assignments --------------------- #
        members: List[List[Transaction]] = [[] for _ in range(k)]
        trash: List[Transaction] = []
        for peer in peers:
            output = last_outputs[peer.peer_id]
            if output is None:
                trash.extend(peer.transactions)
                continue
            by_id = {t.transaction_id: t for t in peer.transactions}
            for transaction_id, cluster_index in output.assignment.items():
                transaction = by_id[transaction_id]
                if cluster_index < 0:
                    trash.append(transaction)
                else:
                    members[cluster_index].append(transaction)

        elapsed = time.perf_counter() - start
        network_summary = network.summary()
        return build_result(
            representatives=[global_representatives[j] for j in range(k)],
            members=members,
            trash_members=trash,
            iterations=iterations,
            converged=converged,
            elapsed_seconds=elapsed,
            simulated_seconds=network_summary["simulated_seconds"],
            network=network_summary,
            metadata={
                "algorithm": "CXK-means",
                "k": k,
                "peers": m,
                "f": self.config.f,
                "gamma": self.config.gamma,
                "transactions": total_transactions,
                "partition_sizes": [len(partition) for partition in partitions],
                "store_fallback": store_fallbacks,
            },
        )
