"""Versioned persistence for fitted clustering models and a warm query path.

A fitted clustering (XK / PK / CXK-means) is worth keeping: the expensive
part of answering "which cluster does this XML document belong to?" is the
fit, not the query.  This module turns a :class:`~repro.core.results.\
ClusteringResult` into an on-disk **model directory** and back into a live
:class:`ClusterModel` that serves classification queries on a warm compiled
similarity engine.

Layout of a model directory (all JSON, UTF-8)::

    model-dir/
        representatives.json   # serialized representative transactions
        vocabulary.json        # term list (id order) + collection stats
        registries.json        # tag-path registry (first-occurrence order)
        model.json             # manifest -- written LAST, marks completeness

Mirroring :mod:`repro.similarity.corpus_store`, the manifest is written
last so a crash mid-save leaves a directory that :func:`load_model`
rejects instead of half-loading.  The manifest records the format version,
the full :class:`~repro.core.config.ClusteringConfig` (backend spec, seed,
``f``/``gamma``, tiling/refinement options), the preprocessing
configuration, fit metadata, and -- when the fitted engine had a compiled
corpus store attached -- the corpus fingerprint and store directory so a
reload can re-attach the mmap-backed arrays with **zero compile work**.

What is *not* persisted: the content-class and uid registries and the
transient similarity caches.  Those are pure value functions of the items
(rebuilt lazily by the backend on first use), so their identifier order
cannot affect scores; persisting the tag-path registry alone is enough to
warm the structural cache on a cold load.

Round-trip guarantee: ``fit -> save_model -> load_model -> assign_all``
is bit-exact against the in-memory result on the python / numpy / tiled /
sharded backends (torch under its documented tolerance policy), pinned by
``tests/test_model_store.py``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import ClusteringConfig
from repro.core.results import ClusteringResult
from repro.similarity.item import SimilarityConfig
from repro.text.preprocess import PreprocessingConfig, TextPreprocessor
from repro.text.vector import SparseVector, merge_vectors
from repro.text.vocabulary import Vocabulary
from repro.text.weighting import CorpusTermStatistics, TtfItfWeighter
from repro.transactions.items import ItemDomain, TreeTupleItem
from repro.transactions.transaction import Transaction, make_transaction
from repro.treetuples.decompose import extract_tree_tuples
from repro.xmlmodel.parser import parse_xml, parse_xml_file
from repro.xmlmodel.paths import XMLPath
from repro.xmlmodel.tree import XMLTree

#: Bump on any change to the directory layout or payload encoding.
MODEL_FORMAT_VERSION = 1

#: The manifest file name; its presence marks a complete save.
MODEL_MANIFEST_NAME = "model.json"

#: Data files written before the manifest, in write order.
MODEL_DATA_FILES = ("representatives.json", "vocabulary.json", "registries.json")


class ModelStoreError(RuntimeError):
    """A model directory could not be written, read or validated."""


# --------------------------------------------------------------------------- #
# Value serialization (JSON, order-preserving)
# --------------------------------------------------------------------------- #
def vector_payload(vector: SparseVector) -> List[List[float]]:
    """Encode *vector* as an ordered ``[[term_id, weight], ...]`` list.

    Insertion order is preserved because dot products accumulate in that
    order on the reference backend; floats survive JSON exactly (repr
    round-trip), which the bit-exactness guarantee relies on.
    """
    return [[int(term), float(weight)] for term, weight in vector.items()]


def vector_from_payload(pairs: Sequence[Sequence[float]]) -> SparseVector:
    """Rebuild a :class:`SparseVector` from :func:`vector_payload` output."""
    return SparseVector({int(term): float(weight) for term, weight in pairs})


def item_payload(item: TreeTupleItem) -> Dict[str, object]:
    """Encode one :class:`TreeTupleItem` (path steps, answer, terms, vector)."""
    return {
        "item_id": item.item_id,
        "path": list(item.path.steps),
        "answer": item.answer,
        "terms": list(item.terms),
        "vector": vector_payload(item.vector),
    }


def item_from_payload(payload: Dict[str, object]) -> TreeTupleItem:
    """Rebuild one :class:`TreeTupleItem` from :func:`item_payload` output."""
    return TreeTupleItem(
        item_id=int(payload["item_id"]),
        path=XMLPath(tuple(payload["path"])),
        answer=str(payload["answer"]),
        terms=tuple(payload["terms"]),
        vector=vector_from_payload(payload["vector"]),
    )


def transaction_payload(transaction: Transaction) -> Dict[str, object]:
    """Encode one :class:`Transaction`, preserving item order."""
    return {
        "transaction_id": transaction.transaction_id,
        "doc_id": transaction.doc_id,
        "tuple_id": transaction.tuple_id,
        "items": [item_payload(item) for item in transaction.items],
    }


def transaction_from_payload(payload: Dict[str, object]) -> Transaction:
    """Rebuild one :class:`Transaction` from :func:`transaction_payload`."""
    return Transaction(
        transaction_id=str(payload["transaction_id"]),
        items=tuple(item_from_payload(item) for item in payload["items"]),
        doc_id=str(payload["doc_id"]),
        tuple_id=str(payload["tuple_id"]),
    )


def _first_occurrence_tag_paths(
    transaction_groups: Sequence[Sequence[Optional[Transaction]]],
) -> List[XMLPath]:
    """Distinct item tag paths in first-occurrence order over the groups."""
    seen: Dict[XMLPath, None] = {}
    for group in transaction_groups:
        for transaction in group:
            if transaction is None:
                continue
            for item in transaction.items:
                seen.setdefault(item.tag_path, None)
    return list(seen)


# --------------------------------------------------------------------------- #
# Save
# --------------------------------------------------------------------------- #
def save_model(
    directory,
    result: ClusteringResult,
    config: ClusteringConfig,
    *,
    dataset=None,
    engine=None,
    preprocessing: Optional[PreprocessingConfig] = None,
    registry=None,
    model_name: Optional[str] = None,
) -> Dict[str, object]:
    """Persist a fitted model under *directory*; return the manifest.

    Parameters
    ----------
    directory:
        Target directory (created if missing; files are overwritten).
    result:
        The fitted :class:`ClusteringResult` whose representatives are
        serialized.
    config:
        The :class:`ClusteringConfig` the fit ran with; reconstructed
        verbatim on load.
    dataset:
        Optional :class:`~repro.transactions.dataset.TransactionDataset`
        the fit consumed.  Supplies the vocabulary + collection term
        statistics (required for content-aware ``classify``) and the
        corpus tag-path registry.
    engine:
        Optional :class:`~repro.similarity.transaction.SimilarityEngine`
        used by the fit.  When its backend has a compiled corpus store
        attached, the store fingerprint + directory are recorded so
        :func:`load_model` re-attaches it with zero compile work.
    preprocessing:
        The :class:`PreprocessingConfig` the corpus was built with
        (defaults to the standard configuration).
    registry:
        Optional :class:`~repro.store.registry.ModelRegistry`.  After a
        successful save the directory is published to it as the next
        version of *model_name*, making the saved model visible to
        ``cxk models`` and routable by the async server in one step.
    model_name:
        Registry name to publish under (defaults to the directory's
        base name).  Ignored without *registry*.

    Raises
    ------
    ModelStoreError
        When the directory cannot be created or any file cannot be
        written/encoded.  Callers with a fallback (CLI, runner) degrade to
        an error status instead of failing the run.
    """
    directory = Path(directory)
    preprocessing = preprocessing if preprocessing is not None else PreprocessingConfig()
    representatives = result.representatives()

    statistics = getattr(dataset, "statistics", None)
    vocabulary_doc: Dict[str, object] = {"terms": [], "total_tcus": 0, "term_tcus": {}}
    if statistics is not None:
        vocabulary_doc = {
            "terms": statistics.vocabulary.terms(),
            "total_tcus": statistics.total_tcus,
            "term_tcus": dict(statistics._term_tcus_collection),
        }

    corpus_transactions = list(getattr(dataset, "transactions", ()) or ())
    tag_paths = _first_occurrence_tag_paths([corpus_transactions, representatives])
    registries_doc = {
        "tag_paths": [list(path.steps) for path in tag_paths],
        "source": "corpus" if corpus_transactions else "representatives",
    }

    # read the private slot instead of the lazy property so saving never
    # forces the construction of a backend the fit did not use
    backend = getattr(engine, "_backend", None) if engine is not None else None
    store = getattr(backend, "attached_store", None)
    corpus_doc = {
        "fingerprint": store.fingerprint if store is not None else None,
        "store_dir": str(store.directory) if store is not None else None,
        "transactions": len(corpus_transactions),
    }

    stopwords = preprocessing.stopwords
    manifest: Dict[str, object] = {
        "format_version": MODEL_FORMAT_VERSION,
        "config": {
            "k": config.k,
            "f": config.similarity.f,
            "gamma": config.similarity.gamma,
            "seed": config.seed,
            "max_iterations": config.max_iterations,
            "max_representative_items": config.max_representative_items,
            "backend": config.backend,
            "batch_block_items": config.batch_block_items,
            "refine_workers": config.refine_workers,
            "corpus_cache_dir": (
                str(config.corpus_cache_dir)
                if config.corpus_cache_dir is not None
                else None
            ),
            "streaming": config.streaming,
            "chunk_size": config.chunk_size,
            "retain_threshold": config.retain_threshold,
            "drift_threshold": config.drift_threshold,
        },
        "preprocessing": {
            "min_token_length": preprocessing.min_token_length,
            "keep_numbers": preprocessing.keep_numbers,
            "remove_stopwords": preprocessing.remove_stopwords,
            "stem": preprocessing.stem,
            "stopwords": sorted(stopwords) if stopwords is not None else None,
        },
        "fit": {
            "iterations": result.iterations,
            "converged": result.converged,
            "metadata": dict(result.metadata),
        },
        "corpus": corpus_doc,
        "counts": {
            "representatives": len(representatives),
            "vocabulary": len(vocabulary_doc["terms"]),
            "tag_paths": len(tag_paths),
        },
        "files": list(MODEL_DATA_FILES),
    }

    documents = {
        "representatives.json": {
            "representatives": [
                transaction_payload(rep) if rep is not None else None
                for rep in representatives
            ]
        },
        "vocabulary.json": vocabulary_doc,
        "registries.json": registries_doc,
    }
    try:
        directory.mkdir(parents=True, exist_ok=True)
        for name in MODEL_DATA_FILES:
            with open(directory / name, "w", encoding="utf-8") as handle:
                json.dump(documents[name], handle)
                handle.write("\n")
        # last write: the manifest's presence marks the directory complete
        with open(directory / MODEL_MANIFEST_NAME, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except (OSError, TypeError, ValueError) as error:
        raise ModelStoreError(
            f"cannot save model to {directory}: {error}"
        ) from error
    if registry is not None:
        # the registry hook rides on a *complete* save: any publish
        # failure surfaces as the same error family callers already
        # degrade on, and never leaves a half-written directory behind
        from repro.store.registry import RegistryError

        try:
            record = registry.publish(model_name or directory.name, directory)
        except RegistryError as error:
            raise ModelStoreError(
                f"model saved to {directory} but registry publish failed: "
                f"{error}"
            ) from error
        manifest["registry"] = {
            "name": record.name,
            "version": record.version,
            "fingerprint": record.fingerprint,
        }
    return manifest


# --------------------------------------------------------------------------- #
# Load
# --------------------------------------------------------------------------- #
def _read_json(directory: Path, name: str) -> Dict[str, object]:
    """Read one JSON document of the model directory or raise."""
    path = directory / name
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError as error:
        raise ModelStoreError(f"model file missing: {path}") from error
    except (OSError, json.JSONDecodeError) as error:
        raise ModelStoreError(f"cannot read model file {path}: {error}") from error


def load_model(directory, *, backend: Optional[str] = None) -> "ClusterModel":
    """Load a model directory into a query-ready :class:`ClusterModel`.

    Validates the manifest (format version, file inventory) before
    touching any data file.  When the manifest records a compiled corpus
    store, the store is re-attached to the fresh engine (``store: hit`` --
    zero compile work); on any store failure or fingerprint mismatch the
    model degrades to a cold load (``store: cold``) that pre-warms the
    structural tag-path cache from the persisted registry instead.

    Parameters
    ----------
    directory:
        A directory previously written by :func:`save_model`.
    backend:
        Optional backend-spec override (e.g. serve a torch-fitted model
        on ``numpy``); defaults to the spec recorded in the manifest.
    """
    directory = Path(directory)
    manifest = _read_json(directory, MODEL_MANIFEST_NAME)

    version = manifest.get("format_version")
    if version != MODEL_FORMAT_VERSION:
        raise ModelStoreError(
            f"unsupported model format version {version!r} "
            f"(expected {MODEL_FORMAT_VERSION}) in {directory}"
        )
    for name in manifest.get("files", list(MODEL_DATA_FILES)):
        if not (directory / str(name)).exists():
            raise ModelStoreError(f"model file missing: {directory / str(name)}")

    raw = manifest.get("config")
    if not isinstance(raw, dict):
        raise ModelStoreError(f"model manifest has no config section: {directory}")
    config = ClusteringConfig(
        k=int(raw["k"]),
        similarity=SimilarityConfig(f=float(raw["f"]), gamma=float(raw["gamma"])),
        max_iterations=int(raw["max_iterations"]),
        seed=int(raw["seed"]),
        max_representative_items=(
            int(raw["max_representative_items"])
            if raw.get("max_representative_items") is not None
            else None
        ),
        backend=str(backend if backend is not None else raw["backend"]),
        batch_block_items=(
            int(raw["batch_block_items"])
            if raw.get("batch_block_items") is not None and backend is None
            else None
        ),
        refine_workers=(
            int(raw["refine_workers"])
            if raw.get("refine_workers") is not None
            else None
        ),
        corpus_cache_dir=raw.get("corpus_cache_dir"),
        # pre-streaming manifests simply fall back to the batch defaults
        streaming=bool(raw.get("streaming", False)),
        chunk_size=(
            int(raw["chunk_size"]) if raw.get("chunk_size") is not None else None
        ),
        retain_threshold=float(raw.get("retain_threshold", 0.25)),
        drift_threshold=float(raw.get("drift_threshold", 0.5)),
    )

    reps_doc = _read_json(directory, "representatives.json")
    try:
        representatives = [
            transaction_from_payload(payload) if payload is not None else None
            for payload in reps_doc["representatives"]
        ]
    except (KeyError, TypeError, ValueError) as error:
        raise ModelStoreError(
            f"corrupt representatives block in {directory}: {error}"
        ) from error

    vocab_doc = _read_json(directory, "vocabulary.json")
    registries_doc = _read_json(directory, "registries.json")
    try:
        vocabulary = Vocabulary(vocab_doc.get("terms", ()))
        total_tcus = int(vocab_doc.get("total_tcus", 0))
        term_tcus = {
            str(term): int(count)
            for term, count in (vocab_doc.get("term_tcus") or {}).items()
        }
        tag_paths = [
            XMLPath(tuple(steps)) for steps in registries_doc.get("tag_paths", ())
        ]
    except (TypeError, ValueError) as error:
        raise ModelStoreError(
            f"corrupt vocabulary/registry block in {directory}: {error}"
        ) from error

    raw_pre = manifest.get("preprocessing") or {}
    stopwords = raw_pre.get("stopwords")
    preprocessing = PreprocessingConfig(
        min_token_length=int(raw_pre.get("min_token_length", 2)),
        keep_numbers=bool(raw_pre.get("keep_numbers", False)),
        remove_stopwords=bool(raw_pre.get("remove_stopwords", True)),
        stem=bool(raw_pre.get("stem", True)),
        stopwords=frozenset(stopwords) if stopwords is not None else None,
    )

    # local import: corpus_store pulls in the numpy-backed store machinery,
    # which model saving/encoding must not depend on
    from repro.similarity.corpus_store import CorpusStoreError, cached_store
    from repro.similarity.transaction import SimilarityEngine

    engine = SimilarityEngine(config.similarity, backend=config.effective_backend)
    corpus_doc = manifest.get("corpus") or {}
    store_status = "off"
    store_dir = corpus_doc.get("store_dir")
    if store_dir is not None:
        store_status = "cold"
        try:
            store = cached_store(store_dir)
            if store.fingerprint == corpus_doc.get("fingerprint") and store.attach(
                engine.backend
            ):
                store_status = "hit"
        except (CorpusStoreError, OSError):
            store_status = "cold"
    if store_status != "hit":
        rep_paths = _first_occurrence_tag_paths([representatives])
        engine.cache.precompute(list(dict.fromkeys(tag_paths + rep_paths)))

    return ClusterModel(
        directory=directory,
        manifest=manifest,
        config=config,
        representatives=representatives,
        engine=engine,
        vocabulary=vocabulary,
        total_tcus=total_tcus,
        term_tcus=term_tcus,
        preprocessor=TextPreprocessor(preprocessing),
        store_status=store_status,
    )


# --------------------------------------------------------------------------- #
# Serving-side term statistics
# --------------------------------------------------------------------------- #
class ServingTermStatistics(CorpusTermStatistics):
    """Per-query term statistics over a persisted collection scope.

    The ttf.itf weight mixes three scopes: tuple and document counts come
    from the *query* document (accumulated per classify call, exactly as
    the corpus builder accumulates them per document), while the
    collection scope (``N_T``, ``n_{j,T}``) is pinned to the fitted
    corpus' persisted statistics.  Terms unknown to the fitted collection
    have ``n_{j,T} == 0`` and therefore weight 0.0 -- they vanish from
    query vectors instead of polluting norms, matching how an unseen term
    could never have entered a fitted representative.
    """

    def __init__(
        self,
        vocabulary: Vocabulary,
        total_tcus: int,
        term_tcus: Dict[str, int],
    ) -> None:
        """Share the model-level *vocabulary*; pin collection counters."""
        super().__init__()
        self.vocabulary = vocabulary
        self._collection_tcus = int(total_tcus)
        self._collection_term_tcus = term_tcus

    def tcus_in_collection(self) -> int:
        """``N_T`` of the *fitted* corpus, not of the query document."""
        return self._collection_tcus

    def term_tcus_in_collection(self, term: str) -> int:
        """``n_{j,T}`` of the fitted corpus; 0 for terms it never saw."""
        return self._collection_term_tcus.get(term, 0)


# --------------------------------------------------------------------------- #
# The query object
# --------------------------------------------------------------------------- #
@dataclass
class ClassifyResult:
    """Outcome of classifying one XML document against a fitted model.

    ``cluster_id`` is the best-matching cluster index or ``-1`` when every
    extracted transaction has zero similarity to every representative (the
    trash convention of the fit loop).  ``assignments`` holds the
    per-transaction ``(transaction_id, cluster_index, score)`` rows the
    document decomposed into; ``score`` is the best row's similarity.
    """

    doc_id: str
    cluster_id: int
    score: float
    transactions: int
    assignments: List[Tuple[str, int, float]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe encoding (used by the serving layer)."""
        return {
            "doc_id": self.doc_id,
            "cluster_id": self.cluster_id,
            "score": self.score,
            "transactions": self.transactions,
            "assignments": [
                {"transaction_id": tid, "cluster_id": cid, "score": score}
                for tid, cid, score in self.assignments
            ],
        }


class ClusterModel:
    """A loaded fitted model serving warm classification queries.

    ``classify`` is parse -> transact -> one warm-engine ``assign_all``
    row block.  Representatives are compiled once through the backend's
    transient cache on first use; on a corpus-store hit the engine's
    compiled registries are the attached mmap arrays, so no corpus
    compile work happens at load or query time
    (``backend.corpus_compile_count`` stays 0).
    """

    def __init__(
        self,
        directory: Path,
        manifest: Dict[str, object],
        config: ClusteringConfig,
        representatives: List[Optional[Transaction]],
        engine,
        vocabulary: Vocabulary,
        total_tcus: int,
        term_tcus: Dict[str, int],
        preprocessor: TextPreprocessor,
        store_status: str,
    ) -> None:
        """Assemble a loaded model; use :func:`load_model` instead."""
        self.directory = Path(directory)
        self.manifest = manifest
        self.config = config
        self.representatives = representatives
        self.engine = engine
        self.store_status = store_status
        self._vocabulary = vocabulary
        self._total_tcus = total_tcus
        self._term_tcus = term_tcus
        self._preprocessor = preprocessor
        self._queries = 0
        self._query_seconds = 0.0
        empty = 0
        assignment_reps: List[Transaction] = []
        for index, rep in enumerate(representatives):
            if rep is None:
                empty += 1
                rep = make_transaction(f"__rep_empty_{index}__", [])
            assignment_reps.append(rep)
        self._assignment_representatives = assignment_reps
        self._empty_representatives = empty

    # ------------------------------------------------------------------ #
    @property
    def assignment_representatives(self) -> List[Transaction]:
        """Representatives with ``None`` slots replaced by empty stand-ins.

        An empty transaction has zero similarity to everything, so an
        empty cluster can never win an assignment -- the same semantics an
        empty local representative has inside the fit loop.
        """
        return self._assignment_representatives

    @property
    def backend_spec(self) -> str:
        """The backend spec the model's engine runs on."""
        return self.engine.backend_name

    # ------------------------------------------------------------------ #
    def transact(self, tree: XMLTree) -> List[Transaction]:
        """Decompose *tree* into weighted transactions (query-side builder).

        Mirrors :class:`~repro.transactions.builder.TransactionBuilder`
        restricted to a single document: tree tuples -> TCUs -> per-query
        term statistics (collection scope pinned to the fitted corpus) ->
        ttf.itf vectors, with items interned in a query-local
        :class:`ItemDomain` (dense ids, vectors averaged over the item's
        occurrences *within this document*).
        """
        tuples = extract_tree_tuples(tree)
        statistics = ServingTermStatistics(
            self._vocabulary, self._total_tcus, self._term_tcus
        )
        tuple_tcus: Dict[str, List[Tuple[XMLPath, str, Tuple[str, ...]]]] = {}
        for tree_tuple in tuples:
            tcus = []
            for path, answer in tree_tuple.as_pairs():
                terms = tuple(self._preprocessor.process(answer))
                statistics.add_tcu(
                    tree_tuple.tuple_id, tree_tuple.source_doc_id, terms
                )
                tcus.append((path, answer, terms))
            tuple_tcus[tree_tuple.tuple_id] = tcus

        weighter = TtfItfWeighter(statistics)
        domain = ItemDomain()
        occurrence_vectors: Dict[int, List[SparseVector]] = {}
        transactions: List[Transaction] = []
        for tree_tuple in tuples:
            items = []
            for path, answer, terms in tuple_tcus[tree_tuple.tuple_id]:
                item = domain.intern(path, answer, terms)
                vector = weighter.vector(
                    terms, tree_tuple.tuple_id, tree_tuple.source_doc_id
                )
                occurrence_vectors.setdefault(item.item_id, []).append(vector)
                items.append(item)
            if not items:
                continue
            transactions.append(
                make_transaction(
                    transaction_id=tree_tuple.tuple_id,
                    items=items,
                    doc_id=tree_tuple.source_doc_id,
                    tuple_id=tree_tuple.tuple_id,
                )
            )
        for item_id, vectors in occurrence_vectors.items():
            averaged = merge_vectors(vectors).scaled(1.0 / len(vectors))
            domain.replace(domain.get(item_id).with_vector(averaged))
        return [
            transaction.with_items(
                [domain.get(item.item_id) for item in transaction.items]
            )
            for transaction in transactions
        ]

    # ------------------------------------------------------------------ #
    def classify_tree(self, tree: XMLTree) -> ClassifyResult:
        """Classify an already-parsed :class:`XMLTree`."""
        start = time.perf_counter()
        transactions = self.transact(tree)
        doc_id = tree.doc_id or "doc"
        if not transactions:
            self._queries += 1
            self._query_seconds += time.perf_counter() - start
            return ClassifyResult(
                doc_id=doc_id, cluster_id=-1, score=0.0, transactions=0
            )
        rows = self.engine.assign_all(
            transactions, self._assignment_representatives
        )
        assignments: List[Tuple[str, int, float]] = []
        best_cluster, best_score = -1, 0.0
        for transaction, (index, score) in zip(transactions, rows):
            cluster = index if score > 0.0 else -1
            assignments.append(
                (transaction.transaction_id, cluster, float(score))
            )
            if score > best_score:
                best_cluster, best_score = cluster, float(score)
        self._queries += 1
        self._query_seconds += time.perf_counter() - start
        return ClassifyResult(
            doc_id=doc_id,
            cluster_id=best_cluster,
            score=best_score,
            transactions=len(transactions),
            assignments=assignments,
        )

    def classify(self, xml_text: str, doc_id: Optional[str] = None) -> ClassifyResult:
        """Classify an XML document given as text: parse -> transact -> assign."""
        return self.classify_tree(parse_xml(xml_text, doc_id=doc_id))

    def classify_file(self, path, doc_id: Optional[str] = None) -> ClassifyResult:
        """Classify the XML document stored at *path*."""
        return self.classify_tree(parse_xml_file(str(path), doc_id=doc_id))

    def assign_all(self, transactions: Sequence[Transaction]):
        """Assign prepared *transactions* against the model's representatives.

        This is the round-trip parity surface: on a reloaded model it must
        reproduce the fit-time assignment bit-exactly.
        """
        return self.engine.assign_all(
            transactions, self._assignment_representatives
        )

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Serving counters: store status, query count/time, compile count."""
        return {
            "store": self.store_status,
            "backend": self.engine.backend_name,
            "queries": self._queries,
            "query_seconds": self._query_seconds,
            "corpus_compile_count": getattr(
                self.engine.backend, "corpus_compile_count", 0
            ),
            "representatives": len(self.representatives),
            "empty_representatives": self._empty_representatives,
            "vocabulary": len(self._vocabulary),
        }

    def close(self) -> None:
        """Release backend resources (worker pools of sharded engines)."""
        close = getattr(self.engine.backend, "close", None)
        if close is not None:
            close()
