"""Streaming out-of-core ingestion: incremental XK-means over chunked corpora.

The batch algorithms are one-shot: the whole corpus is parsed, compiled and
fitted in a single pass, so a new document means recompiling from scratch
and corpora must fit in memory.  :class:`StreamingClusterer` is the
incremental fit mode built on the block-structured corpus store
(:class:`~repro.similarity.corpus_store.BlockCorpusStore`) and delta
compilation (:meth:`~repro.similarity.backend.NumpyBackend.extend_corpus`):

* **Bootstrap.**  Incoming transactions buffer until at least ``k`` have
  arrived, then one ordinary :class:`~repro.core.xkmeans.XKMeans` fit over
  the buffered prefix seeds the representatives.  A stream ingested as a
  single chunk (``chunk_size=None``) never leaves this stage, so its
  result is *bit-exact* with the batch fit of the same corpus.
* **Assign-or-retain.**  Every later chunk is delta-compiled and assigned
  against the current representatives on the warm engine (BFR-style:
  commit points that match well, park the rest).  Transactions whose best
  similarity is positive but below ``retain_threshold`` -- and
  zero-similarity trash candidates -- land in a bounded *retained set*
  instead of being committed; when the set overflows, the oldest entry is
  flushed to its best cluster (or trash).
* **Drift-triggered re-refinement.**  Drift is the retained-set fill
  fraction; when it reaches ``drift_threshold`` the clusterer re-refines
  the representatives from a bounded per-cluster member sample (reusing
  :func:`~repro.network.mpengine.refine_clusters`, so the work dispatches
  across refinement workers exactly like a batch iteration), re-assigns
  the retained set against the new representatives and records the
  assignment-churn rate.  Between drift events a chunk costs one delta
  compile plus one bulk assignment -- never a full re-fit.
* **Out of core.**  With a backing block store, each chunk is appended as
  an immutable block and cluster membership is tracked as global row ids;
  older blocks stay mmap-resident on disk (re-refinement shards ship
  ``store_dir`` + row ids and workers attach the chain), so process
  memory holds only the representatives, the id-level bookkeeping and the
  active tail of the stream.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import ClusteringConfig
from repro.core.results import ClusteringResult, build_result
from repro.core.xkmeans import XKMeans
from repro.network.mpengine import (
    RefinementShard,
    inprocess_backend_name,
    refine_clusters,
)
from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.corpus_store import BlockCorpusStore
from repro.similarity.transaction import SimilarityEngine
from repro.transactions.transaction import Transaction


@dataclass
class StreamingStats:
    """Counters a streaming ingestion accumulates (reported per run).

    ``chunks_ingested`` counts post-bootstrap ingest calls (the bootstrap
    fit is an ordinary batch fit, not a streamed chunk), ``retained`` is
    the *current* retained-set size, ``re_refinements`` counts
    drift-triggered refinement rounds, and ``churn`` is the fraction of
    retained transactions whose cluster changed across the most recent
    re-refinement (the assignment-churn rate of the drift policy).
    """

    transactions_ingested: int = 0
    chunks_ingested: int = 0
    retained: int = 0
    retained_peak: int = 0
    re_refinements: int = 0
    churn: float = 0.0
    flushed_to_trash: int = 0
    blocks_appended: int = 0

    def as_dict(self) -> Dict[str, object]:
        """The counters as a plain dict (run records, checkpoint banners)."""
        return {
            "transactions_ingested": self.transactions_ingested,
            "chunks_ingested": self.chunks_ingested,
            "retained": self.retained,
            "retained_peak": self.retained_peak,
            "re_refinements": self.re_refinements,
            "churn": self.churn,
            "flushed_to_trash": self.flushed_to_trash,
            "blocks_appended": self.blocks_appended,
        }


@dataclass
class _Retained:
    """One parked transaction: the object, its best match so far, its row."""

    transaction: Transaction
    best_index: int
    best_similarity: float
    row: Optional[int] = None


@dataclass
class _ClusterState:
    """Bookkeeping for one cluster: member ids, and rows in store mode."""

    ids: List[str] = field(default_factory=list)
    rows: List[int] = field(default_factory=list)
    members: List[Transaction] = field(default_factory=list)


class StreamingClusterer:
    """Incremental XK-means over a chunked stream of XML transactions.

    Parameters
    ----------
    config:
        The clustering configuration; ``k``, similarity, backend and the
        streaming knobs (``chunk_size``, ``retain_threshold``,
        ``drift_threshold``) all apply.  ``config.streaming`` itself is
        advisory -- constructing the clusterer is the opt-in.
    engine:
        Optional pre-built engine (shared tag-path cache); built from the
        configuration otherwise, exactly like :class:`XKMeans`.
    store:
        Optional :class:`BlockCorpusStore` chain.  When given, every
        ingested chunk (bootstrap included) is appended as an immutable
        block, membership is tracked as global row ids and re-refinement
        shards address the chain by ``store_dir`` + rows -- the
        out-of-core mode.  Without a store, members are kept in memory
        and shards inline them (the small-corpus mode the property tests
        exercise).
    keep_members:
        Whether :meth:`finalize` materialises member transactions in the
        result.  Defaults to the in-memory behaviour (True without a
        store); pass False to get light results (representatives +
        counts) whose memory does not grow with the stream.
    """

    def __init__(
        self,
        config: ClusteringConfig,
        engine: Optional[SimilarityEngine] = None,
        store: Optional[BlockCorpusStore] = None,
        keep_members: Optional[bool] = None,
    ) -> None:
        self.config = config
        self.engine = engine or SimilarityEngine(
            config.similarity,
            cache=TagPathSimilarityCache(),
            backend=config.effective_backend,
        )
        self.store = store
        self.keep_members = keep_members if keep_members is not None else store is None
        self.stats = StreamingStats()
        self._started = time.perf_counter()
        self._pending: List[Transaction] = []
        self._bootstrap_result: Optional[ClusteringResult] = None
        self._post_bootstrap_activity = False
        self._representatives: List[Transaction] = []
        self._clusters: List[_ClusterState] = []
        self._trash = _ClusterState()
        self._retained: "OrderedDict[str, _Retained]" = OrderedDict()
        self._next_row = 0

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def bootstrapped(self) -> bool:
        """Whether the bootstrap fit has run (representatives exist)."""
        return self._bootstrap_result is not None

    @property
    def representatives(self) -> List[Transaction]:
        """The current cluster representatives (empty before bootstrap)."""
        return list(self._representatives)

    @property
    def retain_capacity(self) -> int:
        """The retained-set bound (see ``effective_retain_capacity``)."""
        return self.config.effective_retain_capacity

    @property
    def drift(self) -> float:
        """Current drift: retained-set size as a fraction of its capacity."""
        return len(self._retained) / self.retain_capacity

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def ingest(self, transactions: Sequence[Transaction]) -> int:
        """Ingest one chunk of transactions; returns the count ingested.

        Before bootstrap, chunks accumulate until at least ``k``
        transactions are buffered, then the buffered prefix is fitted with
        the ordinary batch :class:`XKMeans` (on this clusterer's warm
        engine).  After bootstrap, the chunk is delta-compiled
        (``extend_corpus``; appended as a store block first in out-of-core
        mode), bulk-assigned against the current representatives, and each
        transaction is committed or retained per the retain policy; a
        drift crossing triggers one bounded re-refinement.
        """
        chunk = list(transactions)
        if not chunk:
            return 0
        if self._bootstrap_result is None:
            self._pending.extend(chunk)
            if len(self._pending) >= self.config.k:
                self._bootstrap()
            return len(chunk)

        self._post_bootstrap_activity = True
        self.stats.chunks_ingested += 1
        self.stats.transactions_ingested += len(chunk)
        rows = self._register_chunk(chunk)
        self.engine.backend.extend_corpus(chunk)
        assignments = self.engine.assign_all(chunk, self._representatives)
        for transaction, row, (best_index, best_similarity) in zip(
            chunk, rows, assignments
        ):
            if best_similarity > 0.0 and best_similarity >= self.config.retain_threshold:
                self._commit(transaction, best_index, row)
            else:
                self._retain(transaction, best_index, best_similarity, row)
        self.stats.retained = len(self._retained)
        self.stats.retained_peak = max(self.stats.retained_peak, self.stats.retained)
        if self.drift >= self.config.drift_threshold:
            self._re_refine()
        return len(chunk)

    def _bootstrap(self) -> None:
        """Fit the buffered prefix with batch XK-means and adopt its state."""
        pending, self._pending = self._pending, []
        rows = self._register_chunk(pending)
        row_of = dict(zip((t.transaction_id for t in pending), rows))
        result = XKMeans(self.config, engine=self.engine).fit(pending)
        self._bootstrap_result = result
        self.stats.transactions_ingested += len(pending)
        self._representatives = [cluster.representative for cluster in result.clusters]
        self._clusters = [_ClusterState() for _ in result.clusters]
        for index, cluster in enumerate(result.clusters):
            state = self._clusters[index]
            for member in cluster.members:
                state.ids.append(member.transaction_id)
                state.rows.append(row_of[member.transaction_id])
                if self.keep_members:
                    state.members.append(member)
        for member in result.trash.members:
            self._trash.ids.append(member.transaction_id)
            self._trash.rows.append(row_of[member.transaction_id])
            if self.keep_members:
                self._trash.members.append(member)

    def _register_chunk(self, chunk: List[Transaction]) -> List[int]:
        """Append *chunk* to the block chain (if any) and assign row ids."""
        rows = list(range(self._next_row, self._next_row + len(chunk)))
        self._next_row += len(chunk)
        if self.store is not None:
            self.store.append_block(chunk, self.engine.cache)
            self.stats.blocks_appended += 1
        return rows

    def _commit(self, transaction: Transaction, index: int, row: Optional[int]) -> None:
        state = self._clusters[index] if index >= 0 else self._trash
        state.ids.append(transaction.transaction_id)
        if row is not None:
            state.rows.append(row)
        if self.keep_members:
            state.members.append(transaction)
        if index < 0:
            self.stats.flushed_to_trash += 1

    def _retain(
        self,
        transaction: Transaction,
        best_index: int,
        best_similarity: float,
        row: Optional[int],
    ) -> None:
        """Park a poorly-matched transaction, evicting the oldest on overflow."""
        self._retained[transaction.transaction_id] = _Retained(
            transaction, best_index, best_similarity, row
        )
        while len(self._retained) > self.retain_capacity:
            _, oldest = self._retained.popitem(last=False)
            self._commit(
                oldest.transaction,
                oldest.best_index if oldest.best_similarity > 0.0 else -1,
                oldest.row,
            )

    # ------------------------------------------------------------------ #
    # Drift-triggered re-refinement
    # ------------------------------------------------------------------ #
    def _refine_sample(self, state: _ClusterState) -> Tuple[List[int], List[str]]:
        """The bounded member sample one re-refinement may touch.

        The most recent members are kept (the stream's active tail -- the
        population whose drift triggered the round); the bound makes a
        re-refinement cost proportional to the retain capacity, never the
        accumulated corpus.
        """
        cap = max(64, 4 * self.retain_capacity)
        return state.rows[-cap:], state.ids[-cap:]

    def _re_refine(self) -> None:
        """Re-refine representatives from bounded samples, flush retained."""
        shards: List[RefinementShard] = []
        backend_name = inprocess_backend_name(self.engine)
        workers = self.config.effective_refine_workers
        for index, state in enumerate(self._clusters):
            if not state.ids:
                continue
            rows, ids = self._refine_sample(state)
            members: Optional[List[Transaction]] = None
            member_rows: Optional[List[int]] = None
            store_dir: Optional[str] = None
            if self.store is not None and workers > 1:
                # dispatched shards address the chain by rows; the worker
                # process materialises them, not the driver
                member_rows = rows
                store_dir = str(self.store.directory)
            elif self.store is not None:
                # in-process refinement resolves the bounded sample block
                # by block (transient loads) -- never the cached full
                # corpus, so the driver's memory stays flat
                members = self.store.resolve_rows(rows)
            else:
                cap = max(64, 4 * self.retain_capacity)
                members = state.members[-cap:]
            shards.append(
                RefinementShard(
                    cluster_index=index,
                    members=members,
                    similarity=self.config.similarity,
                    backend=backend_name,
                    representative_id=f"rep:{index}",
                    max_items=self.config.max_representative_items,
                    store_dir=store_dir,
                    member_rows=member_rows,
                )
            )
        refined = refine_clusters(
            shards, self.engine, workers=self.config.effective_refine_workers
        )
        self._representatives = [
            refined.get(index, representative)
            for index, representative in enumerate(self._representatives)
        ]
        self.stats.re_refinements += 1
        self._flush_retained(measure_churn=True)

    def _flush_retained(self, measure_churn: bool = False) -> None:
        """Assign every retained transaction against the current reps."""
        if not self._retained:
            if measure_churn:
                self.stats.churn = 0.0
            return
        parked = list(self._retained.values())
        self._retained.clear()
        assignments = self.engine.assign_all(
            [entry.transaction for entry in parked], self._representatives
        )
        moved = 0
        for entry, (best_index, best_similarity) in zip(parked, assignments):
            index = best_index if best_similarity > 0.0 else -1
            if index != (entry.best_index if entry.best_similarity > 0.0 else -1):
                moved += 1
            self._commit(entry.transaction, index, entry.row)
        if measure_churn:
            self.stats.churn = moved / len(parked)
        self.stats.retained = 0

    # ------------------------------------------------------------------ #
    # Finalisation
    # ------------------------------------------------------------------ #
    def partition(self, include_trash: bool = True) -> List[List[str]]:
        """Cluster membership as transaction-id lists (bounded accessor).

        Ids are tracked incrementally, so this never touches the store --
        the out-of-core mode's way of inspecting membership without
        materialising transactions.
        """
        parts = [list(state.ids) for state in self._clusters]
        if include_trash:
            parts.append(list(self._trash.ids))
        return parts

    def checkpoint_result(self) -> ClusteringResult:
        """A light snapshot of the current state for periodic persistence.

        Carries the current representatives and the streaming counters but
        no member transactions, and -- unlike :meth:`finalize` -- does NOT
        flush the retained set, so checkpointing mid-stream never perturbs
        the eventual clustering.  Suitable for
        :func:`repro.core.model_store.save_model` (which persists
        representatives, never members).
        """
        if self._bootstrap_result is None:
            raise RuntimeError(
                f"cannot checkpoint before bootstrap: streamed "
                f"{len(self._pending)} transactions, need at least "
                f"{self.config.k}"
            )
        return build_result(
            representatives=self._representatives,
            members=[[] for _ in self._clusters],
            trash_members=[],
            iterations=self._bootstrap_result.iterations,
            converged=False,
            elapsed_seconds=time.perf_counter() - self._started,
            metadata={
                "algorithm": "Streaming-XK-means",
                "k": self.config.k,
                "checkpoint": True,
                "transactions": self.stats.transactions_ingested,
                "cluster_sizes": [len(state.ids) for state in self._clusters],
                "trash_size": len(self._trash.ids),
                "streaming": self.stats.as_dict(),
            },
        )

    def finalize(self) -> ClusteringResult:
        """Flush the retained set and build the final clustering result.

        A stream with no post-bootstrap activity returns the bootstrap
        fit's result object *unchanged* -- the bit-exactness anchor: with
        ``chunk_size=None`` (or one big chunk) streaming **is** the batch
        fit.  Otherwise retained transactions are flushed against the
        current representatives and a fresh result is assembled; in
        out-of-core mode (``keep_members=False``) the member lists stay
        empty and the metadata carries the per-cluster counts instead.
        """
        if self._bootstrap_result is None:
            raise RuntimeError(
                f"cannot finalize before bootstrap: streamed "
                f"{len(self._pending)} transactions, need at least "
                f"{self.config.k}"
            )
        if not self._post_bootstrap_activity and not self._retained:
            return self._bootstrap_result
        self._flush_retained()
        members: List[List[Transaction]]
        trash_members: List[Transaction]
        if self.keep_members:
            members = [state.members for state in self._clusters]
            trash_members = self._trash.members
        else:
            members = [[] for _ in self._clusters]
            trash_members = []
        metadata: Dict[str, object] = {
            "algorithm": "Streaming-XK-means",
            "k": self.config.k,
            "f": self.config.f,
            "gamma": self.config.gamma,
            "transactions": self.stats.transactions_ingested,
            "cluster_sizes": [len(state.ids) for state in self._clusters],
            "trash_size": len(self._trash.ids),
            "streaming": self.stats.as_dict(),
        }
        return build_result(
            representatives=self._representatives,
            members=members,
            trash_members=trash_members,
            iterations=self._bootstrap_result.iterations,
            converged=self._bootstrap_result.converged,
            elapsed_seconds=time.perf_counter() - self._started,
            metadata=metadata,
        )


def stream_chunks(
    transactions: Sequence[Transaction], chunk_size: Optional[int]
) -> List[List[Transaction]]:
    """Split *transactions* into ingestion chunks (``None`` = one chunk)."""
    transactions = list(transactions)
    if chunk_size is None or chunk_size >= len(transactions):
        return [transactions] if transactions else []
    return [
        transactions[start : start + chunk_size]
        for start in range(0, len(transactions), chunk_size)
    ]


def stream_corpus(
    clusterer: StreamingClusterer, transactions: Sequence[Transaction]
) -> ClusteringResult:
    """Replay a whole corpus through *clusterer* in configured chunks.

    The batch-replay entry point the parity gates use: the corpus is
    chunked by ``config.chunk_size`` and ingested in order, then
    finalized.  With ``chunk_size=None`` the result is bit-exact with
    ``XKMeans(config).fit(transactions)``.
    """
    for chunk in stream_chunks(transactions, clusterer.config.chunk_size):
        clusterer.ingest(chunk)
    return clusterer.finalize()
