"""Centralized XK-means transactional clustering (paper Sec. 4.2, refs [33,32]).

XK-means is the centroid-based partitional algorithm CXK-means builds on: it
computes ``k + 1`` clusters over XML transactions, where the ``(k+1)``-th
*trash* cluster collects the transactions whose similarity to every cluster
representative is zero.  Its single-node execution is the ``m = 1`` baseline
of every efficiency and effectiveness experiment in the paper.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence

from repro.core.config import ClusteringConfig
from repro.core.representatives import representatives_equal
from repro.core.results import ClusteringResult, build_result
from repro.core.seeding import select_seed_transactions
from repro.network.mpengine import (
    make_refinement_shard,
    refine_clusters,
)
from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.transaction import SimilarityEngine
from repro.transactions.transaction import Transaction


class XKMeans:
    """Centralized centroid-based clustering of XML transactions.

    Parameters
    ----------
    config:
        The clustering configuration (``k``, similarity parameters, bounds).
    engine:
        Optional pre-built :class:`SimilarityEngine`; constructing the engine
        externally allows the tag-path similarity cache to be shared across
        runs (e.g. across the nodes of a simulated network).
    """

    def __init__(
        self,
        config: ClusteringConfig,
        engine: Optional[SimilarityEngine] = None,
    ) -> None:
        if config.network == "real":
            raise ValueError(
                "the real transport (ClusteringConfig.network='real') is "
                "implemented for CXK-means only; the centralized XK-means "
                "has no network at all"
            )
        self.config = config
        self.engine = engine or SimilarityEngine(
            config.similarity,
            cache=TagPathSimilarityCache(),
            backend=config.effective_backend,
        )

    # ------------------------------------------------------------------ #
    # Assignment step
    # ------------------------------------------------------------------ #
    def assign(
        self,
        transactions: Sequence[Transaction],
        representatives: Sequence[Transaction],
    ) -> Dict[str, int]:
        """Assign each transaction to its most similar representative.

        The whole step runs through the engine's bulk ``assign_all`` entry
        point (one batched call instead of a per-transaction loop), letting
        vectorized backends amortise compilation across the corpus.
        Returns a mapping transaction_id -> cluster index, with ``-1`` for
        the trash cluster (zero similarity to every representative).
        """
        assignment: Dict[str, int] = {}
        results = self.engine.assign_all(transactions, representatives)
        for transaction, (best_index, best_similarity) in zip(transactions, results):
            if best_similarity <= 0.0:
                assignment[transaction.transaction_id] = -1
            else:
                assignment[transaction.transaction_id] = best_index
        return assignment

    def _clusters_from_assignment(
        self,
        transactions: Sequence[Transaction],
        assignment: Dict[str, int],
        k: int,
    ) -> (List[List[Transaction]], List[Transaction]):
        clusters: List[List[Transaction]] = [[] for _ in range(k)]
        trash: List[Transaction] = []
        for transaction in transactions:
            index = assignment[transaction.transaction_id]
            if index < 0:
                trash.append(transaction)
            else:
                clusters[index].append(transaction)
        return clusters, trash

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def fit(self, transactions: Sequence[Transaction]) -> ClusteringResult:
        """Cluster *transactions* into ``k`` clusters plus the trash cluster."""
        transactions = list(transactions)
        if len(transactions) < self.config.k:
            raise ValueError(
                f"cannot form {self.config.k} clusters from "
                f"{len(transactions)} transactions"
            )
        start = time.perf_counter()
        rng = random.Random(self.config.seed)
        k = self.config.k
        # one-off corpus compilation (no-op for the reference backend)
        self.engine.backend.compile_corpus(transactions)

        representatives: List[Transaction] = list(
            select_seed_transactions(transactions, k, rng)
        )
        assignment: Dict[str, int] = {}
        iterations = 0
        converged = False

        while iterations < self.config.max_iterations:
            iterations += 1
            new_assignment = self.assign(transactions, representatives)
            clusters, _ = self._clusters_from_assignment(
                transactions, new_assignment, k
            )
            # refinement: one shard per non-empty cluster, dispatched across
            # refinement workers when the configuration grants them (the
            # same cluster-sharded path used by the distributed algorithms)
            shards = [
                make_refinement_shard(
                    self.engine,
                    cluster_index=index,
                    members=members,
                    representative_id=f"rep:{index}",
                    max_items=self.config.max_representative_items,
                )
                for index, members in enumerate(clusters)
                if members
            ]
            refined = refine_clusters(
                shards, self.engine, workers=self.config.effective_refine_workers
            )
            # empty clusters keep the previous representative so they may
            # re-acquire transactions in later iterations
            new_representatives = [
                refined.get(index, representatives[index]) for index in range(k)
            ]

            stable_assignment = new_assignment == assignment
            stable_representatives = all(
                representatives_equal(old, new)
                for old, new in zip(representatives, new_representatives)
            )
            assignment = new_assignment
            representatives = new_representatives
            if stable_assignment or stable_representatives:
                converged = True
                break

        clusters, trash = self._clusters_from_assignment(transactions, assignment, k)
        elapsed = time.perf_counter() - start
        return build_result(
            representatives=representatives,
            members=clusters,
            trash_members=trash,
            iterations=iterations,
            converged=converged,
            elapsed_seconds=elapsed,
            metadata={
                "algorithm": "XK-means",
                "k": k,
                "f": self.config.f,
                "gamma": self.config.gamma,
                "transactions": len(transactions),
            },
        )
