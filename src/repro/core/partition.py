"""Partitioning of the transaction set over the peers of the network.

The paper's experiments use two partitioning scenarios (Sec. 5.1):

* **equal** -- the set ``S`` is equally distributed over the ``m`` nodes,
  i.e. ``|S_i| = |S| / m`` for every node;
* **unequal** -- half of the nodes hold twice as much data as the other half
  (``4|S|/3m`` transactions for the first ``m/2`` nodes and ``2|S|/3m`` for
  the remaining ones).

Both partitioners shuffle the transactions with a seeded RNG so the
assignment of transactions to peers is random but reproducible.
"""

from __future__ import annotations

import random
from enum import Enum
from typing import List, Sequence

from repro.transactions.transaction import Transaction


class PartitioningScheme(Enum):
    """The two data-distribution scenarios evaluated by the paper."""

    EQUAL = "equal"
    UNEQUAL = "unequal"


def _shuffled(transactions: Sequence[Transaction], seed: int) -> List[Transaction]:
    shuffled = list(transactions)
    random.Random(seed).shuffle(shuffled)
    return shuffled


def partition_equally(
    transactions: Sequence[Transaction], nodes: int, seed: int = 0
) -> List[List[Transaction]]:
    """Split *transactions* into *nodes* chunks of (almost) equal size.

    Sizes differ by at most one transaction; every chunk is non-empty as long
    as ``len(transactions) >= nodes``.
    """
    if nodes < 1:
        raise ValueError(f"nodes must be positive, got {nodes}")
    shuffled = _shuffled(transactions, seed)
    chunks: List[List[Transaction]] = [[] for _ in range(nodes)]
    for index, transaction in enumerate(shuffled):
        chunks[index % nodes].append(transaction)
    return chunks


def partition_unequally(
    transactions: Sequence[Transaction], nodes: int, seed: int = 0
) -> List[List[Transaction]]:
    """Split *transactions* following the paper's unequal scenario.

    The first ``ceil(nodes/2)`` peers each receive a share proportional to
    ``4/(3m)`` of the data and the remaining peers a share proportional to
    ``2/(3m)`` -- i.e. the "heavy" peers store twice as many transactions as
    the "light" ones.  With ``nodes == 1`` the single peer receives all data.
    """
    if nodes < 1:
        raise ValueError(f"nodes must be positive, got {nodes}")
    shuffled = _shuffled(transactions, seed)
    if nodes == 1:
        return [shuffled]

    heavy_nodes = (nodes + 1) // 2
    light_nodes = nodes - heavy_nodes
    # weight 2 for heavy peers, weight 1 for light peers
    total_weight = 2 * heavy_nodes + light_nodes
    total = len(shuffled)

    sizes: List[int] = []
    for index in range(nodes):
        weight = 2 if index < heavy_nodes else 1
        sizes.append((total * weight) // total_weight)
    # distribute the remainder one transaction at a time, heavy peers first
    remainder = total - sum(sizes)
    index = 0
    while remainder > 0:
        sizes[index % nodes] += 1
        remainder -= 1
        index += 1

    chunks: List[List[Transaction]] = []
    cursor = 0
    for size in sizes:
        chunks.append(shuffled[cursor:cursor + size])
        cursor += size
    return chunks


def partition(
    transactions: Sequence[Transaction],
    nodes: int,
    scheme: PartitioningScheme = PartitioningScheme.EQUAL,
    seed: int = 0,
) -> List[List[Transaction]]:
    """Partition *transactions* over *nodes* peers following *scheme*."""
    if scheme is PartitioningScheme.EQUAL:
        return partition_equally(transactions, nodes, seed=seed)
    if scheme is PartitioningScheme.UNEQUAL:
        return partition_unequally(transactions, nodes, seed=seed)
    raise ValueError(f"unknown partitioning scheme: {scheme}")
