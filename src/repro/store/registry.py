"""The durable model registry: a versioned catalog of saved models.

A **registry** maps model *names* to monotonically increasing *versions*,
each version pointing at one model directory written by
:func:`repro.core.model_store.save_model` and carrying:

- the directory's content **fingerprint** (SHA-256 over the manifest and
  every data file -- the identity the serving layer's hot-reload swap
  checks),
- the fitted :class:`~repro.core.config.ClusteringConfig` and fit
  metadata copied out of the manifest (so ``cxk models show`` answers
  without touching the model directory),
- the compiled-corpus store linkage (fingerprint + directory) when the
  fit ran store-backed, cataloged into a second table so operators can
  see which corpus stores are still referenced,
- optional **bench lineage**: the ``repro-bench/1`` records measured for
  this version (``cxk models publish --bench report.json``).

The :class:`ModelRegistry` protocol is deliberately small -- ``publish``
/ ``active`` / ``list_models`` / ``show`` / ``retire`` -- so the sqlite
backend here can later be joined by a PostgreSQL one (the
store/preprocessor/clusterizator split of the related-work pipeline)
without the serving layer changing.  :class:`SqliteModelRegistry` opens
one short-lived connection per operation, which makes a single registry
file safe to share between the CLI, a polling server and worker
processes (sqlite serialises writers; readers never block readers).

Lifecycle invariants:

- versions are append-only -- publishing never mutates or deletes an
  existing row, so an in-flight request holding version N is never
  invalidated by the publish of N+1 (the zero-drop hot-reload guarantee
  builds on this);
- a re-publish of the *same* content (identical fingerprint) is
  idempotent and returns the existing active version instead of minting
  a new one;
- ``retire`` flips a status flag, it never deletes -- ``list_models
  --all`` still shows retired versions, and ``active`` simply skips
  them.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Protocol, runtime_checkable

from repro.core.model_store import (
    MODEL_DATA_FILES,
    MODEL_FORMAT_VERSION,
    MODEL_MANIFEST_NAME,
)

#: Bump on any change to the registry's sqlite table layout.
REGISTRY_SCHEMA_VERSION = 1

#: Model lifecycle states stored in the ``status`` column.
STATUS_PUBLISHED = "published"
STATUS_RETIRED = "retired"


class RegistryError(RuntimeError):
    """A registry operation failed (unknown model, invalid directory, IO)."""


def model_fingerprint(directory) -> str:
    """Content fingerprint of a saved model directory (hex SHA-256).

    Hashes the manifest plus every data file it inventories, in manifest
    order, each prefixed by its name -- so any change to the
    representatives, vocabulary, registries or configuration lands in a
    different fingerprint, while re-saving identical content reproduces
    the same one.  This is the identity the serving layer compares when
    deciding whether a published version actually changed.
    """
    directory = Path(directory)
    manifest_path = directory / MODEL_MANIFEST_NAME
    digest = hashlib.sha256()
    try:
        names = [MODEL_MANIFEST_NAME]
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        names += [str(name) for name in manifest.get("files", MODEL_DATA_FILES)]
        for name in names:
            digest.update(name.encode("utf-8") + b"\x00")
            digest.update((directory / name).read_bytes())
            digest.update(b"\x00")
    except (OSError, ValueError) as error:
        raise RegistryError(
            f"cannot fingerprint model directory {directory}: {error}"
        ) from error
    return digest.hexdigest()


def _read_manifest(directory: Path) -> Dict[str, object]:
    """Read and validate the manifest of a completed model directory."""
    try:
        with open(directory / MODEL_MANIFEST_NAME, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, ValueError) as error:
        raise RegistryError(
            f"not a saved model directory (no readable manifest): "
            f"{directory}: {error}"
        ) from error
    version = manifest.get("format_version")
    if version != MODEL_FORMAT_VERSION:
        raise RegistryError(
            f"unsupported model format version {version!r} in {directory} "
            f"(expected {MODEL_FORMAT_VERSION})"
        )
    for name in manifest.get("files", list(MODEL_DATA_FILES)):
        if not (directory / str(name)).exists():
            raise RegistryError(f"model file missing: {directory / str(name)}")
    return manifest


@dataclass(frozen=True)
class ModelRecord:
    """One published version of one model name, as cataloged.

    The record is a *pointer plus provenance*: the serving layer resolves
    ``directory`` and compares ``fingerprint``; operators read ``config``,
    ``fit`` and ``bench`` without opening the model directory.
    """

    name: str
    version: int
    directory: str
    fingerprint: str
    status: str
    created_at: str
    config: Dict[str, object] = field(default_factory=dict)
    fit: Dict[str, object] = field(default_factory=dict)
    corpus_fingerprint: Optional[str] = None
    corpus_store_dir: Optional[str] = None
    bench: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe encoding (used by ``cxk models`` and ``/models``)."""
        return {
            "name": self.name,
            "version": self.version,
            "directory": self.directory,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "created_at": self.created_at,
            "config": self.config,
            "fit": self.fit,
            "corpus_fingerprint": self.corpus_fingerprint,
            "corpus_store_dir": self.corpus_store_dir,
            "bench": self.bench,
        }


@runtime_checkable
class ModelRegistry(Protocol):
    """The protocol every registry backend implements.

    Kept intentionally small so alternative durable backends (PostgreSQL,
    a cloud object catalog) can slot in behind the same serving and CLI
    surfaces; :class:`SqliteModelRegistry` is the first implementation.
    """

    def publish(
        self,
        name: str,
        directory,
        *,
        bench: Optional[Dict[str, object]] = None,
    ) -> ModelRecord:
        """Catalog *directory* as the next version of *name*."""
        ...

    def active(self, name: str) -> Optional[ModelRecord]:
        """The highest published (non-retired) version of *name*, if any."""
        ...

    def active_models(self) -> List[ModelRecord]:
        """One active record per non-retired name (the routing table)."""
        ...

    def list_models(
        self, name: Optional[str] = None, *, include_retired: bool = False
    ) -> List[ModelRecord]:
        """All cataloged versions, optionally filtered to one name."""
        ...

    def show(self, name: str, version: Optional[int] = None) -> ModelRecord:
        """One specific version (default: the active one) or raise."""
        ...

    def retire(self, name: str, version: Optional[int] = None) -> ModelRecord:
        """Mark a version (default: the active one) retired."""
        ...

    def corpus_stores(self) -> List[Dict[str, object]]:
        """The compiled-corpus stores referenced by cataloged models."""
        ...


class SqliteModelRegistry:
    """Sqlite-backed :class:`ModelRegistry` (the first durable backend).

    One registry is one sqlite file; every operation opens a short-lived
    connection, so a single file is safely shared by the CLI, a serving
    process polling for publishes and any number of readers.  The schema
    (``models``, ``corpus_stores``, ``registry_meta``) is created on
    first use and version-checked on every open.
    """

    def __init__(self, path) -> None:
        """Open (creating if missing) the registry database at *path*."""
        self.path = Path(path)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self._connect() as connection:
                self._initialise(connection)
        except (OSError, sqlite3.Error) as error:
            raise RegistryError(
                f"cannot open registry {self.path}: {error}"
            ) from error

    # ------------------------------------------------------------------ #
    def _connect(self) -> sqlite3.Connection:
        """One short-lived connection (busy-waits instead of failing)."""
        connection = sqlite3.connect(str(self.path), timeout=30.0)
        connection.row_factory = sqlite3.Row
        return connection

    def _initialise(self, connection: sqlite3.Connection) -> None:
        """Create the schema on first use; reject version skew after."""
        connection.execute(
            "CREATE TABLE IF NOT EXISTS registry_meta ("
            " key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )
        row = connection.execute(
            "SELECT value FROM registry_meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            connection.execute(
                "INSERT INTO registry_meta (key, value) VALUES (?, ?)",
                ("schema_version", str(REGISTRY_SCHEMA_VERSION)),
            )
        elif int(row["value"]) != REGISTRY_SCHEMA_VERSION:
            raise RegistryError(
                f"registry {self.path} has schema version {row['value']} "
                f"(this build expects {REGISTRY_SCHEMA_VERSION})"
            )
        connection.execute(
            "CREATE TABLE IF NOT EXISTS models ("
            " name TEXT NOT NULL,"
            " version INTEGER NOT NULL,"
            " directory TEXT NOT NULL,"
            " fingerprint TEXT NOT NULL,"
            " status TEXT NOT NULL,"
            " created_at TEXT NOT NULL,"
            " config TEXT NOT NULL,"
            " fit TEXT NOT NULL,"
            " corpus_fingerprint TEXT,"
            " corpus_store_dir TEXT,"
            " bench TEXT,"
            " PRIMARY KEY (name, version))"
        )
        connection.execute(
            "CREATE TABLE IF NOT EXISTS corpus_stores ("
            " fingerprint TEXT PRIMARY KEY,"
            " directory TEXT NOT NULL,"
            " transactions INTEGER NOT NULL,"
            " first_published TEXT NOT NULL)"
        )

    @staticmethod
    def _record(row: sqlite3.Row) -> ModelRecord:
        """Decode one ``models`` row into a :class:`ModelRecord`."""
        return ModelRecord(
            name=row["name"],
            version=row["version"],
            directory=row["directory"],
            fingerprint=row["fingerprint"],
            status=row["status"],
            created_at=row["created_at"],
            config=json.loads(row["config"]),
            fit=json.loads(row["fit"]),
            corpus_fingerprint=row["corpus_fingerprint"],
            corpus_store_dir=row["corpus_store_dir"],
            bench=json.loads(row["bench"]) if row["bench"] is not None else None,
        )

    # ------------------------------------------------------------------ #
    def publish(
        self,
        name: str,
        directory,
        *,
        bench: Optional[Dict[str, object]] = None,
    ) -> ModelRecord:
        """Catalog *directory* as the next version of *name*.

        Validates the directory (complete manifest, inventoried files
        present), fingerprints its content, and appends a new version
        row -- unless the currently active version already has the same
        fingerprint, in which case that record is returned unchanged
        (idempotent re-publish).  The model's corpus-store linkage, when
        present, is upserted into the ``corpus_stores`` catalog.
        """
        if not name or "/" in name:
            raise RegistryError(f"invalid model name {name!r}")
        directory = Path(directory).resolve()
        manifest = _read_manifest(directory)
        fingerprint = model_fingerprint(directory)
        corpus = manifest.get("corpus") or {}
        now = datetime.now(timezone.utc).isoformat()
        try:
            with self._connect() as connection:
                active = connection.execute(
                    "SELECT * FROM models WHERE name = ? AND status = ?"
                    " ORDER BY version DESC LIMIT 1",
                    (name, STATUS_PUBLISHED),
                ).fetchone()
                if active is not None and active["fingerprint"] == fingerprint:
                    return self._record(active)
                last = connection.execute(
                    "SELECT MAX(version) AS v FROM models WHERE name = ?",
                    (name,),
                ).fetchone()
                version = (last["v"] or 0) + 1
                connection.execute(
                    "INSERT INTO models (name, version, directory, fingerprint,"
                    " status, created_at, config, fit, corpus_fingerprint,"
                    " corpus_store_dir, bench)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        name,
                        version,
                        str(directory),
                        fingerprint,
                        STATUS_PUBLISHED,
                        now,
                        json.dumps(manifest.get("config") or {}),
                        json.dumps(manifest.get("fit") or {}),
                        corpus.get("fingerprint"),
                        corpus.get("store_dir"),
                        json.dumps(bench) if bench is not None else None,
                    ),
                )
                if corpus.get("fingerprint") and corpus.get("store_dir"):
                    connection.execute(
                        "INSERT OR IGNORE INTO corpus_stores"
                        " (fingerprint, directory, transactions,"
                        "  first_published) VALUES (?, ?, ?, ?)",
                        (
                            corpus["fingerprint"],
                            corpus["store_dir"],
                            int(corpus.get("transactions") or 0),
                            now,
                        ),
                    )
                row = connection.execute(
                    "SELECT * FROM models WHERE name = ? AND version = ?",
                    (name, version),
                ).fetchone()
                return self._record(row)
        except sqlite3.Error as error:
            raise RegistryError(
                f"cannot publish {name} to {self.path}: {error}"
            ) from error

    def active(self, name: str) -> Optional[ModelRecord]:
        """The highest published (non-retired) version of *name*, if any."""
        try:
            with self._connect() as connection:
                row = connection.execute(
                    "SELECT * FROM models WHERE name = ? AND status = ?"
                    " ORDER BY version DESC LIMIT 1",
                    (name, STATUS_PUBLISHED),
                ).fetchone()
        except sqlite3.Error as error:
            raise RegistryError(f"cannot read {self.path}: {error}") from error
        return self._record(row) if row is not None else None

    def active_models(self) -> List[ModelRecord]:
        """The active (highest published) version of every non-retired name.

        This is the routing table the async server builds and polls: one
        record per name, in name order.
        """
        records: Dict[str, ModelRecord] = {}
        for record in self.list_models():
            current = records.get(record.name)
            if current is None or record.version > current.version:
                records[record.name] = record
        return [records[name] for name in sorted(records)]

    def list_models(
        self, name: Optional[str] = None, *, include_retired: bool = False
    ) -> List[ModelRecord]:
        """All cataloged versions, optionally filtered to one *name*."""
        query = "SELECT * FROM models"
        clauses, params = [], []
        if name is not None:
            clauses.append("name = ?")
            params.append(name)
        if not include_retired:
            clauses.append("status = ?")
            params.append(STATUS_PUBLISHED)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY name, version"
        try:
            with self._connect() as connection:
                rows = connection.execute(query, params).fetchall()
        except sqlite3.Error as error:
            raise RegistryError(f"cannot read {self.path}: {error}") from error
        return [self._record(row) for row in rows]

    def show(self, name: str, version: Optional[int] = None) -> ModelRecord:
        """One specific *version* of *name* (default: the active one).

        Raises :class:`RegistryError` when the name or version is
        unknown, naming what exists so CLI errors stay actionable.
        """
        if version is None:
            record = self.active(name)
            if record is None:
                known = sorted({r.name for r in self.list_models(include_retired=True)})
                raise RegistryError(
                    f"no active model named {name!r} in {self.path}"
                    + (f" (cataloged names: {', '.join(known)})" if known else "")
                )
            return record
        try:
            with self._connect() as connection:
                row = connection.execute(
                    "SELECT * FROM models WHERE name = ? AND version = ?",
                    (name, version),
                ).fetchone()
        except sqlite3.Error as error:
            raise RegistryError(f"cannot read {self.path}: {error}") from error
        if row is None:
            raise RegistryError(
                f"model {name!r} has no version {version} in {self.path}"
            )
        return self._record(row)

    def retire(self, name: str, version: Optional[int] = None) -> ModelRecord:
        """Mark a version (default: the active one) retired; never deletes.

        Retiring the active version promotes the next-highest published
        version (if any) to active implicitly -- ``active`` simply skips
        retired rows.
        """
        record = self.show(name, version)
        try:
            with self._connect() as connection:
                connection.execute(
                    "UPDATE models SET status = ? WHERE name = ? AND version = ?",
                    (STATUS_RETIRED, record.name, record.version),
                )
        except sqlite3.Error as error:
            raise RegistryError(
                f"cannot retire {name} v{record.version} in {self.path}: {error}"
            ) from error
        return self.show(name, record.version)

    def corpus_stores(self) -> List[Dict[str, object]]:
        """The compiled-corpus stores referenced by cataloged models."""
        try:
            with self._connect() as connection:
                rows = connection.execute(
                    "SELECT * FROM corpus_stores ORDER BY first_published"
                ).fetchall()
        except sqlite3.Error as error:
            raise RegistryError(f"cannot read {self.path}: {error}") from error
        return [dict(row) for row in rows]


def open_registry(path) -> SqliteModelRegistry:
    """Open the registry at *path* (the single CLI/serving entry point).

    Exists so call sites select a backend by configuration in one place
    once more than sqlite is supported.
    """
    return SqliteModelRegistry(path)
