"""Durable registry layer for fitted models and compiled-corpus stores.

``repro.core.model_store`` persists one fitted model as one directory;
``repro.similarity.corpus_store`` persists one compiled corpus as one
fingerprinted directory.  Neither answers the operational questions a
serving fleet asks: *which* models exist, which **version** of a name is
live, what configuration and benchmark lineage a version carries, and
which compiled-corpus store a model depends on.  This package is that
catalog -- a small durable registry (sqlite first, behind the
:class:`~repro.store.registry.ModelRegistry` protocol so a PostgreSQL
backend can slot in later) that the ``cxk models`` CLI and the async
serving layer (:mod:`repro.serving`) read.

See ``docs/SERVING.md`` for the fit -> publish -> serve -> hot-reload
lifecycle built on top of it.
"""

from repro.store.registry import (
    REGISTRY_SCHEMA_VERSION,
    ModelRecord,
    ModelRegistry,
    RegistryError,
    SqliteModelRegistry,
    model_fingerprint,
    open_registry,
)

__all__ = [
    "REGISTRY_SCHEMA_VERSION",
    "ModelRecord",
    "ModelRegistry",
    "RegistryError",
    "SqliteModelRegistry",
    "model_fingerprint",
    "open_registry",
]
