"""Experiment driver shared by every table / figure reproduction.

The driver knows how to run one clustering configuration -- a corpus, a
clustering goal (content / structure-content / structure), a number of peers,
a partitioning scheme and an algorithm -- and to average F-measure and
runtime over the ``f`` values of the goal's range and over repeated runs, as
done by the paper (Sec. 5.5: "results refer to multiple runs of the algorithm
and correspond to F-measure scores averaged over the range of f values
specific of the clustering setting").

Every experiment module (:mod:`figure7`, :mod:`table1`, ...) builds on
:func:`run_configuration` and :class:`ExperimentSweep`.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.config import ClusteringConfig
from repro.core.cxkmeans import CXKMeans
from repro.core.partition import PartitioningScheme, partition
from repro.core.pkmeans import PKMeans
from repro.core.xkmeans import XKMeans
from repro.datasets.registry import cluster_count, get_dataset
from repro.evaluation.fmeasure import overall_f_measure
from repro.network.costmodel import CostModel
from repro.similarity.item import SimilarityConfig
from repro.transactions.dataset import TransactionDataset

#: The paper's f ranges per clustering goal (Sec. 5.1).  The full grid uses a
#: step of 0.1; the defaults below sample each range sparsely so a complete
#: table reproduction stays laptop-sized, and can be overridden per run.
GOAL_F_VALUES: Dict[str, List[float]] = {
    "content": [0.1, 0.2],
    "hybrid": [0.4, 0.5, 0.6],
    "structure": [0.8, 0.9],
}

#: Mapping from clustering goal to the ground-truth labelling it is scored on.
GOAL_LABELING: Dict[str, str] = {
    "content": "content",
    "hybrid": "hybrid",
    "structure": "structure",
}


@dataclass
class RunRecord:
    """Outcome of a single clustering run."""

    dataset: str
    algorithm: str
    goal: str
    nodes: int
    scheme: str
    f: float
    gamma: float
    seed: int
    k: int
    f_measure: float
    simulated_seconds: float
    elapsed_seconds: float
    iterations: int
    trash: int
    transferred_transactions: float
    messages: float
    #: Similarity backend the run executed on.
    backend: str = "python"
    #: Tag-path cache statistics after the run (entries / hits / misses);
    #: with up-front precomputation the misses stay at their precompute
    #: level, which is the behaviour Sec. 4.3.2 prescribes.
    cache_stats: Dict[str, int] = field(default_factory=dict)
    #: Compiled-corpus store status of the run (``off`` / ``unsupported`` /
    #: ``hit`` / ``miss`` / ``error``; see
    #: :func:`repro.similarity.corpus_store.prepare_engine_corpus`).
    store: str = "off"
    #: Number of worker local phases that were given a store but had to
    #: recompile after a failed attach (CXK-means store-backed runs; a
    #: nonzero count flags a broken store that would otherwise hide as a
    #: quiet slowdown).
    store_fallback: int = 0
    #: Fitted-model persistence outcome (``{"model": "off"}`` when auto-save
    #: was not requested, else ``saved``/``error`` with the directory).
    model: Dict[str, object] = field(default_factory=lambda: {"model": "off"})
    #: Transport the collaborative rounds ran on (``sim`` / ``real``).
    network: str = "sim"
    #: Cost-model predictions next to transport measurements (real-transport
    #: runs only; empty for simulated runs).  Keys: ``predicted_seconds`` /
    #: ``predicted_communication_seconds`` from the cost model,
    #: ``measured_wall_seconds`` / ``wire_bytes`` / ``control_bytes`` from
    #: the wire (see :meth:`repro.network.realnet.RealNetwork.summary`).
    predicted_vs_measured: Dict[str, float] = field(default_factory=dict)
    #: Post-bootstrap chunks ingested by a streaming run (0 for batch runs).
    chunks_ingested: int = 0
    #: Transactions still parked in the retained set when the run finalized.
    retained: int = 0
    #: Drift-triggered re-refinement rounds of a streaming run.
    re_refinements: int = 0
    #: Peak resident-set size of the driving process in KB
    #: (``ru_maxrss``; 0 when not measured -- batch runs skip the probe).
    peak_rss_kb: int = 0

    def as_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


@dataclass
class AggregateRecord:
    """Averages over the f-values / seeds of one experimental cell."""

    dataset: str
    algorithm: str
    goal: str
    nodes: int
    scheme: str
    k: int
    f_measure: float
    f_measure_std: float
    simulated_seconds: float
    elapsed_seconds: float
    transferred_transactions: float
    runs: int

    def as_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


def make_algorithm(
    name: str,
    config: ClusteringConfig,
    cost_model: Optional[CostModel] = None,
):
    """Instantiate an algorithm by name (``cxk``, ``pk`` or ``xk``)."""
    key = name.lower()
    if key in ("cxk", "cxk-means", "cxkmeans"):
        return CXKMeans(config, cost_model=cost_model)
    if key in ("pk", "pk-means", "pkmeans"):
        return PKMeans(config, cost_model=cost_model)
    if key in ("xk", "xk-means", "xkmeans", "centralized"):
        return XKMeans(config)
    raise ValueError(f"unknown algorithm: {name}")


def precompute_similarity(algo, transactions) -> Dict[str, object]:
    """Prepare the algorithm engine's corpus up front (Sec. 4.3.2).

    Without a configured corpus store this is the historical warm-up:
    precompute every pairwise tag-path structural similarity over the
    corpus' distinct maximal tag paths -- the strategy the paper's
    complexity analysis prescribes instead of lazy filling -- and compile
    the corpus into the similarity backend (a no-op for the reference
    backend).  When the algorithm's configuration names a
    ``corpus_cache_dir``, the persistent compiled-corpus store takes over
    (:func:`repro.similarity.corpus_store.prepare_engine_corpus`): a warm
    store attach skips both steps entirely.  Returns the store status
    dictionary (``store`` is ``"off"`` on the historical path).
    """
    from repro.similarity.corpus_store import prepare_engine_corpus

    return prepare_engine_corpus(
        algo.engine,
        transactions,
        cache_dir=getattr(algo.config, "corpus_cache_dir", None),
    )


def run_configuration(
    dataset: TransactionDataset,
    goal: str,
    nodes: int,
    f: float,
    gamma: float,
    seed: int,
    algorithm: str = "cxk",
    scheme: PartitioningScheme = PartitioningScheme.EQUAL,
    k: Optional[int] = None,
    max_iterations: int = 8,
    cost_model: Optional[CostModel] = None,
    backend: str = "python",
    batch_block_items: Optional[int] = None,
    refine_workers: Optional[int] = None,
    corpus_cache_dir: Optional[str] = None,
    save_model_dir: Optional[str] = None,
    network: str = "sim",
    network_timeout: Optional[float] = None,
    streaming: bool = False,
    chunk_size: Optional[int] = None,
    retain_threshold: Optional[float] = None,
    drift_threshold: Optional[float] = None,
) -> RunRecord:
    """Run one clustering configuration and score it against the ground truth.

    When *save_model_dir* is given, the fitted model (representatives,
    config, registries, corpus-store linkage) is persisted there through
    :func:`repro.core.model_store.save_model`; persistence failures degrade
    to an ``error`` entry in the record's ``model`` field instead of
    failing the run.

    *network* selects the transport of the collaborative rounds (``"sim"``
    / ``"real"``; CXK-means only for ``"real"``); real runs additionally
    fill the record's ``predicted_vs_measured`` fields with the cost-model
    predictions next to the measured wire bytes and wall-clock.

    *streaming* replays the corpus through the incremental fit mode
    (:class:`repro.core.streaming.StreamingClusterer`; centralized
    ``xk`` only) in ``chunk_size`` chunks instead of one batch fit, and
    fills the record's streaming counters (``chunks_ingested`` /
    ``retained`` / ``re_refinements`` / ``peak_rss_kb``).  The up-front
    corpus precompute is skipped in this mode -- each chunk is
    delta-compiled as it arrives, which is the point.
    """
    labeling = GOAL_LABELING[goal]
    reference = dataset.labels_for(labeling)
    if k is None:
        k = len(set(reference.values()))
    config = ClusteringConfig(
        k=k,
        similarity=SimilarityConfig(f=f, gamma=gamma),
        seed=seed,
        max_iterations=max_iterations,
        backend=backend,
        batch_block_items=batch_block_items,
        refine_workers=refine_workers,
        corpus_cache_dir=corpus_cache_dir,
        network=network,
        **(
            {"network_timeout": network_timeout}
            if network_timeout is not None
            else {}
        ),
    )
    streaming_stats: Dict[str, object] = {}
    if streaming:
        if algorithm.lower() not in ("xk", "xk-means", "xkmeans", "centralized"):
            raise ValueError(
                "streaming ingestion is implemented for the centralized "
                f"XK-means only, got algorithm {algorithm!r}"
            )
        from repro.core.streaming import StreamingClusterer, stream_corpus

        config = config.with_streaming(
            True,
            chunk_size=chunk_size,
            retain_threshold=retain_threshold,
            drift_threshold=drift_threshold,
        )
        algo = StreamingClusterer(config)
        try:
            store_status = {"store": "off"}
            result = stream_corpus(algo, dataset.transactions)
            streaming_stats = algo.stats.as_dict()
        finally:
            backend_object = algo.engine._backend
            if hasattr(backend_object, "close"):
                backend_object.close()
        return _build_record(
            dataset=dataset,
            goal=goal,
            nodes=nodes,
            scheme=scheme,
            f=f,
            gamma=gamma,
            seed=seed,
            k=k,
            config=config,
            algo=algo,
            result=result,
            reference=reference,
            store_status=store_status,
            backend=backend,
            network=network,
            algorithm=algorithm,
            save_model_dir=save_model_dir,
            streaming_stats=streaming_stats,
        )
    algo = make_algorithm(algorithm, config, cost_model=cost_model)
    try:
        store_status = precompute_similarity(algo, dataset.transactions)
        if isinstance(algo, XKMeans):
            result = algo.fit(dataset.transactions)
        else:
            parts = partition(dataset.transactions, nodes, scheme=scheme, seed=seed)
            result = algo.fit(parts)
    finally:
        # release backend resources (sharded worker pools) before the next
        # sweep point; a no-op for the in-process backends
        backend_object = algo.engine._backend
        if hasattr(backend_object, "close"):
            backend_object.close()
    return _build_record(
        dataset=dataset,
        goal=goal,
        nodes=nodes,
        scheme=scheme,
        f=f,
        gamma=gamma,
        seed=seed,
        k=k,
        config=config,
        algo=algo,
        result=result,
        reference=reference,
        store_status=store_status,
        backend=backend,
        network=network,
        algorithm=algorithm,
        save_model_dir=save_model_dir,
        streaming_stats={},
    )


def _peak_rss_kb() -> int:
    """Peak resident-set size of this process in KB (``ru_maxrss``)."""
    import resource
    import sys

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KB on Linux but bytes on macOS
    return int(peak // 1024) if sys.platform == "darwin" else int(peak)


def _build_record(
    *,
    dataset: TransactionDataset,
    goal: str,
    nodes: int,
    scheme: PartitioningScheme,
    f: float,
    gamma: float,
    seed: int,
    k: int,
    config: ClusteringConfig,
    algo,
    result,
    reference,
    store_status,
    backend: str,
    network: str,
    algorithm: str,
    save_model_dir: Optional[str],
    streaming_stats: Dict[str, object],
) -> RunRecord:
    """Score *result* and assemble the :class:`RunRecord` (shared tail of
    the batch and streaming paths of :func:`run_configuration`)."""
    model_status: Dict[str, object] = {"model": "off"}
    if save_model_dir is not None:
        from repro.core.model_store import ModelStoreError, save_model

        try:
            save_model(
                save_model_dir, result, config, dataset=dataset, engine=algo.engine
            )
            model_status = {"model": "saved", "directory": str(save_model_dir)}
        except ModelStoreError as error:
            model_status = {
                "model": "error",
                "directory": str(save_model_dir),
                "error": str(error),
            }
    f_measure = overall_f_measure(result.partition(), reference)
    network_stats = result.network or {}
    predicted_vs_measured: Dict[str, float] = {}
    if "wire_bytes" in network_stats:
        predicted_vs_measured = {
            "predicted_seconds": float(network_stats.get("simulated_seconds", 0.0)),
            "predicted_communication_seconds": float(
                network_stats.get("communication_seconds", 0.0)
            ),
            "measured_wall_seconds": float(
                network_stats.get("measured_wall_seconds", 0.0)
            ),
            "wire_bytes": float(network_stats.get("wire_bytes", 0.0)),
            "control_bytes": float(network_stats.get("control_bytes", 0.0)),
        }
    return RunRecord(
        dataset=dataset.name,
        algorithm=result.metadata.get("algorithm", algorithm),
        goal=goal,
        nodes=nodes,
        scheme=scheme.value,
        f=f,
        gamma=gamma,
        seed=seed,
        k=k,
        f_measure=f_measure,
        simulated_seconds=result.simulated_seconds
        if result.simulated_seconds is not None
        else result.elapsed_seconds,
        elapsed_seconds=result.elapsed_seconds,
        iterations=result.iterations,
        trash=result.trash_size(),
        transferred_transactions=network_stats.get("transferred_transactions", 0.0),
        messages=network_stats.get("messages", 0.0),
        backend=backend,
        cache_stats=algo.engine.cache.stats(),
        store=str(store_status.get("store", "off")),
        store_fallback=int(result.metadata.get("store_fallback", 0)),
        model=model_status,
        network=network,
        predicted_vs_measured=predicted_vs_measured,
        chunks_ingested=int(streaming_stats.get("chunks_ingested", 0)),
        retained=int(streaming_stats.get("retained", 0)),
        re_refinements=int(streaming_stats.get("re_refinements", 0)),
        peak_rss_kb=_peak_rss_kb() if streaming_stats else 0,
    )


def aggregate_records(records: Sequence[RunRecord]) -> AggregateRecord:
    """Average a group of runs belonging to the same experimental cell."""
    if not records:
        raise ValueError("cannot aggregate an empty record list")
    first = records[0]
    f_scores = [record.f_measure for record in records]
    return AggregateRecord(
        dataset=first.dataset,
        algorithm=first.algorithm,
        goal=first.goal,
        nodes=first.nodes,
        scheme=first.scheme,
        k=first.k,
        f_measure=statistics.fmean(f_scores),
        f_measure_std=statistics.pstdev(f_scores) if len(f_scores) > 1 else 0.0,
        simulated_seconds=statistics.fmean(
            record.simulated_seconds for record in records
        ),
        elapsed_seconds=statistics.fmean(record.elapsed_seconds for record in records),
        transferred_transactions=statistics.fmean(
            record.transferred_transactions for record in records
        ),
        runs=len(records),
    )


@dataclass
class ExperimentSweep:
    """Declarative sweep over (dataset, nodes, f, seed) cells.

    Attributes mirror the knobs of the paper's experimental setting; the
    defaults keep a full sweep small enough for a benchmark run while the
    ``scale`` / ``f_values`` / ``seeds`` fields allow arbitrarily faithful
    (and slow) reproductions.
    """

    datasets: Sequence[str] = ("DBLP", "IEEE", "Shakespeare", "Wikipedia")
    goal: str = "hybrid"
    node_counts: Sequence[int] = (1, 3, 5, 7, 9)
    scheme: PartitioningScheme = PartitioningScheme.EQUAL
    algorithm: str = "cxk"
    gamma: float = 0.85
    scale: float = 1.0
    f_values: Optional[Sequence[float]] = None
    seeds: Sequence[int] = (0,)
    max_iterations: int = 8
    cost_model: CostModel = field(default_factory=CostModel)
    dataset_seed: int = 0
    #: Similarity backend spec driving the clustering hot path
    #: (``"python"``, ``"numpy[:block=N]"``, ``"sharded[:workers[:inner]]"``
    #: or ``"torch[:device][:block=N]"``).
    backend: str = "python"
    #: Tile budget (items per side) of the batched similarity kernels
    #: (``None`` = backend default, ``0`` = unbounded; see
    #: :attr:`repro.core.config.ClusteringConfig.batch_block_items`).
    batch_block_items: Optional[int] = None
    #: Worker processes for cluster-sharded representative refinement
    #: (``None`` keeps the serial refinement path).
    refine_workers: Optional[int] = None
    #: Directory of the persistent compiled-corpus store (``None`` = off);
    #: every sweep cell over the same (dataset, scale, similarity) reuses
    #: one exported compilation instead of recompiling per run.
    corpus_cache_dir: Optional[str] = None
    #: Root directory for fitted-model auto-save (``None`` = off); each run
    #: persists its model under ``<root>/<dataset>-<algo>-n<nodes>-f<f>-s<seed>``
    #: for later serving (``repro serve`` / ``repro classify``).
    save_model_dir: Optional[str] = None
    #: Transport of the collaborative rounds (``"sim"`` / ``"real"``; the
    #: real transport is CXK-means only and fills each record's
    #: ``predicted_vs_measured`` fields).
    network: str = "sim"
    #: Per-round deadline of the real transport in seconds (``None`` keeps
    #: the :class:`~repro.core.config.ClusteringConfig` default).
    network_timeout: Optional[float] = None

    def effective_f_values(self) -> List[float]:
        if self.f_values is not None:
            return list(self.f_values)
        return list(GOAL_F_VALUES[self.goal])

    # ------------------------------------------------------------------ #
    def run(self) -> List[AggregateRecord]:
        """Execute the sweep; returns one aggregate per (dataset, nodes) cell."""
        aggregates: List[AggregateRecord] = []
        for dataset_name in self.datasets:
            dataset = get_dataset(dataset_name, scale=self.scale, seed=self.dataset_seed)
            k = cluster_count(dataset_name, self.goal)
            for nodes in self.node_counts:
                records: List[RunRecord] = []
                for f in self.effective_f_values():
                    for seed in self.seeds:
                        save_model_dir = None
                        if self.save_model_dir is not None:
                            cell = (
                                f"{dataset_name}-{self.algorithm}"
                                f"-n{nodes}-f{f}-s{seed}"
                            )
                            save_model_dir = str(
                                Path(self.save_model_dir) / cell
                            )
                        records.append(
                            run_configuration(
                                dataset,
                                goal=self.goal,
                                nodes=nodes,
                                f=f,
                                gamma=self.gamma,
                                seed=seed,
                                algorithm=self.algorithm,
                                scheme=self.scheme,
                                k=k,
                                max_iterations=self.max_iterations,
                                cost_model=self.cost_model,
                                backend=self.backend,
                                batch_block_items=self.batch_block_items,
                                refine_workers=self.refine_workers,
                                corpus_cache_dir=self.corpus_cache_dir,
                                save_model_dir=save_model_dir,
                                network=self.network,
                                network_timeout=self.network_timeout,
                            )
                        )
                aggregates.append(aggregate_records(records))
        return aggregates


def pivot(
    aggregates: Iterable[AggregateRecord], value: str = "f_measure"
) -> Dict[str, Dict[int, float]]:
    """Pivot aggregates into {dataset: {nodes: value}} for report rendering."""
    table: Dict[str, Dict[int, float]] = {}
    for record in aggregates:
        table.setdefault(record.dataset, {})[record.nodes] = getattr(record, value)
    return table
