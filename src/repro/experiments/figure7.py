"""Figure 7 reproduction: clustering runtime vs. number of nodes.

The paper's Fig. 7 plots, for each of the four corpora, the clustering time
of CXK-means as the number of peers grows from 1 to 19, once on the full
dataset and once on a halved dataset (structure/content-driven setting,
equal partitioning).  The expected shape is a hyperbolic decrease followed by
a flat region (the saturation point) and a slight increase when communication
starts to dominate; halving the dataset moves the saturation point to the
left.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.partition import PartitioningScheme
from repro.evaluation.reporting import format_series
from repro.experiments.runner import ExperimentSweep, pivot
from repro.network.costmodel import CostModel, saturation_point


@dataclass
class Figure7Config:
    """Parameters of the Fig. 7 sweep."""

    datasets: Sequence[str] = ("DBLP", "IEEE", "Shakespeare", "Wikipedia")
    node_counts: Sequence[int] = (1, 3, 5, 7, 9, 11)
    scales: Sequence[float] = (1.0, 0.5)
    goal: str = "hybrid"
    gamma: float = 0.85
    f_values: Sequence[float] = (0.5,)
    seeds: Sequence[int] = (0,)
    max_iterations: int = 6
    cost_model: CostModel = field(default_factory=CostModel)
    #: Optional per-dataset multiplier applied on top of ``scales``; used to
    #: keep the transaction counts of the four corpora comparable when the
    #: harness runs at reduced scale (e.g. the IEEE profile produces fewer
    #: documents per scale unit than DBLP or Wikipedia).
    dataset_scale_multipliers: Dict[str, float] = field(default_factory=dict)
    #: Similarity backend spec driving the clustering hot path
    #: (``"python"``, ``"numpy[:block=N]"``, ``"sharded[:workers[:inner]]"``
    #: or ``"torch[:device][:block=N]"``).
    backend: str = "python"
    #: Tile budget (items per side) of the batched similarity kernels
    #: (``None`` = backend default, ``0`` = unbounded; see
    #: :attr:`repro.core.config.ClusteringConfig.batch_block_items`).
    batch_block_items: Optional[int] = None
    #: Worker processes for cluster-sharded representative refinement
    #: (``None`` keeps the serial refinement path).
    refine_workers: Optional[int] = None
    #: Directory of the persistent compiled-corpus store (``None`` = off).
    corpus_cache_dir: Optional[str] = None
    #: Transport of the collaborative rounds (``"sim"`` / ``"real"``).
    network: str = "sim"
    #: Per-round deadline of the real transport (``None`` = config default).
    network_timeout: Optional[float] = None


@dataclass
class Figure7Result:
    """Runtime curves per dataset and scale plus derived saturation points."""

    #: {dataset: {scale: {nodes: simulated seconds}}}
    curves: Dict[str, Dict[float, Dict[int, float]]]
    #: {dataset: {scale: saturation node count}}
    saturation: Dict[str, Dict[float, int]]

    def report(self) -> str:
        """Render the figure as text series (one block per dataset/scale)."""
        blocks: List[str] = []
        for dataset, per_scale in self.curves.items():
            largest_scale = max(per_scale.keys())
            for scale, series in per_scale.items():
                label = "full" if scale == largest_scale else "half"
                blocks.append(
                    format_series(
                        series,
                        x_label="nodes",
                        y_label="seconds",
                        title=(
                            f"Figure 7 -- {dataset} ({label} dataset, scale={scale}): "
                            f"runtime vs. nodes "
                            f"[saturation @ {self.saturation[dataset][scale]} nodes]"
                        ),
                    )
                )
        return "\n\n".join(blocks)


def run_figure7(config: Optional[Figure7Config] = None) -> Figure7Result:
    """Run the Fig. 7 sweep and return the runtime curves."""
    config = config or Figure7Config()
    curves: Dict[str, Dict[float, Dict[int, float]]] = {}
    saturation: Dict[str, Dict[float, int]] = {}
    for scale in config.scales:
        for dataset_name in config.datasets:
            multiplier = config.dataset_scale_multipliers.get(dataset_name, 1.0)
            sweep = ExperimentSweep(
                datasets=(dataset_name,),
                goal=config.goal,
                node_counts=config.node_counts,
                scheme=PartitioningScheme.EQUAL,
                algorithm="cxk",
                gamma=config.gamma,
                scale=scale * multiplier,
                f_values=config.f_values,
                seeds=config.seeds,
                max_iterations=config.max_iterations,
                cost_model=config.cost_model,
                backend=config.backend,
                batch_block_items=config.batch_block_items,
                refine_workers=config.refine_workers,
                corpus_cache_dir=config.corpus_cache_dir,
                network=config.network,
                network_timeout=config.network_timeout,
            )
            aggregates = sweep.run()
            runtime = pivot(aggregates, value="simulated_seconds")
            for dataset, series in runtime.items():
                curves.setdefault(dataset, {})[scale] = series
                saturation.setdefault(dataset, {})[scale] = saturation_point(series)
    return Figure7Result(curves=curves, saturation=saturation)
