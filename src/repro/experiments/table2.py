"""Tables 2(a)-(c) reproduction: accuracy vs. nodes, unequal data distribution.

Table 2 repeats the accuracy evaluation of Table 1 with the data unequally
distributed over the peers: half of the nodes store twice as many
transactions as the other half.  The paper observes a small additional loss
of accuracy (roughly 0.01 to 0.10) with respect to the equally-distributed
case, because peers with few transactions produce weaker local clusterings;
the size-weighted global representative computation keeps the degradation
bounded.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from repro.core.partition import PartitioningScheme
from repro.experiments.table1 import (
    AccuracyTableConfig,
    AccuracyTableResult,
    run_accuracy_table,
)


def run_table2(config: Optional[AccuracyTableConfig] = None) -> AccuracyTableResult:
    """Reproduce Tables 2(a)-(c): unequal data distribution."""
    config = config or AccuracyTableConfig()
    config = replace(config, scheme=PartitioningScheme.UNEQUAL)
    return run_accuracy_table(config)


def equal_vs_unequal_degradation(
    equal: AccuracyTableResult, unequal: AccuracyTableResult
) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Return F(equal) - F(unequal) per goal, dataset and node count.

    The paper expects these deltas to be small and positive on average
    (equal distribution is never worse by much); the comparison table is
    used by EXPERIMENTS.md and by the regression tests of the benchmark
    harness.
    """
    degradation: Dict[str, Dict[str, Dict[int, float]]] = {}
    for goal, per_dataset in equal.tables.items():
        if goal not in unequal.tables:
            continue
        degradation[goal] = {}
        for dataset, series in per_dataset.items():
            other = unequal.tables[goal].get(dataset, {})
            degradation[goal][dataset] = {
                nodes: series[nodes] - other[nodes]
                for nodes in series
                if nodes in other
            }
    return degradation
