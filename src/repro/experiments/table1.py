"""Tables 1(a)-(c) reproduction: accuracy vs. number of nodes, equal partitioning.

For every corpus and for the three clustering settings (content-driven,
structure/content-driven and structure-driven, controlled by the f range),
the paper reports the average F-measure of CXK-means for 1, 3, 5, 7 and 9
nodes with the data equally distributed over the peers.  The expected shape
is a monotone (on average) decrease of accuracy as the number of nodes grows,
with the centralized case as the upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.partition import PartitioningScheme
from repro.datasets.registry import cluster_count, profile
from repro.evaluation.reporting import format_accuracy_table
from repro.experiments.runner import ExperimentSweep, pivot
from repro.network.costmodel import CostModel

#: Datasets evaluated per clustering goal: the paper omits Wikipedia from the
#: structure/content and structure-driven tables because its articles have no
#: structural differences (Sec. 5.2).
GOAL_DATASETS: Dict[str, Sequence[str]] = {
    "content": ("DBLP", "IEEE", "Shakespeare", "Wikipedia"),
    "hybrid": ("DBLP", "IEEE", "Shakespeare"),
    "structure": ("DBLP", "IEEE", "Shakespeare"),
}

#: Paper sub-table labels per goal.
GOAL_SUBTABLE: Dict[str, str] = {
    "content": "(a) f in [0, 0.3] -- content-driven",
    "hybrid": "(b) f in [0.4, 0.6] -- structure/content-driven",
    "structure": "(c) f in [0.7, 1] -- structure-driven",
}


@dataclass
class AccuracyTableConfig:
    """Parameters of the Tables 1 / 2 sweeps."""

    goals: Sequence[str] = ("content", "hybrid", "structure")
    node_counts: Sequence[int] = (1, 3, 5, 7, 9)
    scheme: PartitioningScheme = PartitioningScheme.EQUAL
    gamma: float = 0.85
    scale: float = 1.0
    f_values: Optional[Sequence[float]] = None
    seeds: Sequence[int] = (0,)
    max_iterations: int = 6
    cost_model: CostModel = field(default_factory=CostModel)
    datasets: Optional[Sequence[str]] = None
    #: Similarity backend spec driving the clustering hot path
    #: (``"python"``, ``"numpy[:block=N]"``, ``"sharded[:workers[:inner]]"``
    #: or ``"torch[:device][:block=N]"``).
    backend: str = "python"
    #: Tile budget (items per side) of the batched similarity kernels
    #: (``None`` = backend default, ``0`` = unbounded; see
    #: :attr:`repro.core.config.ClusteringConfig.batch_block_items`).
    batch_block_items: Optional[int] = None
    #: Worker processes for cluster-sharded representative refinement
    #: (``None`` keeps the serial refinement path).
    refine_workers: Optional[int] = None
    #: Directory of the persistent compiled-corpus store (``None`` = off).
    corpus_cache_dir: Optional[str] = None
    #: Transport of the collaborative rounds (``"sim"`` / ``"real"``).
    network: str = "sim"
    #: Per-round deadline of the real transport (``None`` = config default).
    network_timeout: Optional[float] = None


@dataclass
class AccuracyTableResult:
    """F-measure per goal, dataset and node count."""

    scheme: str
    #: {goal: {dataset: {nodes: F-measure}}}
    tables: Dict[str, Dict[str, Dict[int, float]]]
    #: {goal: {dataset: k}}
    cluster_counts: Dict[str, Dict[str, int]]

    def report(self, table_number: int = 1) -> str:
        """Render the three sub-tables in the layout of the paper."""
        blocks: List[str] = []
        for goal, per_dataset in self.tables.items():
            blocks.append(
                format_accuracy_table(
                    per_dataset,
                    cluster_counts=self.cluster_counts.get(goal, {}),
                    title=(
                        f"Table {table_number}{GOAL_SUBTABLE[goal]} -- "
                        f"{self.scheme} data distribution"
                    ),
                )
            )
        return "\n\n".join(blocks)

    def accuracy_loss(self, goal: str, dataset: str, nodes: int) -> float:
        """Return F(1 node) - F(nodes): the loss w.r.t. the centralized case."""
        series = self.tables[goal][dataset]
        return series[1] - series[nodes]


def run_accuracy_table(config: Optional[AccuracyTableConfig] = None) -> AccuracyTableResult:
    """Run the accuracy-vs-nodes sweep for the configured partitioning scheme."""
    config = config or AccuracyTableConfig()
    tables: Dict[str, Dict[str, Dict[int, float]]] = {}
    counts: Dict[str, Dict[str, int]] = {}
    for goal in config.goals:
        datasets = config.datasets or GOAL_DATASETS[goal]
        datasets = [
            name
            for name in datasets
            if goal == "content" or profile(name).supports_structure
        ]
        sweep = ExperimentSweep(
            datasets=datasets,
            goal=goal,
            node_counts=config.node_counts,
            scheme=config.scheme,
            algorithm="cxk",
            gamma=config.gamma,
            scale=config.scale,
            f_values=config.f_values,
            seeds=config.seeds,
            max_iterations=config.max_iterations,
            cost_model=config.cost_model,
            backend=config.backend,
            batch_block_items=config.batch_block_items,
            refine_workers=config.refine_workers,
            corpus_cache_dir=config.corpus_cache_dir,
            network=config.network,
            network_timeout=config.network_timeout,
        )
        aggregates = sweep.run()
        tables[goal] = pivot(aggregates, value="f_measure")
        counts[goal] = {name: cluster_count(name, goal) for name in datasets}
    return AccuracyTableResult(
        scheme=config.scheme.value, tables=tables, cluster_counts=counts
    )


def run_table1(config: Optional[AccuracyTableConfig] = None) -> AccuracyTableResult:
    """Reproduce Tables 1(a)-(c): equal data distribution."""
    config = config or AccuracyTableConfig()
    if config.scheme is not PartitioningScheme.EQUAL:
        raise ValueError("Table 1 uses the equal partitioning scheme")
    return run_accuracy_table(config)
