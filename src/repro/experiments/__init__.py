"""Experiment drivers regenerating every table and figure of the paper."""

from repro.experiments.ablation import (
    CostModelCheck,
    collaborativeness_ablation,
    cost_model_check,
    gamma_sweep,
)
from repro.experiments.figure7 import Figure7Config, Figure7Result, run_figure7
from repro.experiments.figure8 import Figure8Config, Figure8Result, run_figure8
from repro.experiments.runner import (
    GOAL_F_VALUES,
    GOAL_LABELING,
    AggregateRecord,
    ExperimentSweep,
    RunRecord,
    aggregate_records,
    make_algorithm,
    pivot,
    run_configuration,
)
from repro.experiments.table1 import (
    AccuracyTableConfig,
    AccuracyTableResult,
    run_accuracy_table,
    run_table1,
)
from repro.experiments.table2 import equal_vs_unequal_degradation, run_table2

__all__ = [
    "RunRecord",
    "AggregateRecord",
    "ExperimentSweep",
    "run_configuration",
    "aggregate_records",
    "make_algorithm",
    "pivot",
    "GOAL_F_VALUES",
    "GOAL_LABELING",
    "Figure7Config",
    "Figure7Result",
    "run_figure7",
    "Figure8Config",
    "Figure8Result",
    "run_figure8",
    "AccuracyTableConfig",
    "AccuracyTableResult",
    "run_accuracy_table",
    "run_table1",
    "run_table2",
    "equal_vs_unequal_degradation",
    "gamma_sweep",
    "collaborativeness_ablation",
    "cost_model_check",
    "CostModelCheck",
]
