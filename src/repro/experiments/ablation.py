"""Ablation studies on the design choices called out in DESIGN.md.

Three ablations complement the paper's own evaluation:

* **gamma sweep** (A1) -- sensitivity of accuracy to the matching threshold
  ``gamma`` (the paper reports that the best settings sit above 0.85);
* **collaborativeness off** (A2) -- CXK-means where the global
  representatives are computed once from the initial local clusterings and
  never refreshed, isolating the value of the iterative collaboration;
* **cost-model check** (A3 / E10) -- comparison between the analytic
  saturation point predicted by ``f(m)`` (Sec. 4.3.4) and the empirical
  saturation point of a measured runtime curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import ClusteringConfig
from repro.core.cxkmeans import CXKMeans
from repro.core.partition import PartitioningScheme, partition
from repro.datasets.registry import cluster_count, get_dataset
from repro.evaluation.fmeasure import overall_f_measure
from repro.network.costmodel import CostModel, saturation_point
from repro.similarity.item import SimilarityConfig
from repro.transactions.dataset import TransactionDataset


# --------------------------------------------------------------------------- #
# A1: gamma threshold sweep
# --------------------------------------------------------------------------- #
def gamma_sweep(
    dataset: TransactionDataset,
    goal: str = "hybrid",
    gammas: Sequence[float] = (0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95),
    f: float = 0.5,
    nodes: int = 3,
    k: Optional[int] = None,
    seed: int = 0,
    max_iterations: int = 6,
) -> Dict[float, float]:
    """Return {gamma: F-measure} for a fixed corpus and node count."""
    reference = dataset.labels_for(goal)
    if k is None:
        k = len(set(reference.values()))
    results: Dict[float, float] = {}
    for gamma in gammas:
        config = ClusteringConfig(
            k=k,
            similarity=SimilarityConfig(f=f, gamma=gamma),
            seed=seed,
            max_iterations=max_iterations,
        )
        parts = partition(dataset.transactions, nodes, PartitioningScheme.EQUAL, seed=seed)
        result = CXKMeans(config).fit(parts)
        results[gamma] = overall_f_measure(result.partition(), reference)
    return results


# --------------------------------------------------------------------------- #
# A2: value of collaborativeness
# --------------------------------------------------------------------------- #
def collaborativeness_ablation(
    dataset: TransactionDataset,
    goal: str = "hybrid",
    nodes: Sequence[int] = (3, 5, 9),
    f: float = 0.5,
    gamma: float = 0.85,
    k: Optional[int] = None,
    seed: int = 0,
    max_iterations: int = 6,
) -> Dict[int, Dict[str, float]]:
    """Return {nodes: {"collaborative": F, "non_collaborative": F}}.

    The non-collaborative variant stops after a single exchange of local
    representatives (``max_iterations = 2``: one round to build the initial
    global representatives, one round to consume them), so peers never refine
    their summaries through further collaboration; comparing it with the full
    algorithm isolates the contribution of the iterative collaboration.
    """
    reference = dataset.labels_for(goal)
    if k is None:
        k = len(set(reference.values()))
    similarity = SimilarityConfig(f=f, gamma=gamma)
    results: Dict[int, Dict[str, float]] = {}
    for m in nodes:
        parts = partition(dataset.transactions, m, PartitioningScheme.EQUAL, seed=seed)
        full_config = ClusteringConfig(
            k=k, similarity=similarity, seed=seed, max_iterations=max_iterations
        )
        frozen_config = ClusteringConfig(
            k=k, similarity=similarity, seed=seed, max_iterations=2
        )
        collaborative = CXKMeans(full_config).fit(parts)
        non_collaborative = CXKMeans(frozen_config).fit(parts)
        results[m] = {
            "collaborative": overall_f_measure(collaborative.partition(), reference),
            "non_collaborative": overall_f_measure(
                non_collaborative.partition(), reference
            ),
        }
    return results


# --------------------------------------------------------------------------- #
# A3 / E10: analytic vs. empirical saturation point
# --------------------------------------------------------------------------- #
@dataclass
class CostModelCheck:
    """Outcome of the analytic-vs-empirical saturation comparison."""

    analytic_curve: Dict[int, float]
    empirical_curve: Dict[int, float]
    analytic_saturation: int
    empirical_saturation: int
    analytic_optimum: float


def cost_model_check(
    dataset: TransactionDataset,
    k: int,
    node_counts: Sequence[int] = (1, 3, 5, 7, 9, 11),
    f: float = 0.5,
    gamma: float = 0.85,
    seed: int = 0,
    max_iterations: int = 6,
    cost_model: Optional[CostModel] = None,
    calibrate: bool = True,
) -> CostModelCheck:
    """Compare the analytic f(m) curve with measured simulated runtimes.

    When ``calibrate`` is set (default), the analytic curve's free parameter
    ``t_mem`` is fitted on the measured centralized runtime (the ``m = 1``
    point, where communication plays no role), so the comparison focuses on
    the *shape* of the two curves as the paper's Sec. 5.5.1 does.
    """
    cost_model = cost_model or CostModel()
    empirical: Dict[int, float] = {}
    similarity = SimilarityConfig(f=f, gamma=gamma)
    for m in node_counts:
        config = ClusteringConfig(
            k=k, similarity=similarity, seed=seed, max_iterations=max_iterations
        )
        parts = partition(dataset.transactions, m, PartitioningScheme.EQUAL, seed=seed)
        result = CXKMeans(config, cost_model=cost_model).fit(parts)
        empirical[m] = result.simulated_seconds or result.elapsed_seconds

    analytic_model = cost_model
    if calibrate and 1 in empirical:
        # Fit t_mem on the centralized measurement and express the transfer
        # cost per *element* (the analytic formula factors |tr_max|*|u_max|
        # out of both terms, whereas the simulated network charges per
        # transaction), so the two curves use consistent units.
        tr = max(dataset.max_transaction_length(), 1)
        u = max(dataset.max_tcu_size(), 1)
        per_element_comm = (
            cost_model.t_comm / (tr * u) + cost_model.unit_comm
        )
        analytic_model = CostModel(
            t_mem=cost_model.t_mem,
            t_comm=per_element_comm,
            unit_comm=cost_model.unit_comm,
        ).with_calibrated_t_mem(
            empirical[1],
            dataset_size=len(dataset),
            k=k,
            max_transaction_length=dataset.max_transaction_length(),
            max_tcu_size=dataset.max_tcu_size(),
        )
    analytic = analytic_model.predicted_curve(
        node_counts,
        dataset_size=len(dataset),
        k=k,
        max_transaction_length=dataset.max_transaction_length(),
        max_tcu_size=dataset.max_tcu_size(),
    )
    return CostModelCheck(
        analytic_curve=analytic,
        empirical_curve=empirical,
        analytic_saturation=saturation_point(analytic),
        empirical_saturation=saturation_point(empirical),
        analytic_optimum=analytic_model.optimal_nodes(
            dataset_size=len(dataset),
            k=k,
            max_transaction_length=dataset.max_transaction_length(),
        ),
    )
